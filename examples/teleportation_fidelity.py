"""Teleportation with NME resource states: fidelity versus entanglement.

Run with ``python examples/teleportation_fidelity.py``.

Compares three ways of using a non-maximally entangled pair |Φ_k⟩:

1. *Plain teleportation* through |Φ_k⟩ — deterministic but noisy: the output
   suffers Pauli-Z errors (Eq. 22) and the average fidelity drops below 1.
2. *Probabilistic (Agrawal–Pati) teleportation* — exact when it succeeds,
   but succeeds only with probability 2k²/(1+k²).
3. *The paper's NME wire cut* — exact in expectation for any k, at the cost
   of the sampling overhead γ = 4(k²+1)/(k+1)² − 1.

The comparison shows where the wire cut sits between the two classical
alternatives: it trades neither fidelity nor determinism, only shots.
"""

import numpy as np

from repro.circuits import DensityMatrixSimulator
from repro.cutting.overhead import nme_overhead
from repro.quantum import overlap_from_k, random_statevector, state_fidelity
from repro.teleport import (
    expected_attempts,
    phi_k_average_fidelity,
    success_probability,
    teleportation_circuit,
)

SEED = 5


def simulated_fidelity(k: float, num_states: int = 25) -> float:
    """Average fidelity of the full teleportation circuit with resource |Φ_k⟩."""
    simulator = DensityMatrixSimulator()
    fidelities = []
    for index in range(num_states):
        message = random_statevector(1, seed=SEED + index)
        circuit = teleportation_circuit(message_state=message, resource=k)
        result = simulator.run(circuit)
        output = result.average_state().partial_trace([0, 1])
        fidelities.append(state_fidelity(message, output))
    return float(np.mean(fidelities))


def main() -> None:
    print(
        f"{'k':>6}{'f(Phi_k)':>10}{'tel. fidelity':>15}{'(simulated)':>13}"
        f"{'prob. success':>15}{'attempts/success':>18}{'wire-cut gamma':>16}"
    )
    print("-" * 93)
    for k in (0.1, 0.25, 0.5, 0.75, 1.0):
        analytic = phi_k_average_fidelity(k)
        simulated = simulated_fidelity(k)
        p_succ = success_probability(k)
        attempts = expected_attempts(k)
        print(
            f"{k:>6.2f}{overlap_from_k(k):>10.3f}"
            f"{analytic:>15.4f}{simulated:>13.4f}"
            f"{p_succ:>15.3f}{attempts:>18.2f}{nme_overhead(k):>16.3f}"
        )

    print(
        "\nPlain teleportation loses fidelity, probabilistic teleportation loses "
        "determinism; the NME wire cut keeps both and pays only in sampling overhead."
    )


if __name__ == "__main__":
    main()
