"""What happens when the pre-shared NME pair is noisy (future-work direction).

Run with ``python examples/noisy_resources.py``.

Two effects are quantified when the physically shared pair is a depolarised
version of |Φ_k⟩ while the Theorem-2 coefficients still assume the pure
state:

1. a systematic bias appears in the reconstructed expectation values
   (the QPD no longer sums to the identity channel), and
2. the *optimal* overhead attainable with the noisy resource (Theorem 1 with
   f of the actual state) rises back towards the entanglement-free value 3.
"""

from repro.cutting import NMEWireCut
from repro.cutting.noise import (
    noisy_phi_k,
    noisy_resource_overhead,
    reconstruction_bias,
    worst_case_z_bias,
)
from repro.quantum import maximal_overlap

K = 0.5  # f(Φ_k) = 0.9
NOISE_LEVELS = (0.0, 0.01, 0.02, 0.05, 0.1, 0.2)


def main() -> None:
    pure_kappa = NMEWireCut(K).kappa
    print(f"intended resource: |Phi_k> with k = {K} (f = 0.9), pure-state kappa = {pure_kappa:.3f}\n")
    print(
        f"{'depol. p':>9}{'f(actual)':>11}{'Thm-1 gamma':>13}"
        f"{'bias (op-norm)':>16}{'worst <Z> bias':>16}"
    )
    print("-" * 65)
    for p in NOISE_LEVELS:
        resource = noisy_phi_k(K, p)
        print(
            f"{p:>9.2f}{maximal_overlap(resource):>11.4f}"
            f"{noisy_resource_overhead(resource):>13.4f}"
            f"{reconstruction_bias(K, resource):>16.4f}"
            f"{worst_case_z_bias(K, resource, samples=100):>16.4f}"
        )

    print(
        "\nMitigations: re-derive the coefficients from the measured f of the "
        "actual pair (Theorem 1 is stated for arbitrary mixed resources), or "
        "distil the pairs before use."
    )


if __name__ == "__main__":
    main()
