"""Quickstart: cut a wire with a non-maximally entangled resource state.

Run with ``python examples/quickstart.py``.

The example transmits a random single-qubit state across a cut wire using
three protocols — the entanglement-free optimal cut (κ=3), the paper's NME
cut at f(Φ_k)=0.9 (κ≈1.22) and plain teleportation (κ=1) — and compares the
estimation error of ⟨Z⟩ at a fixed shot budget.
"""

from repro import HaradaWireCut, NMEWireCut, TeleportationWireCut, cut_expectation_value
from repro.cutting import nme_overhead, optimal_overhead
from repro.quantum import k_from_overlap, random_statevector

SHOTS = 4000
SEED = 2024


def main() -> None:
    state = random_statevector(1, seed=SEED)
    exact = None

    print(f"Transmitting a Haar-random qubit state through a cut wire ({SHOTS} shots)\n")
    print(f"{'protocol':<22}{'kappa':>8}{'estimate':>12}{'error':>10}")
    print("-" * 52)

    protocols = [
        ("harada (no ent.)", HaradaWireCut()),
        ("nme f=0.7", NMEWireCut.from_overlap(0.7)),
        ("nme f=0.9", NMEWireCut.from_overlap(0.9)),
        ("teleportation f=1", TeleportationWireCut()),
    ]
    for name, protocol in protocols:
        result = cut_expectation_value(state, protocol, shots=SHOTS, seed=SEED)
        exact = result.exact_value
        print(f"{name:<22}{result.kappa:>8.3f}{result.value:>12.4f}{result.error:>10.4f}")

    print(f"\nexact <Z> = {exact:.4f}")
    print("\nTheorem 1: optimal overhead gamma = 2/f - 1")
    for f in (0.5, 0.7, 0.9, 1.0):
        k = k_from_overlap(f)
        print(
            f"  f = {f:.2f}  ->  gamma = {optimal_overhead(f):.3f}"
            f"  (Corollary 1 with k = {k:.3f}: {nme_overhead(k):.3f})"
        )


if __name__ == "__main__":
    main()
