"""Distribute a GHZ-state circuit across two simulated devices by cutting a wire.

Run with ``python examples/distributed_ghz.py``.

A 4-qubit GHZ preparation circuit is cut on the wire between qubits 1 and 2,
so that qubits 0-1 can run on one device and qubits 2-3 on another, connected
only by classical communication (plus, for the NME protocols, one pre-shared
entangled pair per teleportation shot).  The cut is expressed as an explicit
time-slice plan and executed through the
:class:`~repro.pipeline.CutPipeline`; the example estimates the GHZ parity
observable ⟨Z Z Z Z⟩ (exactly 1 for the ideal state) through the cut and
reports the error and resource usage per protocol.
"""

from repro.circuits import exact_expectation
from repro.cutting import (
    HaradaWireCut,
    NMEWireCut,
    PengWireCut,
    TeleportationWireCut,
)
from repro.experiments import ghz_circuit
from repro.pipeline import CutPipeline
from repro.quantum import PauliString

SHOTS = 6000
SEED = 99


def main() -> None:
    num_qubits = 4
    circuit = ghz_circuit(num_qubits)
    observable = PauliString("Z" * num_qubits)

    # Cut between cx(0,1) and cx(1,2) — i.e. at time slice 2 — so that the
    # circuit splits into {q0,q1} and {q2,q3}.  The plan stage turns the
    # slice position into the wire cut (qubit 1 crosses the slice).
    cut_positions = (2,)

    exact = exact_expectation(circuit, observable.to_matrix())
    print(f"4-qubit GHZ circuit, observable <ZZZZ>, exact value = {exact:.4f}")

    plan = CutPipeline().plan(circuit, positions=cut_positions).plan
    locations = [(loc.qubit, loc.position) for loc in plan.locations]
    widths = [fragment.width for fragment in plan.fragments]
    print(f"plan: slices={plan.positions} cuts={locations} fragment widths={widths}\n")
    print(f"{'protocol':<22}{'kappa':>8}{'estimate':>12}{'error':>10}{'pairs/shot':>12}")
    print("-" * 64)

    protocols = [
        ("peng (kappa=4)", PengWireCut()),
        ("harada (kappa=3)", HaradaWireCut()),
        ("nme f=0.8", NMEWireCut.from_overlap(0.8)),
        ("nme f=0.95", NMEWireCut.from_overlap(0.95)),
        ("teleportation", TeleportationWireCut()),
    ]
    for name, protocol in protocols:
        pipeline = CutPipeline(protocol=protocol)
        result = pipeline.run(
            circuit, observable, shots=SHOTS, seed=SEED, plan=plan
        )
        # Pairs actually consumed by this execution (one per teleport-term shot).
        pairs = result.execution.entangled_pairs / result.total_shots
        print(
            f"{name:<22}{result.kappa:>8.3f}{result.value:>12.4f}"
            f"{result.error:>10.4f}{pairs:>12.3f}"
        )

    print(
        "\nHigher entanglement in the pre-shared pair lowers both the sampling "
        "overhead (kappa) and the observed error at a fixed shot budget, at the "
        "price of consuming entangled pairs."
    )


if __name__ == "__main__":
    main()
