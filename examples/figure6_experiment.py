"""Reproduce Figure 6: average error of the cut ⟨Z⟩ estimate versus shots.

Run with ``python examples/figure6_experiment.py [--paper]``.

Without ``--paper`` a scaled-down sweep (50 random states) runs in a couple
of seconds; with ``--paper`` the full configuration of the publication
(1000 random states, shots up to 5000, six entanglement levels) is used.
The resulting table is printed and written to ``results/figure6.csv``.
"""

import argparse
from pathlib import Path

from repro.experiments import Figure6Config, run_figure6, write_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper", action="store_true", help="run the full paper-scale configuration"
    )
    parser.add_argument(
        "--out", default="results/figure6.csv", help="CSV output path (default: results/figure6.csv)"
    )
    args = parser.parse_args()

    config = Figure6Config.paper() if args.paper else Figure6Config()
    print(
        f"Running Figure 6 sweep: {config.num_states} states, "
        f"shots {list(config.shot_grid)}, f levels {list(config.overlaps)}"
    )
    result = run_figure6(config)

    table = result.to_table()
    print()
    print(table.to_text())
    print()
    print("Average error per entanglement level (averaged over the shot grid):")
    for overlap, kappa, row in zip(result.overlaps, result.kappas, result.mean_errors):
        print(f"  f = {overlap:.1f}  kappa = {kappa:.3f}  mean error = {row.mean():.4f}")
    print(
        "\nQualitative check (paper claim: higher entanglement -> lower error): "
        f"{'PASS' if result.is_monotone_in_entanglement() else 'FAIL'}"
    )

    out_path = write_csv(table, Path(args.out))
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
