"""The continuum between wire cutting and teleportation.

Run with ``python examples/entanglement_continuum.py``.

Sweeps the resource entanglement f(Φ_k) from 0.5 (no entanglement: plain
wire cutting) to 1.0 (maximal entanglement: teleportation) and reports, for
each level:

* the optimal sampling overhead γ (Theorem 1 / Corollary 1),
* the shot multiplier γ² for a fixed target accuracy,
* the expected number of pre-shared entangled pairs consumed per shot,
* the measured error of a fixed-budget estimate on a random-state workload.

This is the trade-off the paper's conclusion highlights: entanglement is a
resource that can be traded against shots.
"""

import numpy as np

from repro.cutting import CutLocation, NMEWireCut, TeleportationWireCut, build_sampling_model
from repro.cutting.overhead import expected_pairs_per_shot, optimal_overhead
from repro.experiments import random_single_qubit_states, state_preparation_circuit
from repro.quantum import k_from_overlap

SHOTS = 2000
NUM_STATES = 40
SEED = 31


def main() -> None:
    overlaps = np.linspace(0.5, 1.0, 11)
    workload = random_single_qubit_states(NUM_STATES, seed=SEED)

    print(f"{NUM_STATES} random states, {SHOTS} shots per estimate\n")
    print(
        f"{'f(Phi_k)':>9}{'k':>9}{'gamma':>9}{'gamma^2':>9}"
        f"{'pairs/shot':>12}{'mean error':>12}"
    )
    print("-" * 60)

    rng = np.random.default_rng(SEED)
    for overlap in overlaps:
        k = k_from_overlap(float(overlap))
        protocol = TeleportationWireCut() if overlap >= 1.0 else NMEWireCut(k)
        errors = []
        for unitary in workload.unitaries:
            circuit = state_preparation_circuit(unitary)
            model = build_sampling_model(circuit, CutLocation(0, len(circuit)), protocol, "Z")
            result = model.estimate(SHOTS, seed=rng)
            errors.append(abs(result.value - model.exact_value))
        pairs = 1.0 if overlap >= 1.0 else expected_pairs_per_shot(k)
        print(
            f"{overlap:>9.2f}{k:>9.3f}{optimal_overhead(float(overlap)):>9.3f}"
            f"{optimal_overhead(float(overlap))**2:>9.3f}{pairs:>12.3f}"
            f"{np.mean(errors):>12.4f}"
        )

    print(
        "\nAs f grows the overhead falls from 3 to 1 and the error at a fixed "
        "budget shrinks, while the protocol consumes more entangled pairs per shot."
    )


if __name__ == "__main__":
    main()
