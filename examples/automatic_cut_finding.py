"""Automatically find where to cut a circuit that is too wide for one device.

Run with ``python examples/automatic_cut_finding.py``.

A 6-qubit hardware-efficient chain circuit must be executed on devices with
at most 4 qubits.  The cut finder enumerates time-slice cut plans, ranks them
by sampling overhead, and the best plan is executed end-to-end with both the
entanglement-free cut and the NME cut to compare the error at a fixed shot
budget.
"""

import numpy as np

from repro.circuits import QuantumCircuit, draw, exact_expectation
from repro.cutting import (
    HaradaWireCut,
    NMEWireCut,
    estimate_multi_cut_expectation,
    find_time_slice_cuts,
)
from repro.quantum import PauliString

MAX_DEVICE_QUBITS = 4
SHOTS = 20_000
SEED = 3


def _chain_circuit(num_qubits: int, seed: int) -> QuantumCircuit:
    """A chain-shaped ansatz: rotations and entanglers sweep from qubit 0 to the end."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, 0, name="chain_ansatz")
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(0, np.pi)), qubit)
        if qubit > 0:
            circuit.cx(qubit - 1, qubit)
        circuit.rz(float(rng.uniform(0, np.pi)), qubit)
    return circuit


def main() -> None:
    circuit = _chain_circuit(6, SEED)
    observable = PauliString("ZZZZZZ")
    print(f"Circuit: 6-qubit chain ansatz, {len(circuit)} instructions")
    print(draw(circuit))
    print()

    plans = find_time_slice_cuts(circuit, max_fragment_width=MAX_DEVICE_QUBITS)
    if not plans:
        print("no valid cut plan under the device-width constraint")
        return
    print(f"{len(plans)} valid time-slice plans; best plans:")
    for plan in plans[:3]:
        locations = [(loc.qubit, loc.position) for loc in plan.locations]
        print(
            f"  cuts={locations}  widths=({plan.front_width}, {plan.back_width})"
            f"  overhead={plan.sampling_overhead:.1f}"
        )

    best = plans[0]
    exact = exact_expectation(circuit, observable.to_matrix())
    print(f"\nexecuting the best plan ({best.num_cuts} cut(s)); exact <Z...Z> = {exact:.4f}")
    print(f"{'protocol':<18}{'kappa':>8}{'estimate':>12}{'error':>10}")
    for name, protocol in (
        ("harada", HaradaWireCut()),
        ("nme f=0.9", NMEWireCut.from_overlap(0.9)),
    ):
        result = estimate_multi_cut_expectation(
            circuit,
            list(best.locations),
            [protocol] * best.num_cuts,
            observable,
            shots=SHOTS,
            seed=SEED,
        )
        print(f"{name:<18}{result.kappa:>8.3f}{result.value:>12.4f}{result.error:>10.4f}")


if __name__ == "__main__":
    main()
