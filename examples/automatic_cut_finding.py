"""Automatically find where to cut a circuit that is too wide for one device.

Run with ``python examples/automatic_cut_finding.py``.

A 4-qubit hardware-efficient chain circuit must be executed on devices with
at most 2 qubits — too tight for any single bipartition, so the
:class:`~repro.pipeline.CutPipeline` planner splits the circuit into three
fragments with two wire cuts.  The plan is then executed end-to-end through
the pipeline with both the entanglement-free cut and the NME cut to compare
the error at a fixed shot budget.
"""

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits import QuantumCircuit, draw, exact_expectation
from repro.cutting import HaradaWireCut, NMEWireCut
from repro.pipeline import CutPipeline
from repro.quantum import PauliString

MAX_DEVICE_QUBITS = 2
SHOTS = 20_000
SEED = 3


def _chain_circuit(num_qubits: int, seed: int) -> QuantumCircuit:
    """A chain-shaped ansatz: rotations and entanglers sweep from qubit 0 to the end."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, 0, name="chain_ansatz")
    for qubit in range(num_qubits):
        circuit.ry(float(rng.uniform(0, np.pi)), qubit)
        if qubit > 0:
            circuit.cx(qubit - 1, qubit)
        circuit.rz(float(rng.uniform(0, np.pi)), qubit)
    return circuit


def main() -> None:
    circuit = _chain_circuit(4, SEED)
    observable = PauliString("ZZZZ")
    print(f"Circuit: 4-qubit chain ansatz, {len(circuit)} instructions")
    print(draw(circuit))
    print()

    pipeline = CutPipeline(max_fragment_width=MAX_DEVICE_QUBITS, backend="vectorized")
    try:
        plan_result = pipeline.plan(circuit)
    except CuttingError as error:
        print(f"no valid cut plan under the device-width constraint: {error}")
        return
    print(f"{len(plan_result.alternatives)} valid plans; best plans:")
    for plan in plan_result.alternatives[:3]:
        locations = [(loc.qubit, loc.position) for loc in plan.locations]
        print(
            f"  slices={plan.positions}  cuts={locations}"
            f"  fragment widths={[f.width for f in plan.fragments]}"
            f"  overhead={plan.sampling_overhead:.1f}"
        )

    best = plan_result.plan
    exact = exact_expectation(circuit, observable.to_matrix())
    print(
        f"\nexecuting the best plan ({best.num_cuts} cut(s), "
        f"{best.num_fragments} fragments); exact <Z...Z> = {exact:.4f}"
    )
    print(f"{'protocol':<18}{'kappa':>8}{'terms':>8}{'estimate':>12}{'error':>10}")
    for name, protocol in (
        ("harada", HaradaWireCut()),
        ("nme f=0.9", NMEWireCut.from_overlap(0.9)),
    ):
        staged = CutPipeline(protocol=protocol, backend="vectorized")
        decomposition = staged.decompose(plan_result)
        execution = staged.execute(decomposition, observable, shots=SHOTS, seed=SEED)
        result = staged.reconstruct(execution)
        print(
            f"{name:<18}{result.kappa:>8.3f}{decomposition.num_terms:>8}"
            f"{result.value:>12.4f}{result.error:>10.4f}"
        )


if __name__ == "__main__":
    main()
