"""The noisy virtual-device execution backend.

:class:`NoisyDeviceBackend` wraps any ideal
:class:`~repro.circuits.backends.SimulatorBackend` and applies a
:class:`~repro.devices.noise_model.NoiseModel` to every circuit it executes:

* with **gate noise** the exact noisy outcome distribution is computed by a
  :class:`~repro.circuits.density_matrix_simulator.DensityMatrixSimulator`
  carrying the model's gate-noise hook (the wrapped backend's vectorised
  machinery cannot batch Kraus evolution, so the noisy path is serial but
  exact);
* a model with **readout error only** delegates the quantum part to the
  wrapped backend — keeping its batching and caching — and confuses the
  resulting distributions classically;
* an **ideal** model makes the wrapper fully transparent: ``run_batch`` and
  ``exact_distributions`` are forwarded verbatim, so a noiseless device is
  bitwise-identical to the bare backend.

Noisy distributions are memoised in a
:class:`~repro.circuits.backends.DistributionCache` (the process-wide default
unless one is injected) under keys that append the noise model's
:meth:`~repro.devices.noise_model.NoiseModel.fingerprint` to the circuit
fingerprint.  Ideal entries keep their bare circuit-fingerprint keys, so a
noisy run can share a cache with ideal sweeps without ever poisoning them.

Sampling follows the library-wide determinism contract: ``run_batch`` spawns
one child seed stream per circuit and draws that circuit's full budget with
a single multinomial over its (noisy) exact distribution — the same seed
yields the same :class:`~repro.circuits.counts.Counts` whatever the wrapped
backend.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.circuits.backends import (
    DistributionCache,
    SimulatorBackend,
    _check_batch,
    _sample_batch,
    circuit_fingerprint,
    default_distribution_cache,
    kernel_cache_key,
    resolve_backend,
)
from repro.circuits.kernels import resolve_kernel
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.counts import Counts
from repro.circuits.density_matrix_simulator import DensityMatrixSimulator
from repro.devices.noise_model import NoiseModel
from repro.utils.rng import SeedLike, spawn_seed_sequences

__all__ = ["NoisyDeviceBackend", "noisy_cache_key"]


def noisy_cache_key(circuit: QuantumCircuit, noise: NoiseModel) -> str:
    """Return the cache key of a circuit's outcome distribution under ``noise``.

    The key is the ideal :func:`~repro.circuits.backends.circuit_fingerprint`
    with the noise model's fingerprint appended, so distributions computed
    under different noise models (or none) occupy distinct cache entries.
    """
    return f"{circuit_fingerprint(circuit)}|noise={noise.fingerprint()}"


class NoisyDeviceBackend:
    """A :class:`~repro.circuits.backends.SimulatorBackend` with a noise model applied.

    Parameters
    ----------
    noise:
        The device's :class:`~repro.devices.noise_model.NoiseModel`.
    inner:
        The ideal backend (name or instance) executing the noiseless part;
        ``None`` selects the vectorized backend.  For a noiseless model the
        wrapper forwards to ``inner`` verbatim.
    cache:
        Distribution cache for noisy results; defaults to the process-wide
        :data:`~repro.circuits.backends.default_distribution_cache` (safe,
        because noisy keys embed the noise fingerprint).
    kernel:
        Simulation kernel for the gate-noise density-matrix path, forwarded
        to the inner backend when that is given by name (``"einsum"``
        default / ``"dense"`` reference — see :mod:`repro.circuits.kernels`).

    Examples
    --------
    >>> from repro.devices import NoiseModel, NoisyDeviceBackend
    >>> backend = NoisyDeviceBackend(NoiseModel(depolarizing_2q=0.05))
    >>> backend.name
    'noisy(vectorized)'
    """

    def __init__(
        self,
        noise: NoiseModel,
        inner: SimulatorBackend | str | None = None,
        cache: DistributionCache | None = None,
        kernel: str | None = None,
    ):
        if not isinstance(noise, NoiseModel):
            raise TypeError(f"noise must be a NoiseModel, got {type(noise).__name__}")
        self.noise = noise
        self.kernel = resolve_kernel(kernel)
        self.inner = resolve_backend("vectorized" if inner is None else inner, kernel=kernel)
        self.cache = default_distribution_cache if cache is None else cache
        self.name = f"noisy({self.inner.name})"

    # -- SimulatorBackend protocol -----------------------------------------------------

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: Sequence[int],
        seed: SeedLike = None,
    ) -> list[Counts]:
        """Sample ``shots[i]`` noisy outcomes of ``circuits[i]`` for every ``i``."""
        if self.noise.is_noiseless:
            return self.inner.run_batch(circuits, shots, seed=seed)
        _check_batch(circuits, shots)
        children = spawn_seed_sequences(seed, len(circuits))
        # The shared sampling helper calls back into exact_distributions, so
        # zero-shot circuits skip the (noisy) simulation exactly as they do
        # on the ideal backends.
        return _sample_batch(self, circuits, shots, children)

    def exact_distributions(
        self, circuits: Sequence[QuantumCircuit]
    ) -> list[dict[str, float]]:
        """Return every circuit's exact outcome distribution *under the noise model*."""
        if self.noise.is_noiseless:
            return self.inner.exact_distributions(circuits)

        results: list[dict[str, float] | None] = [None] * len(circuits)
        pending_by_key: dict[str, list[int]] = {}
        for index, circuit in enumerate(circuits):
            key = kernel_cache_key(noisy_cache_key(circuit, self.noise), self.kernel)
            cached = self.cache.get(key)
            if cached is not None:
                results[index] = cached
            else:
                pending_by_key.setdefault(key, []).append(index)

        if pending_by_key:
            unique = [(key, circuits[indices[0]]) for key, indices in pending_by_key.items()]
            if self.noise.has_gate_noise:
                simulator = DensityMatrixSimulator(
                    gate_noise=self.noise.gate_noise_hook, kernel=self.kernel
                )
                ideal_or_gate_noisy = [
                    simulator.run(circuit).classical_distribution() for _, circuit in unique
                ]
            else:
                # Readout error only: the quantum part is ideal, so the wrapped
                # backend's batching/caching does the heavy lifting.
                ideal_or_gate_noisy = self.inner.exact_distributions(
                    [circuit for _, circuit in unique]
                )
            for (key, _), distribution in zip(unique, ideal_or_gate_noisy):
                noisy = self.noise.apply_readout_error(distribution)
                self.cache.put(key, noisy)
                for index in pending_by_key[key]:
                    results[index] = noisy
        return results  # type: ignore[return-value]

    # -- diagnostics -------------------------------------------------------------------

    def average_z_expectation(self, circuit: QuantumCircuit, clbits: Sequence[int]) -> float:
        """Return the exact noisy mean of ``(−1)^{parity of clbits}`` for ``circuit``."""
        (distribution,) = self.exact_distributions([circuit])
        value = 0.0
        for bitstring, probability in distribution.items():
            parity = sum(int(bitstring[c]) for c in clbits) % 2
            value += ((-1) ** parity) * probability
        return float(value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Return a short configuration summary."""
        return f"NoisyDeviceBackend(noise={self.noise!r}, inner={self.inner.name!r})"
