"""Noisy virtual devices and shot-wise fleet scheduling.

This package turns the ideal execution backends of
:mod:`repro.circuits.backends` into a *noisy, width-limited, heterogeneous*
execution layer — the setting the paper's wire-cutting protocols exist for:

:class:`NoiseModel`
    Per-device gate noise (depolarising, amplitude damping) plus classical
    readout confusion, with a stable fingerprint for cache keying.
:class:`NoisyDeviceBackend`
    Wraps any :class:`~repro.circuits.backends.SimulatorBackend` and applies
    a noise model exactly (density-matrix evolution, distribution-level
    readout confusion).
:class:`VirtualDevice` / :class:`DeviceFleet`
    A named fleet of noisy devices.  The fleet is itself a backend: each
    submitted circuit's shot budget is split across devices by a pluggable
    policy (uniform / capacity / fidelity weighted), sampled per device, and
    merged back into one histogram — deterministic for a fixed seed and
    device spec.
Fleet specs
    :func:`load_fleet` / :func:`fleet_from_spec` build fleets from small
    JSON documents (the CLI's ``--devices`` flag).
"""

from repro.devices.backend import NoisyDeviceBackend, noisy_cache_key
from repro.devices.fleet import (
    DeviceFleet,
    VirtualDevice,
    example_fleet_spec,
    fleet_from_spec,
    load_fleet,
)
from repro.devices.noise_model import NoiseModel
from repro.devices.policies import (
    MERGE_POLICY_NAMES,
    SPLIT_POLICY_NAMES,
    CapacityWeightedSplit,
    FidelityWeightedSplit,
    MergePolicy,
    SplitPolicy,
    UniformSplit,
    WeightedCountsMerge,
    apportion_shots,
    resolve_merge_policy,
    resolve_split_policy,
)

__all__ = [
    "NoiseModel",
    "NoisyDeviceBackend",
    "noisy_cache_key",
    "VirtualDevice",
    "DeviceFleet",
    "fleet_from_spec",
    "load_fleet",
    "example_fleet_spec",
    "SplitPolicy",
    "UniformSplit",
    "CapacityWeightedSplit",
    "FidelityWeightedSplit",
    "MergePolicy",
    "WeightedCountsMerge",
    "apportion_shots",
    "resolve_split_policy",
    "resolve_merge_policy",
    "SPLIT_POLICY_NAMES",
    "MERGE_POLICY_NAMES",
]
