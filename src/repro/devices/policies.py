"""Shot-wise split and merge policies for fleet execution.

A :class:`~repro.devices.fleet.DeviceFleet` distributes each circuit's shot
budget across its virtual devices and recombines the per-device histograms
into one :class:`~repro.circuits.counts.Counts`.  Both steps are pluggable
(the Cut&Shoot architecture): a **split policy** assigns a non-negative
weight to every device — the budget is then apportioned with deterministic
largest-remainder rounding — and a **merge policy** turns the per-device
counts back into a single histogram.

Split policies
--------------

==============================  ==================================================
``UniformSplit``                Equal weight per eligible device.
``CapacityWeightedSplit``       Weight ∝ the device's declared ``capacity``.
``FidelityWeightedSplit``       Weight ∝ the noise model's
                                :meth:`~repro.devices.noise_model.NoiseModel.fidelity_weight`.
==============================  ==================================================

Merge policies
--------------

==============================  ==================================================
``WeightedCountsMerge``         Weight each device's empirical distribution and
                                materialise integer counts at the total shot
                                count (largest-remainder).  With the default
                                shot-proportional weights this is *exactly* the
                                plain histogram sum — every physical shot counts
                                once — while explicit weights let a caller
                                down-weight low-fidelity devices.
==============================  ==================================================

Everything here is deterministic: no policy draws randomness, so fleet
reproducibility reduces to the per-circuit seed streams of the sampling step.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import DeviceError
from repro.circuits.counts import Counts

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.devices.fleet import VirtualDevice

__all__ = [
    "SplitPolicy",
    "UniformSplit",
    "CapacityWeightedSplit",
    "FidelityWeightedSplit",
    "MergePolicy",
    "WeightedCountsMerge",
    "apportion_shots",
    "resolve_split_policy",
    "resolve_merge_policy",
    "SPLIT_POLICY_NAMES",
    "MERGE_POLICY_NAMES",
]

#: Split-policy names accepted by :func:`resolve_split_policy` and fleet specs.
SPLIT_POLICY_NAMES = ("uniform", "capacity", "fidelity")
#: Merge-policy names accepted by :func:`resolve_merge_policy` and fleet specs.
MERGE_POLICY_NAMES = ("weighted",)


def apportion_shots(weights: np.ndarray | Sequence[float], total: int) -> np.ndarray:
    """Split ``total`` shots proportionally to ``weights``, exactly and deterministically.

    Largest-remainder apportionment: every device gets the floor of its
    proportional share and the leftover shots go to the largest fractional
    remainders (ties broken by device index).  The result always sums to
    ``total``.

    Raises
    ------
    DeviceError
        When no weight is positive or any weight is negative.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        raise DeviceError("cannot apportion shots across zero devices")
    if np.any(weights < 0.0):
        raise DeviceError(f"split weights must be non-negative, got {weights.tolist()}")
    mass = weights.sum()
    if mass <= 0.0:
        raise DeviceError("split weights must have positive total mass")
    if total < 0:
        raise DeviceError(f"total shots must be non-negative, got {total}")
    exact = weights / mass * total
    shares = np.floor(exact).astype(int)
    remainder = int(total - shares.sum())
    if remainder > 0:
        # Stable ordering: largest fractional part first, index as tiebreak.
        order = sorted(range(weights.size), key=lambda i: (-(exact[i] - shares[i]), i))
        for i in order[:remainder]:
            shares[i] += 1
    return shares


# ---------------------------------------------------------------------------
# Split policies
# ---------------------------------------------------------------------------


@runtime_checkable
class SplitPolicy(Protocol):
    """Protocol of shot-split policies: devices → non-negative weights."""

    name: str

    def weights(self, devices: Sequence["VirtualDevice"]) -> np.ndarray:
        """Return one non-negative weight per device (not necessarily normalised)."""
        ...


class UniformSplit:
    """Equal shot share for every eligible device."""

    name = "uniform"

    def weights(self, devices: Sequence["VirtualDevice"]) -> np.ndarray:
        """Return a unit weight per device."""
        return np.ones(len(devices))


class CapacityWeightedSplit:
    """Shot share proportional to each device's declared ``capacity``."""

    name = "capacity"

    def weights(self, devices: Sequence["VirtualDevice"]) -> np.ndarray:
        """Return every device's capacity as its weight."""
        return np.array([device.capacity for device in devices], dtype=float)


class FidelityWeightedSplit:
    """Shot share proportional to each device's noise-model fidelity proxy.

    Cleaner devices receive more shots, which lowers the merged histogram's
    effective error rate without discarding any device entirely.
    """

    name = "fidelity"

    def weights(self, devices: Sequence["VirtualDevice"]) -> np.ndarray:
        """Return every device's :meth:`~repro.devices.noise_model.NoiseModel.fidelity_weight`."""
        return np.array([device.noise.fidelity_weight() for device in devices], dtype=float)


# ---------------------------------------------------------------------------
# Merge policies
# ---------------------------------------------------------------------------


@runtime_checkable
class MergePolicy(Protocol):
    """Protocol of count-merge policies: per-device histograms → one histogram."""

    name: str

    def merge(
        self,
        per_device: Sequence[Counts],
        weights: Sequence[float],
        num_clbits: int,
    ) -> Counts:
        """Merge per-device counts (``weights`` aligns with ``per_device``)."""
        ...


class WeightedCountsMerge:
    """Merge per-device histograms as a weighted mixture of their distributions.

    Parameters
    ----------
    use_split_weights:
        When True the split policy's weights are used as merge weights; the
        default (False) weights every device by the shots it actually
        delivered, which makes the merge the exact histogram sum — unbiased
        and integer without any rounding.

    Notes
    -----
    With explicit (non-shot-proportional) weights the merged distribution
    ``q = Σ_d w_d q_d`` is materialised as integer counts at the total
    delivered shot count using the same largest-remainder rounding as
    :func:`apportion_shots`, so merging stays bitwise deterministic.
    """

    name = "weighted"

    def __init__(self, use_split_weights: bool = False):
        self.use_split_weights = bool(use_split_weights)

    def merge(
        self,
        per_device: Sequence[Counts],
        weights: Sequence[float],
        num_clbits: int,
    ) -> Counts:
        """Merge the per-device histograms into one ``Counts``."""
        total_shots = sum(counts.shots for counts in per_device)
        if total_shots == 0:
            return Counts({}, num_clbits=num_clbits)
        if not self.use_split_weights:
            merged: dict[str, int] = {}
            for counts in per_device:
                for bitstring, value in counts.items():
                    merged[bitstring] = merged.get(bitstring, 0) + value
            return Counts(merged, num_clbits=num_clbits)

        # Weighted mixture of empirical distributions, re-materialised as
        # integer counts at the delivered total.
        mixture: dict[str, float] = {}
        active = [
            (counts, weight)
            for counts, weight in zip(per_device, weights)
            if counts.shots > 0 and weight > 0.0
        ]
        if not active:
            return Counts({}, num_clbits=num_clbits)
        mass = sum(weight for _, weight in active)
        for counts, weight in active:
            share = weight / mass
            for bitstring, probability in counts.probabilities().items():
                mixture[bitstring] = mixture.get(bitstring, 0.0) + share * probability
        keys = sorted(mixture)
        rounded = apportion_shots([mixture[key] for key in keys], total_shots)
        return Counts(
            {key: int(count) for key, count in zip(keys, rounded) if count > 0},
            num_clbits=num_clbits,
        )


# ---------------------------------------------------------------------------
# Name resolution
# ---------------------------------------------------------------------------


def resolve_split_policy(policy: SplitPolicy | str | None) -> SplitPolicy:
    """Return a split policy for a name, an instance, or ``None`` (uniform)."""
    if policy is None:
        return UniformSplit()
    if not isinstance(policy, str):
        return policy
    name = policy.lower().replace("_", "-")
    if name == "uniform":
        return UniformSplit()
    if name == "capacity":
        return CapacityWeightedSplit()
    if name == "fidelity":
        return FidelityWeightedSplit()
    raise DeviceError(f"unknown split policy {policy!r}; expected one of {SPLIT_POLICY_NAMES}")


def resolve_merge_policy(policy: MergePolicy | str | None) -> MergePolicy:
    """Return a merge policy for a name, an instance, or ``None`` (weighted/sum)."""
    if policy is None:
        return WeightedCountsMerge()
    if not isinstance(policy, str):
        return policy
    name = policy.lower().replace("_", "-")
    if name == "weighted":
        return WeightedCountsMerge()
    raise DeviceError(f"unknown merge policy {policy!r}; expected one of {MERGE_POLICY_NAMES}")
