"""Virtual devices and the shot-wise :class:`DeviceFleet` scheduler.

A :class:`VirtualDevice` is a named, width-limited QPU description — a
capacity weight plus a :class:`~repro.devices.noise_model.NoiseModel`.  A
:class:`DeviceFleet` owns several of them and *is itself* a
:class:`~repro.circuits.backends.SimulatorBackend`: it can be passed
anywhere a backend is accepted (``CutPipeline(backend=fleet)``,
``estimate_multi_cut_expectation(..., backend=fleet)``, the CLI's
``--devices``), and every QPD term circuit submitted to it is shot-wise
distributed across the devices under the configured split policy, executed
noisily, and merged back into one histogram.

Determinism contract
--------------------

``run_batch`` spawns one child seed stream per circuit (the library-wide
contract) and each circuit's stream spawns one grandchild per device, so
device ``d``'s share of circuit ``i`` is always sampled from stream
``(i, d)`` — the same device spec and seed reproduce identical
:class:`~repro.circuits.counts.Counts` bitwise, whatever the inner backends
do, and adding shots to one device never perturbs another's draw.

Fleet specs
-----------

Fleets serialise to a small JSON document (see :func:`fleet_from_spec`)::

    {
      "split": "capacity",
      "merge": "weighted",
      "devices": [
        {"name": "qpu_a", "capacity": 4, "max_qubits": 5,
         "noise": {"depolarizing_2q": 0.01, "readout_p10": 0.02}},
        {"name": "qpu_b", "capacity": 1,
         "noise": {"depolarizing_2q": 0.05}}
      ]
    }
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.exceptions import DeviceError
from repro.circuits.backends import DistributionCache, SimulatorBackend, _check_batch
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.counts import Counts
from repro.devices.backend import NoisyDeviceBackend
from repro.devices.noise_model import NoiseModel
from repro.devices.policies import (
    MergePolicy,
    SplitPolicy,
    apportion_shots,
    resolve_merge_policy,
    resolve_split_policy,
)
from repro.utils.rng import SeedLike, spawn_seed_sequences

__all__ = [
    "VirtualDevice",
    "DeviceFleet",
    "fleet_from_spec",
    "load_fleet",
    "example_fleet_spec",
]


@dataclass(frozen=True)
class VirtualDevice:
    """One named virtual QPU: a capacity weight, a width limit and a noise model.

    Attributes
    ----------
    name:
        Device identifier (unique within a fleet).
    capacity:
        Relative throughput weight used by the capacity split policy.
    max_qubits:
        Largest circuit (in qubits) the device accepts; ``None`` means
        unlimited.  Wider circuits are routed around the device.
    noise:
        The device's error model.
    """

    name: str
    capacity: float = 1.0
    max_qubits: int | None = None
    noise: NoiseModel = field(default_factory=NoiseModel)

    def __post_init__(self):
        if not self.name:
            raise DeviceError("a device needs a non-empty name")
        if self.capacity <= 0:
            raise DeviceError(f"device {self.name!r}: capacity must be positive, got {self.capacity}")
        if self.max_qubits is not None and self.max_qubits < 1:
            raise DeviceError(
                f"device {self.name!r}: max_qubits must be at least 1, got {self.max_qubits}"
            )

    def accepts(self, circuit: QuantumCircuit) -> bool:
        """Return True when the circuit fits the device's width limit."""
        return self.max_qubits is None or circuit.num_qubits <= self.max_qubits


class DeviceFleet:
    """A shot-wise scheduler over noisy virtual devices — itself a simulator backend.

    Parameters
    ----------
    devices:
        The fleet members (at least one; names must be unique).
    split:
        Split policy (name or instance) assigning per-device shot weights;
        defaults to ``uniform``.
    merge:
        Merge policy (name or instance) recombining per-device histograms;
        defaults to the weighted counts merge (shot-proportional weights,
        i.e. the exact histogram sum).
    inner:
        Ideal backend (name or instance) each device wraps; ``None`` selects
        the vectorized backend.
    cache:
        Optional :class:`~repro.circuits.backends.DistributionCache` shared
        by all devices (noisy keys embed each device's noise fingerprint, so
        sharing is safe).

    Examples
    --------
    >>> from repro.devices import DeviceFleet, NoiseModel, VirtualDevice
    >>> fleet = DeviceFleet(
    ...     [
    ...         VirtualDevice("clean", capacity=2.0),
    ...         VirtualDevice("dirty", noise=NoiseModel(depolarizing_2q=0.05)),
    ...     ],
    ...     split="capacity",
    ... )
    >>> fleet.name
    'fleet(2 devices, capacity split)'
    """

    def __init__(
        self,
        devices: Sequence[VirtualDevice],
        split: SplitPolicy | str | None = None,
        merge: MergePolicy | str | None = None,
        inner: SimulatorBackend | str | None = None,
        cache: DistributionCache | None = None,
    ):
        devices = tuple(devices)
        if not devices:
            raise DeviceError("a fleet needs at least one device")
        names = [device.name for device in devices]
        if len(set(names)) != len(names):
            raise DeviceError(f"device names must be unique, got {names}")
        self.devices = devices
        self.split_policy = resolve_split_policy(split)
        self.merge_policy = resolve_merge_policy(merge)
        self.backends = tuple(
            NoisyDeviceBackend(device.noise, inner=inner, cache=cache) for device in devices
        )
        self.name = f"fleet({len(devices)} devices, {self.split_policy.name} split)"

    # -- scheduling --------------------------------------------------------------------

    def _eligible(self, circuit: QuantumCircuit) -> list[int]:
        indices = [i for i, device in enumerate(self.devices) if device.accepts(circuit)]
        if not indices:
            raise DeviceError(
                f"no device in the fleet accepts a {circuit.num_qubits}-qubit circuit "
                f"(limits: {[device.max_qubits for device in self.devices]})"
            )
        return indices

    def _split_weights(self, eligible: list[int]) -> np.ndarray:
        """Return the split weights of the eligible devices, naming dead schedules."""
        weights = np.asarray(
            self.split_policy.weights([self.devices[i] for i in eligible]), dtype=float
        )
        if weights.sum() <= 0.0:
            names = [self.devices[i].name for i in eligible]
            raise DeviceError(
                f"the {self.split_policy.name!r} split policy assigns zero weight to every "
                f"eligible device ({names}); no shots can be scheduled"
            )
        return weights

    def plan_shares(self, circuit: QuantumCircuit, shots: int) -> dict[str, int]:
        """Return the per-device shot shares the fleet would use for ``circuit``.

        Purely informational (the CLI's ``devices list`` and the docs use it);
        the same apportionment runs inside :meth:`run_batch`.
        """
        eligible = self._eligible(circuit)
        shares = apportion_shots(self._split_weights(eligible), int(shots))
        return {self.devices[i].name: int(share) for i, share in zip(eligible, shares)}

    def plan_round_shares(
        self, circuit: QuantumCircuit, round_budgets: Sequence[int]
    ) -> list[dict[str, int]]:
        """Return the per-device shot shares of each adaptive round.

        Round-structured execution submits every round as one ordinary
        batch, so each round's budget is apportioned across the fleet with
        the same largest-remainder split policy as a static run — this
        helper makes that schedule inspectable (``repro devices list`` and
        the adaptive tutorial use it).

        Parameters
        ----------
        circuit:
            The circuit whose width determines device eligibility.
        round_budgets:
            The per-round shot budgets (e.g. ``total_shots`` of each
            :class:`~repro.qpd.adaptive.RoundRecord`).

        Returns
        -------
        list[dict[str, int]]
            One per-device share mapping per round, exact per round.
        """
        return [self.plan_shares(circuit, int(budget)) for budget in round_budgets]

    # -- SimulatorBackend protocol -----------------------------------------------------

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: Sequence[int],
        seed: SeedLike = None,
    ) -> list[Counts]:
        """Distribute each circuit's budget across the fleet, run noisily, merge."""
        _check_batch(circuits, shots)
        children = spawn_seed_sequences(seed, len(circuits))

        # Per-circuit device shares under the split policy.
        shares_per_circuit: list[dict[int, int]] = []
        for circuit, count in zip(circuits, shots):
            if count == 0:
                shares_per_circuit.append({})
                continue
            eligible = self._eligible(circuit)
            shares = apportion_shots(self._split_weights(eligible), int(count))
            shares_per_circuit.append(
                {i: int(share) for i, share in zip(eligible, shares)}
            )

        # One batched exact-distribution pass per device over the circuits it
        # actually serves (cache-friendly: identical term circuits collapse).
        needed: dict[int, list[int]] = {}
        for index, shares in enumerate(shares_per_circuit):
            for device_index, share in shares.items():
                if share > 0:
                    needed.setdefault(device_index, []).append(index)
        distributions: dict[tuple[int, int], dict[str, float]] = {}
        for device_index, circuit_indices in needed.items():
            backend = self.backends[device_index]
            device_distributions = backend.exact_distributions(
                [circuits[i] for i in circuit_indices]
            )
            for circuit_index, distribution in zip(circuit_indices, device_distributions):
                distributions[(device_index, circuit_index)] = distribution

        # Sample every (circuit, device) cell from its own grandchild stream
        # and merge the per-device histograms.
        policy_weights = self.split_policy.weights(self.devices)
        results: list[Counts] = []
        for index, (circuit, child) in enumerate(zip(circuits, children)):
            shares = shares_per_circuit[index]
            device_children = child.spawn(len(self.devices))
            per_device: list[Counts] = []
            weights: list[float] = []
            for device_index, share in sorted(shares.items()):
                if share == 0:
                    continue
                distribution = distributions[(device_index, index)]
                counts = Counts.from_probabilities(
                    distribution,
                    shots=share,
                    num_clbits=circuit.num_clbits,
                    seed=np.random.default_rng(device_children[device_index]),
                )
                per_device.append(counts)
                weights.append(float(policy_weights[device_index]))
            if not per_device:
                results.append(Counts({}, num_clbits=circuit.num_clbits))
                continue
            results.append(
                self.merge_policy.merge(per_device, weights, circuit.num_clbits)
            )
        return results

    def exact_distributions(
        self, circuits: Sequence[QuantumCircuit]
    ) -> list[dict[str, float]]:
        """Return each circuit's infinite-shot fleet distribution.

        The fleet's exact distribution is the split-weighted mixture of the
        eligible devices' noisy distributions — the limit of :meth:`run_batch`
        as the budget grows.  One batched call per device serves the whole
        input, so the inner backends keep their grouping and caching.
        """
        shares_per_circuit: list[list[tuple[int, float]]] = []
        needed: dict[int, list[int]] = {}
        for index, circuit in enumerate(circuits):
            eligible = self._eligible(circuit)
            weights = self._split_weights(eligible)
            mass = weights.sum()
            shares = [
                (device_index, float(weight / mass))
                for device_index, weight in zip(eligible, weights)
                if weight > 0.0
            ]
            shares_per_circuit.append(shares)
            for device_index, _ in shares:
                needed.setdefault(device_index, []).append(index)

        distributions: dict[tuple[int, int], dict[str, float]] = {}
        for device_index, circuit_indices in needed.items():
            device_distributions = self.backends[device_index].exact_distributions(
                [circuits[i] for i in circuit_indices]
            )
            for circuit_index, distribution in zip(circuit_indices, device_distributions):
                distributions[(device_index, circuit_index)] = distribution

        results: list[dict[str, float]] = []
        for index in range(len(circuits)):
            mixture: dict[str, float] = {}
            for device_index, share in shares_per_circuit[index]:
                for bitstring, probability in distributions[(device_index, index)].items():
                    mixture[bitstring] = mixture.get(bitstring, 0.0) + share * probability
            results.append(mixture)
        return results

    # -- introspection -----------------------------------------------------------------

    def describe(self) -> list[dict[str, object]]:
        """Return one summary row per device (the CLI's ``devices list`` table)."""
        weights = np.asarray(self.split_policy.weights(self.devices), dtype=float)
        mass = weights.sum()
        rows = []
        for device, backend, weight in zip(self.devices, self.backends, weights):
            noise = device.noise
            rows.append(
                {
                    "name": device.name,
                    "capacity": device.capacity,
                    "max_qubits": device.max_qubits,
                    "depolarizing_1q": noise.depolarizing_1q,
                    "depolarizing_2q": noise.depolarizing_2q,
                    "amplitude_damping": noise.amplitude_damping,
                    "readout_p01": noise.readout_p01,
                    "readout_p10": noise.readout_p10,
                    "fidelity_weight": noise.fidelity_weight(),
                    "shot_share": float(weight / mass) if mass > 0 else 0.0,
                    "backend": backend.name,
                }
            )
        return rows

    def to_spec(self) -> dict:
        """Return the JSON spec document equivalent to this fleet.

        The spec round-trips through :func:`fleet_from_spec` (the inner
        backend and cache are construction-time choices, not part of the
        spec) and is what the job service embeds in a job payload so that
        *which fleet ran the job* is part of the job's content address.
        """
        devices = []
        for device in self.devices:
            noise = device.noise
            entry: dict = {"name": device.name, "capacity": float(device.capacity)}
            if device.max_qubits is not None:
                entry["max_qubits"] = int(device.max_qubits)
            entry["noise"] = {
                "depolarizing_1q": float(noise.depolarizing_1q),
                "depolarizing_2q": float(noise.depolarizing_2q),
                "amplitude_damping": float(noise.amplitude_damping),
                "readout_p01": float(noise.readout_p01),
                "readout_p10": float(noise.readout_p10),
            }
            devices.append(entry)
        return {
            "split": self.split_policy.name,
            "merge": self.merge_policy.name,
            "devices": devices,
        }

    def fingerprint(self) -> str:
        """Return a stable content hash of the fleet configuration.

        Two fleets with any differing device name, capacity, width limit,
        noise rate or policy produce different fingerprints; the hash is
        derived from :meth:`to_spec`, so it is independent of the inner
        backend and cache wiring.
        """
        from repro.utils.serialization import payload_fingerprint

        return payload_fingerprint(self.to_spec())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Return a short configuration summary."""
        return (
            f"DeviceFleet({[d.name for d in self.devices]}, "
            f"split={self.split_policy.name!r}, merge={self.merge_policy.name!r})"
        )


# ---------------------------------------------------------------------------
# Spec parsing
# ---------------------------------------------------------------------------

_DEVICE_KEYS = {"name", "capacity", "max_qubits", "noise"}
_SPEC_KEYS = {"devices", "split", "merge"}
_NOISE_KEYS = {
    "depolarizing_1q",
    "depolarizing_2q",
    "amplitude_damping",
    "readout_p01",
    "readout_p10",
}


def _spec_number(value, kind, context: str) -> float | int:
    """Convert a spec value to ``kind`` (float/int), translating failures to DeviceError."""
    try:
        return kind(value)
    except (TypeError, ValueError):
        raise DeviceError(f"{context} must be a number, got {value!r}") from None


def _noise_from_spec(entry: dict, device_name: str) -> NoiseModel:
    unknown = set(entry) - _NOISE_KEYS
    if unknown:
        raise DeviceError(
            f"device {device_name!r}: unknown noise keys {sorted(unknown)}; "
            f"expected a subset of {sorted(_NOISE_KEYS)}"
        )
    return NoiseModel(
        **{
            key: _spec_number(value, float, f"device {device_name!r}: noise {key}")
            for key, value in entry.items()
        }
    )


def fleet_from_spec(
    spec: dict,
    inner: SimulatorBackend | str | None = None,
    cache: DistributionCache | None = None,
) -> DeviceFleet:
    """Build a :class:`DeviceFleet` from a parsed JSON spec document.

    Parameters
    ----------
    spec:
        Mapping with a ``devices`` list and optional ``split`` / ``merge``
        policy names (see the module docstring for the schema).
    inner:
        Ideal backend every device wraps (name or instance).
    cache:
        Optional shared distribution cache.

    Raises
    ------
    DeviceError
        On unknown keys, missing devices, or invalid per-device parameters.
    """
    if not isinstance(spec, dict):
        raise DeviceError(f"a fleet spec must be a JSON object, got {type(spec).__name__}")
    unknown = set(spec) - _SPEC_KEYS
    if unknown:
        raise DeviceError(
            f"unknown fleet spec keys {sorted(unknown)}; expected a subset of {sorted(_SPEC_KEYS)}"
        )
    entries = spec.get("devices")
    if entries is not None and not isinstance(entries, list):
        raise DeviceError(
            f"'devices' must be a JSON array, got {type(entries).__name__}"
        )
    if not entries:
        raise DeviceError("a fleet spec needs a non-empty 'devices' list")
    devices = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise DeviceError(f"device entry {index} must be a JSON object")
        unknown = set(entry) - _DEVICE_KEYS
        if unknown:
            raise DeviceError(
                f"device entry {index}: unknown keys {sorted(unknown)}; "
                f"expected a subset of {sorted(_DEVICE_KEYS)}"
            )
        name = str(entry.get("name", f"device{index}"))
        devices.append(
            VirtualDevice(
                name=name,
                capacity=_spec_number(
                    entry.get("capacity", 1.0), float, f"device {name!r}: capacity"
                ),
                max_qubits=(
                    _spec_number(entry["max_qubits"], int, f"device {name!r}: max_qubits")
                    if entry.get("max_qubits") is not None
                    else None
                ),
                noise=_noise_from_spec(entry.get("noise", {}), name),
            )
        )
    return DeviceFleet(
        devices,
        split=spec.get("split"),
        merge=spec.get("merge"),
        inner=inner,
        cache=cache,
    )


def load_fleet(
    path: str | Path,
    inner: SimulatorBackend | str | None = None,
    cache: DistributionCache | None = None,
    split: SplitPolicy | str | None = None,
) -> DeviceFleet:
    """Load a :class:`DeviceFleet` from a JSON spec file.

    ``split`` overrides the spec's split policy when given (the CLI's
    ``--split`` flag).
    """
    path = Path(path)
    try:
        spec = json.loads(path.read_text())
    except FileNotFoundError:
        raise DeviceError(f"device spec file not found: {path}") from None
    except json.JSONDecodeError as error:
        raise DeviceError(f"device spec {path} is not valid JSON: {error}") from error
    if split is not None and isinstance(spec, dict):
        spec = {**spec, "split": split}
    return fleet_from_spec(spec, inner=inner, cache=cache)


def example_fleet_spec() -> dict:
    """Return the three-device demo spec used by the docs and ``repro devices list``.

    A clean high-capacity device, a mid-tier device with two-qubit gate and
    readout noise, and a narrow noisy device — enough heterogeneity for every
    split policy to produce a different schedule.
    """
    return {
        "split": "capacity",
        "merge": "weighted",
        "devices": [
            {
                "name": "qpu_clean",
                "capacity": 4,
                "noise": {"depolarizing_2q": 0.002, "readout_p10": 0.005},
            },
            {
                "name": "qpu_mid",
                "capacity": 2,
                "noise": {
                    "depolarizing_1q": 0.001,
                    "depolarizing_2q": 0.01,
                    "readout_p01": 0.01,
                    "readout_p10": 0.02,
                },
            },
            {
                "name": "qpu_small",
                "capacity": 1,
                "max_qubits": 4,
                "noise": {"depolarizing_2q": 0.05, "amplitude_damping": 0.01},
            },
        ],
    }
