"""Per-device noise models: gate noise channels plus classical readout error.

A :class:`NoiseModel` is the complete error description of one virtual QPU:

* **gate noise** — after every 1-qubit (2-qubit) gate a depolarising channel
  of strength ``depolarizing_1q`` (``depolarizing_2q``) acts on the gate's
  qubits, composed with per-qubit amplitude damping of rate
  ``amplitude_damping``.  The channels are the exact CPTP maps from
  :mod:`repro.quantum.channels`, applied inside the density-matrix
  simulation, so noisy outcome distributions are computed exactly rather
  than sampled.
* **readout error** — every recorded classical bit is passed through the
  2×2 confusion matrix built from ``readout_p01`` (a true 0 read as 1) and
  ``readout_p10`` (a true 1 read as 0).  The confusion is applied to the
  exact outcome distribution before sampling, which is statistically
  identical to flipping sampled bits shot by shot but keeps the one
  multinomial draw per circuit that the backend determinism contract
  relies on.  Feed-forward inside a circuit (teleportation corrections)
  uses the *true* mid-circuit outcomes; only the recorded register is
  confused, mirroring a device whose classical control is reliable but
  whose final readout is not.

Noise models are frozen and hashable; :meth:`NoiseModel.fingerprint` is the
stable content hash used to key noisy entries in a
:class:`~repro.circuits.backends.DistributionCache` so noisy and ideal
distributions can never collide.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from functools import lru_cache

import numpy as np

from repro.exceptions import DeviceError
from repro.quantum.channels import amplitude_damping_channel, depolarizing_channel

__all__ = ["NoiseModel"]


def _check_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise DeviceError(f"{name} must be in [0, 1], got {value}")
    return float(value)


@lru_cache(maxsize=64)
def _gate_kraus(
    depolarizing_p: float, amplitude_damping_gamma: float, num_qubits: int
) -> tuple[np.ndarray, ...] | None:
    """Return the local Kraus operators of the composed gate-noise channel.

    ``None`` means the channel is the identity (no noise at this arity), so
    the simulator can skip the Kraus application entirely.
    """
    channel = None
    if depolarizing_p > 0.0:
        channel = depolarizing_channel(depolarizing_p, num_qubits=num_qubits)
    if amplitude_damping_gamma > 0.0:
        damping = amplitude_damping_channel(amplitude_damping_gamma)
        for _ in range(num_qubits - 1):
            damping = damping.tensor(amplitude_damping_channel(amplitude_damping_gamma))
        channel = damping if channel is None else channel.compose(damping)
    if channel is None:
        return None
    return tuple(channel.kraus_operators)


@dataclass(frozen=True)
class NoiseModel:
    """Error description of one virtual device.

    Parameters
    ----------
    depolarizing_1q:
        Depolarising strength applied after every single-qubit gate.
    depolarizing_2q:
        Depolarising strength applied after every two-qubit gate.
    amplitude_damping:
        Per-qubit amplitude-damping rate applied (to each acted qubit) after
        every gate.
    readout_p01:
        Probability that a true ``0`` is recorded as ``1``.
    readout_p10:
        Probability that a true ``1`` is recorded as ``0``.

    Examples
    --------
    >>> model = NoiseModel(depolarizing_2q=0.02, readout_p10=0.01)
    >>> model.is_noiseless
    False
    >>> NoiseModel.ideal().is_noiseless
    True
    """

    depolarizing_1q: float = 0.0
    depolarizing_2q: float = 0.0
    amplitude_damping: float = 0.0
    readout_p01: float = 0.0
    readout_p10: float = 0.0

    def __post_init__(self):
        for field in fields(self):
            object.__setattr__(
                self, field.name, _check_probability(field.name, getattr(self, field.name))
            )

    # -- classification ----------------------------------------------------------------

    @classmethod
    def ideal(cls) -> "NoiseModel":
        """Return the noiseless model (every rate zero)."""
        return cls()

    @property
    def is_noiseless(self) -> bool:
        """True when every error rate is exactly zero."""
        return not (self.has_gate_noise or self.has_readout_error)

    @property
    def has_gate_noise(self) -> bool:
        """True when any gate-level channel is non-trivial."""
        return (
            self.depolarizing_1q > 0.0
            or self.depolarizing_2q > 0.0
            or self.amplitude_damping > 0.0
        )

    @property
    def has_readout_error(self) -> bool:
        """True when the readout confusion matrix is not the identity."""
        return self.readout_p01 > 0.0 or self.readout_p10 > 0.0

    def fingerprint(self) -> str:
        """Return a stable content hash of the full parameter set.

        The hash keys noisy entries in a shared
        :class:`~repro.circuits.backends.DistributionCache`: two models with
        any differing rate produce different fingerprints, and the ideal
        model's fingerprint never equals the bare circuit fingerprint used
        for ideal distributions.
        """
        digest = hashlib.blake2b(digest_size=12)
        for field in fields(self):
            digest.update(f"{field.name}={getattr(self, field.name)!r};".encode())
        return digest.hexdigest()

    def fidelity_weight(self) -> float:
        """Return a scalar quality proxy in ``[0, 1]`` used by fidelity-weighted splits.

        Defined as the product of the complements of every error rate — the
        survival probability of one two-qubit gate layer followed by readout.
        It is a scheduling heuristic (better devices get more shots), not a
        circuit fidelity.  A model with any rate at exactly 1.0 weighs 0 and
        receives no shots under the fidelity split.
        """
        return float(
            (1.0 - self.depolarizing_1q)
            * (1.0 - self.depolarizing_2q)
            * (1.0 - self.amplitude_damping)
            * (1.0 - self.readout_p01)
            * (1.0 - self.readout_p10)
        )

    # -- gate noise --------------------------------------------------------------------

    def gate_noise_hook(self, instruction) -> tuple[np.ndarray, ...] | None:
        """Return the local Kraus operators to apply after ``instruction``.

        This is the :data:`~repro.circuits.density_matrix_simulator.GateNoiseHook`
        passed to :class:`~repro.circuits.density_matrix_simulator.DensityMatrixSimulator`.
        Gates on three or more qubits receive the two-qubit depolarising rate
        (the conservative choice for a model parameterised by arity).
        """
        arity = len(instruction.qubits)
        depolarizing = self.depolarizing_1q if arity == 1 else self.depolarizing_2q
        return _gate_kraus(depolarizing, self.amplitude_damping, arity)

    # -- readout -----------------------------------------------------------------------

    def confusion_matrix(self) -> np.ndarray:
        """Return the single-bit confusion matrix ``M[read, true]``.

        Column ``true`` holds the distribution of recorded values given the
        true value: ``M = [[1−p01, p10], [p01, 1−p10]]``.
        """
        return np.array(
            [
                [1.0 - self.readout_p01, self.readout_p10],
                [self.readout_p01, 1.0 - self.readout_p10],
            ]
        )

    def apply_readout_error(self, distribution: dict[str, float]) -> dict[str, float]:
        """Return the outcome distribution after per-bit readout confusion.

        Every classical bit is confused independently; the input distribution
        is not modified.  With no readout error the input mapping is returned
        unchanged (same object), so ideal paths pay nothing.
        """
        if not self.has_readout_error:
            return distribution
        confusion = self.confusion_matrix()
        current = dict(distribution)
        if not current:
            return current
        num_bits = len(next(iter(current)))
        for bit in range(num_bits):
            updated: dict[str, float] = {}
            for bitstring, probability in current.items():
                if probability == 0.0:
                    continue
                true_value = int(bitstring[bit])
                for read_value in (0, 1):
                    weight = confusion[read_value, true_value]
                    if weight == 0.0:
                        continue
                    flipped = (
                        bitstring
                        if read_value == true_value
                        else bitstring[:bit] + str(read_value) + bitstring[bit + 1 :]
                    )
                    updated[flipped] = updated.get(flipped, 0.0) + probability * weight
            current = updated
        return current
