"""Cutting several wires of one circuit.

Cutting ``n`` wires independently multiplies the per-cut overheads
(``κ_total = Π κ_i``), which is the exponential-in-cuts cost the paper's
introduction motivates.  This module provides:

* :func:`build_multi_cut_circuits` / :func:`estimate_multi_cut_expectation` —
  apply a (possibly different) single-wire protocol at each cut location and
  estimate an observable of the multiply-cut circuit; terms are the Cartesian
  product of the per-cut terms with multiplied coefficients.
* :func:`independent_cuts_decomposition` — the channel-level tensor-product
  QPD, for analytic comparisons.
* overhead helpers re-exported from :mod:`repro.cutting.overhead` comparing
  independent cutting (3ⁿ without entanglement) with the optimal joint
  cutting bound (2^{n+1} − 1) of Brenner et al. [11], the future-work
  direction the paper mentions for NME states.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import _BASIS_CHANGE, exact_expectation
from repro.circuits.shot_simulator import ShotSimulator
from repro.cutting.base import GadgetWiring, WireCutProtocol
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import CutExpectationResult
from repro.qpd.allocation import allocate_shots
from repro.qpd.decomposition import QuasiProbDecomposition
from repro.qpd.estimator import TermEstimate, combine_term_estimates
from repro.quantum.paulis import PauliString
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "MultiCutTermCircuit",
    "build_multi_cut_circuits",
    "estimate_multi_cut_expectation",
    "independent_cuts_decomposition",
]


@dataclass(frozen=True)
class MultiCutTermCircuit:
    """One executable circuit for a combination of per-cut QPD terms.

    Attributes
    ----------
    circuit:
        The full circuit with every cut gadget inserted.
    coefficient:
        Product of the chosen terms' coefficients.
    term_indices:
        The chosen term index at each cut location (in the order the
        locations were given).
    qubit_map:
        Final mapping from original logical qubits to physical qubits.
    sign_clbits:
        Absolute classical bits whose parity multiplies measured observables.
    labels:
        Per-cut term labels.
    """

    circuit: QuantumCircuit
    coefficient: float
    term_indices: tuple[int, ...]
    qubit_map: dict[int, int]
    sign_clbits: tuple[int, ...]
    labels: tuple[str, ...]


def _validate_multi_locations(circuit: QuantumCircuit, locations: list[CutLocation]) -> None:
    if not locations:
        raise CuttingError("at least one cut location is required")
    seen = set()
    for location in locations:
        if not 0 <= location.qubit < circuit.num_qubits:
            raise CuttingError(f"cut qubit {location.qubit} out of range")
        if not 0 <= location.position <= len(circuit):
            raise CuttingError(f"cut position {location.position} out of range")
        key = (location.qubit, location.position)
        if key in seen:
            raise CuttingError(f"duplicate cut location {key}")
        seen.add(key)


def build_multi_cut_circuits(
    circuit: QuantumCircuit,
    locations: list[CutLocation],
    protocols: list[WireCutProtocol],
) -> list[MultiCutTermCircuit]:
    """Cut several wires and return one circuit per combination of QPD terms.

    ``protocols[i]`` is used at ``locations[i]``.  Cuts are inserted from the
    latest position to the earliest so that instruction positions given with
    respect to the *original* circuit stay valid.
    """
    if len(locations) != len(protocols):
        raise CuttingError("locations and protocols must have the same length")
    _validate_multi_locations(circuit, locations)

    order = sorted(range(len(locations)), key=lambda i: locations[i].position, reverse=True)
    term_choice_lists = [range(len(protocols[i].terms)) for i in range(len(protocols))]
    results = []

    for term_choice in product(*term_choice_lists):
        current = circuit
        qubit_map = {q: q for q in range(circuit.num_qubits)}
        coefficient = 1.0
        sign_clbits: list[int] = []
        labels: list[str] = []
        # Track how many instructions have been *prepended* before each original
        # position; since we insert from the latest position backwards, earlier
        # positions are unaffected by later insertions.
        for cut_rank in order:
            location = locations[cut_rank]
            protocol = protocols[cut_rank]
            term = protocol.terms[term_choice[cut_rank]]

            sender_qubit = qubit_map[location.qubit]
            receiver_qubit = current.num_qubits
            ancillas = tuple(
                range(current.num_qubits + 1, current.num_qubits + 1 + term.num_ancilla_qubits)
            )
            clbit_offset = current.num_clbits
            new_circuit = QuantumCircuit(
                current.num_qubits + 1 + term.num_ancilla_qubits,
                current.num_clbits + term.num_gadget_clbits,
                name=f"{circuit.name}_multicut",
            )
            for instruction in current.instructions[: location.position]:
                new_circuit.append(instruction)
            wiring = GadgetWiring(
                sender_qubit=sender_qubit,
                receiver_qubit=receiver_qubit,
                ancilla_qubits=ancillas,
                clbit_offset=clbit_offset,
            )
            term.build_gadget(new_circuit, wiring)
            remap = {sender_qubit: receiver_qubit}
            for instruction in current.instructions[location.position :]:
                new_circuit.append(instruction.remap(remap))

            coefficient *= term.coefficient
            sign_clbits.extend(clbit_offset + rel for rel in term.sign_clbits)
            labels.append(term.label)
            # Update the logical-to-physical map for subsequent (earlier) cuts
            # and for the final observable mapping.
            for logical, physical in qubit_map.items():
                if physical == sender_qubit:
                    qubit_map[logical] = receiver_qubit
            current = new_circuit

        # `labels` were accumulated in descending-position order; report them
        # in the caller's location order.
        ordered_labels = [""] * len(locations)
        ordered_indices = list(term_choice)
        position_in_order = {cut_rank: rank for rank, cut_rank in enumerate(order)}
        for cut_rank in range(len(locations)):
            ordered_labels[cut_rank] = labels[position_in_order[cut_rank]]

        results.append(
            MultiCutTermCircuit(
                circuit=current,
                coefficient=coefficient,
                term_indices=tuple(ordered_indices),
                qubit_map=dict(qubit_map),
                sign_clbits=tuple(sign_clbits),
                labels=tuple(ordered_labels),
            )
        )
    return results


def estimate_multi_cut_expectation(
    circuit: QuantumCircuit,
    locations: list[CutLocation],
    protocols: list[WireCutProtocol],
    observable: str | PauliString,
    shots: int,
    allocation: str = "proportional",
    seed: SeedLike = None,
    method: str = "exact",
    compute_exact: bool = True,
) -> CutExpectationResult:
    """Estimate a Pauli observable of a circuit with several wires cut."""
    rng = as_generator(seed)
    pauli = observable if isinstance(observable, PauliString) else PauliString(observable)
    if pauli.num_qubits != circuit.num_qubits:
        raise CuttingError(
            f"observable acts on {pauli.num_qubits} qubits, circuit has {circuit.num_qubits}"
        )
    term_circuits = build_multi_cut_circuits(circuit, locations, protocols)
    coefficients = np.array([t.coefficient for t in term_circuits])
    magnitudes = np.abs(coefficients)
    probabilities = magnitudes / magnitudes.sum()
    shots_per_term = allocate_shots(probabilities, shots, strategy=allocation, seed=rng)

    simulator = ShotSimulator(method=method)
    term_estimates = []
    for term_circuit, term_shots in zip(term_circuits, shots_per_term):
        if term_shots == 0:
            term_estimates.append(
                TermEstimate(
                    coefficient=term_circuit.coefficient,
                    mean=0.0,
                    shots=0,
                    label="+".join(term_circuit.labels),
                )
            )
            continue
        base = term_circuit.circuit
        active = [
            (term_circuit.qubit_map[q], p) for q, p in enumerate(pauli.labels) if p != "I"
        ]
        measured = QuantumCircuit(base.num_qubits, base.num_clbits + len(active))
        measured.compose(base, inplace=True)
        observable_clbits = []
        for offset, (qubit, label) in enumerate(active):
            for gate_name, params in _BASIS_CHANGE[label]:
                measured.gate(gate_name, qubit, params)
            clbit = base.num_clbits + offset
            measured.measure(qubit, clbit)
            observable_clbits.append(clbit)
        counts = simulator.run(measured, shots=int(term_shots), seed=rng)
        selected = observable_clbits + list(term_circuit.sign_clbits)
        mean = counts.expectation_z(selected) if selected else 1.0
        term_estimates.append(
            TermEstimate(
                coefficient=term_circuit.coefficient,
                mean=mean,
                shots=int(term_shots),
                label="+".join(term_circuit.labels),
            )
        )
    estimate = combine_term_estimates(term_estimates)
    exact_value = exact_expectation(circuit, pauli.to_matrix()) if compute_exact else None
    return CutExpectationResult(
        value=estimate.value,
        standard_error=estimate.standard_error,
        total_shots=estimate.total_shots,
        kappa=estimate.kappa,
        shots_per_term=tuple(int(s) for s in shots_per_term),
        term_estimates=estimate.term_estimates,
        protocol_name="+".join(p.name for p in protocols),
        exact_value=exact_value,
    )


def independent_cuts_decomposition(
    protocols: list[WireCutProtocol],
) -> QuasiProbDecomposition:
    """Return the channel-level QPD of cutting each wire independently.

    The result acts on ``len(protocols)`` qubits and its κ is the product of
    the per-protocol κ values.
    """
    if not protocols:
        raise CuttingError("at least one protocol is required")
    decomposition = protocols[0].decomposition()
    for protocol in protocols[1:]:
        decomposition = decomposition.tensor(protocol.decomposition())
    return decomposition
