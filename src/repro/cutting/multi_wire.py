"""Cutting several wires of one circuit.

Cutting ``n`` wires independently multiplies the per-cut overheads
(``κ_total = Π κ_i``), which is the exponential-in-cuts cost the paper's
introduction motivates.  This module provides:

* :func:`build_multi_cut_circuits` — apply a (possibly different)
  single-wire protocol at each cut location; terms are the Cartesian product
  of the per-cut terms with multiplied coefficients.  Cuts may share a wire
  at different positions (a wire crossing several time slices is cut at each
  of them), which is what lets :func:`repro.cutting.cut_finding.plan_cuts`
  split a circuit into more than two fragments.
* :func:`estimate_multi_cut_expectation` — estimate an observable of the
  multiply-cut circuit.  All term circuits are submitted to a
  :class:`~repro.circuits.backends.SimulatorBackend` as one batch, so the
  vectorized and process-pool backends accelerate multi-cut estimation
  exactly as they do the single-cut executor; results are bitwise identical
  across backends for the same seed.  This is the execute stage of
  :class:`repro.pipeline.CutPipeline`.
* :func:`independent_cuts_decomposition` — the channel-level tensor-product
  QPD, for analytic comparisons.
* overhead helpers re-exported from :mod:`repro.cutting.overhead` comparing
  independent cutting (3ⁿ without entanglement) with the optimal joint
  cutting bound (2^{n+1} − 1) of Brenner et al. [11], the future-work
  direction the paper mentions for NME states.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits.backends import SimulatorBackend, resolve_backend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import _BASIS_CHANGE, exact_expectation
from repro.cutting.base import GadgetWiring, WireCutProtocol
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import ESTIMATION_MODES, CutExpectationResult, _backend_round_executor
from repro.qpd.adaptive import (
    DEFAULT_MAX_ROUNDS,
    AdaptiveConfig,
    AdaptiveResult,
    RoundRecord,
    run_adaptive_rounds,
)
from repro.qpd.allocation import allocate_shots
from repro.qpd.decomposition import QuasiProbDecomposition
from repro.qpd.estimator import TermEstimate, combine_term_estimates
from repro.quantum.paulis import PauliString
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "MultiCutTermCircuit",
    "build_multi_cut_circuits",
    "estimate_multi_cut_expectation",
    "execute_term_circuits",
    "execute_term_circuits_adaptive",
    "independent_cuts_decomposition",
    "measured_multi_cut_circuit",
]


@dataclass(frozen=True)
class MultiCutTermCircuit:
    """One executable circuit for a combination of per-cut QPD terms.

    Attributes
    ----------
    circuit:
        The full circuit with every cut gadget inserted.
    coefficient:
        Product of the chosen terms' coefficients.
    term_indices:
        The chosen term index at each cut location (in the order the
        locations were given).
    qubit_map:
        Final mapping from original logical qubits to physical qubits.
    sign_clbits:
        Absolute classical bits whose parity multiplies measured observables.
    labels:
        Per-cut term labels.
    entangled_pairs:
        Number of pre-shared entangled pairs one shot of this term consumes
        (resource accounting across all cuts).
    """

    circuit: QuantumCircuit
    coefficient: float
    term_indices: tuple[int, ...]
    qubit_map: dict[int, int]
    sign_clbits: tuple[int, ...]
    labels: tuple[str, ...]
    entangled_pairs: int = 0

    @property
    def label(self) -> str:
        """Combined term label (per-cut labels joined with ``+``)."""
        return "+".join(self.labels)


def _validate_multi_locations(circuit: QuantumCircuit, locations: list[CutLocation]) -> None:
    """Reject out-of-range or duplicate cut locations."""
    if not locations:
        raise CuttingError("at least one cut location is required")
    seen = set()
    for location in locations:
        if not 0 <= location.qubit < circuit.num_qubits:
            raise CuttingError(f"cut qubit {location.qubit} out of range")
        if not 0 <= location.position <= len(circuit):
            raise CuttingError(f"cut position {location.position} out of range")
        key = (location.qubit, location.position)
        if key in seen:
            raise CuttingError(f"duplicate cut location {key}")
        seen.add(key)


def build_multi_cut_circuits(
    circuit: QuantumCircuit,
    locations: list[CutLocation],
    protocols: list[WireCutProtocol],
) -> list[MultiCutTermCircuit]:
    """Cut several wires and return one circuit per combination of QPD terms.

    ``protocols[i]`` is used at ``locations[i]``.  Cuts are inserted from the
    latest position to the earliest so that instruction positions given with
    respect to the *original* circuit stay valid.  The same wire may be cut
    at several positions: each cut transfers it onto a fresh receiver qubit,
    so a chain of cuts realises a chain of fragments.

    Parameters
    ----------
    circuit:
        The original (uncut) circuit; it is not modified.
    locations:
        The cut locations, one per protocol.
    protocols:
        The single-wire protocol applied at each location.

    Returns
    -------
    list[MultiCutTermCircuit]
        One executable circuit per element of the Cartesian product of the
        per-cut term sets, with multiplied coefficients.
    """
    if len(locations) != len(protocols):
        raise CuttingError("locations and protocols must have the same length")
    _validate_multi_locations(circuit, locations)

    order = sorted(range(len(locations)), key=lambda i: locations[i].position, reverse=True)
    results = []

    for term_choice in product(*(range(len(p.terms)) for p in protocols)):
        current = circuit
        qubit_map = {q: q for q in range(circuit.num_qubits)}
        coefficient = 1.0
        sign_clbits: list[int] = []
        labels: list[str] = []
        pairs = 0
        # Track how many instructions have been *prepended* before each original
        # position; since we insert from the latest position backwards, earlier
        # positions are unaffected by later insertions.
        for cut_rank in order:
            location = locations[cut_rank]
            protocol = protocols[cut_rank]
            term = protocol.terms[term_choice[cut_rank]]

            # Instructions before this cut are never remapped (later cuts only
            # remap instructions after their own, later, position), so the wire
            # carrying the cut qubit here is always the original index — even
            # when the same wire is cut again at a later position.
            sender_qubit = location.qubit
            receiver_qubit = current.num_qubits
            ancillas = tuple(
                range(current.num_qubits + 1, current.num_qubits + 1 + term.num_ancilla_qubits)
            )
            clbit_offset = current.num_clbits
            new_circuit = QuantumCircuit(
                current.num_qubits + 1 + term.num_ancilla_qubits,
                current.num_clbits + term.num_gadget_clbits,
                name=f"{circuit.name}_multicut",
            )
            for instruction in current.instructions[: location.position]:
                new_circuit.append(instruction)
            wiring = GadgetWiring(
                sender_qubit=sender_qubit,
                receiver_qubit=receiver_qubit,
                ancilla_qubits=ancillas,
                clbit_offset=clbit_offset,
            )
            term.build_gadget(new_circuit, wiring)
            remap = {sender_qubit: receiver_qubit}
            for instruction in current.instructions[location.position :]:
                new_circuit.append(instruction.remap(remap))

            coefficient *= term.coefficient
            sign_clbits.extend(clbit_offset + rel for rel in term.sign_clbits)
            labels.append(term.label)
            if term.consumes_entangled_pair:
                pairs += 1
            # Update the logical-to-physical map for subsequent (earlier) cuts
            # and for the final observable mapping.
            for logical, physical in qubit_map.items():
                if physical == sender_qubit:
                    qubit_map[logical] = receiver_qubit
            current = new_circuit

        # `labels` were accumulated in descending-position order; report them
        # in the caller's location order.
        ordered_labels = [""] * len(locations)
        ordered_indices = list(term_choice)
        position_in_order = {cut_rank: rank for rank, cut_rank in enumerate(order)}
        for cut_rank in range(len(locations)):
            ordered_labels[cut_rank] = labels[position_in_order[cut_rank]]

        results.append(
            MultiCutTermCircuit(
                circuit=current,
                coefficient=coefficient,
                term_indices=tuple(ordered_indices),
                qubit_map=dict(qubit_map),
                sign_clbits=tuple(sign_clbits),
                labels=tuple(ordered_labels),
                entangled_pairs=pairs,
            )
        )
    return results


def measured_multi_cut_circuit(
    term_circuit: MultiCutTermCircuit, pauli: PauliString
) -> tuple[QuantumCircuit, list[int]]:
    """Append observable basis changes and measurements to a multi-cut term circuit.

    Parameters
    ----------
    term_circuit:
        The term circuit to measure.
    pauli:
        Pauli observable over the original circuit's logical qubits.

    Returns
    -------
    tuple[QuantumCircuit, list[int]]
        The measured circuit and the classical bits whose parity (together
        with the term's sign bits) gives the signed observable outcome.
    """
    base = term_circuit.circuit
    active = [
        (term_circuit.qubit_map[q], p) for q, p in enumerate(pauli.labels) if p != "I"
    ]
    measured = QuantumCircuit(
        base.num_qubits, base.num_clbits + len(active), name=f"{base.name}_meas"
    )
    measured.compose(base, inplace=True)
    observable_clbits = []
    for offset, (qubit, label) in enumerate(active):
        for gate_name, params in _BASIS_CHANGE[label]:
            measured.gate(gate_name, qubit, params)
        clbit = base.num_clbits + offset
        measured.measure(qubit, clbit)
        observable_clbits.append(clbit)
    return measured, observable_clbits + list(term_circuit.sign_clbits)


def execute_term_circuits(
    term_circuits: Sequence[MultiCutTermCircuit],
    pauli: PauliString,
    shots: int,
    allocation: str = "proportional",
    seed: SeedLike = None,
    backend: SimulatorBackend | str | None = None,
    method: str = "exact",
) -> tuple[list[TermEstimate], list[int]]:
    """Allocate, measure, batch-run and summarise a product term set.

    This is the shared execute step of :func:`estimate_multi_cut_expectation`
    and :meth:`repro.pipeline.CutPipeline.execute`: the shot budget is split
    across the terms by ``allocation`` (proportional to coefficient
    magnitudes by default), every term circuit is measured in the
    observable's basis, and the batch runs through ``backend`` with one seed
    stream per circuit.

    Parameters
    ----------
    term_circuits:
        The product term set from :func:`build_multi_cut_circuits`.
    pauli:
        Normalised Pauli observable over the original logical qubits.
    shots:
        Total shot budget across all term circuits.
    allocation:
        Shot-allocation strategy.
    seed:
        Seed or generator for allocation and sampling.
    backend:
        Execution backend (name or instance); ``None`` selects serial.
    method:
        Shot-simulator method (serial backend only).

    Returns
    -------
    tuple[list[TermEstimate], list[int]]
        Per-term empirical summaries and the shots assigned to each term.
    """
    rng = as_generator(seed)
    coefficients = np.array([t.coefficient for t in term_circuits])
    magnitudes = np.abs(coefficients)
    probabilities = magnitudes / magnitudes.sum()
    shots_per_term = allocate_shots(probabilities, shots, strategy=allocation, seed=rng)

    exec_backend = resolve_backend(backend, method=method)
    measured_circuits: list[QuantumCircuit] = []
    selected_clbits: list[list[int]] = []
    for term_circuit in term_circuits:
        measured, selected = measured_multi_cut_circuit(term_circuit, pauli)
        measured_circuits.append(measured)
        selected_clbits.append(selected)

    # A term with no measured bits at all (e.g. the identity term of a
    # zero-cut plan under an all-identity observable) has a deterministic
    # +1 outcome: spend no simulator shots on it.  Submitting zeros keeps
    # the per-circuit seed streams aligned, so cross-backend identity holds.
    submitted_shots = [
        int(count) if selected else 0
        for count, selected in zip(shots_per_term, selected_clbits)
    ]
    counts_per_term = exec_backend.run_batch(measured_circuits, submitted_shots, seed=rng)
    term_estimates = []
    for term_circuit, term_shots, counts, selected in zip(
        term_circuits, shots_per_term, counts_per_term, selected_clbits
    ):
        if term_shots == 0:
            mean = 0.0
        elif selected:
            mean = counts.expectation_z(selected)
        else:
            mean = 1.0
        term_estimates.append(
            TermEstimate(
                coefficient=term_circuit.coefficient,
                mean=mean,
                shots=int(term_shots),
                label=term_circuit.label,
            )
        )
    return term_estimates, [int(s) for s in shots_per_term]


def execute_term_circuits_adaptive(
    term_circuits: Sequence[MultiCutTermCircuit],
    pauli: PauliString,
    config: AdaptiveConfig,
    seed: SeedLike = None,
    backend: SimulatorBackend | str | None = None,
    method: str = "exact",
    completed_rounds: Sequence[RoundRecord] = (),
    on_round=None,
    execution: str = "inprocess",
    workers: int | None = None,
) -> tuple[list[TermEstimate], list[int], AdaptiveResult]:
    """Round-structured execution of a product term set with early stopping.

    The adaptive counterpart of :func:`execute_term_circuits`: the measured
    term circuits are built once, then the streaming engine of
    :mod:`repro.qpd.adaptive` plans each round's allocation from the terms'
    running statistics, submits the whole batch to ``backend`` with the
    round's shot counts (zero-shot entries keep the per-circuit seed
    streams aligned), merges the per-round means, and stops when the
    pooled standard error reaches ``config.target_error`` or the budget is
    exhausted.

    Parameters
    ----------
    term_circuits:
        The product term set from :func:`build_multi_cut_circuits`.
    pauli:
        Normalised Pauli observable over the original logical qubits.
    config:
        The adaptive-engine configuration (target error, budget, rounds,
        planner).
    seed:
        Master seed; round ``r`` always executes from the ``r``-th spawned
        child sequence.
    backend:
        Execution backend (name or instance); ``None`` selects serial.
    method:
        Shot-simulator method (serial backend only).
    completed_rounds:
        Rounds persisted by an interrupted run; replayed into the running
        statistics without re-execution (crash resume is bitwise
        identical).
    on_round:
        Optional progress hook forwarded to the engine (called after every
        live round with the record and a progress summary).
    execution:
        ``"inprocess"`` (default) or ``"distributed"``: fan each round out
        over the multi-process work-stealing pool of
        :mod:`repro.distributed`.  Bitwise identical to in-process for the
        same seed, whatever the worker count or steal order.
    workers:
        Distributed execution's worker-process count.

    Returns
    -------
    tuple[list[TermEstimate], list[int], AdaptiveResult]
        Per-term summaries with running statistics, total shots per term,
        and the engine result (round records + convergence).
    """
    exec_backend = resolve_backend(backend, method=method)
    measured_circuits: list[QuantumCircuit] = []
    selected_clbits: list[list[int]] = []
    for term_circuit in term_circuits:
        measured, selected = measured_multi_cut_circuit(term_circuit, pauli)
        measured_circuits.append(measured)
        selected_clbits.append(selected)

    adaptive = run_adaptive_rounds(
        [term.coefficient for term in term_circuits],
        _backend_round_executor(exec_backend, measured_circuits, selected_clbits),
        config,
        seed=seed,
        labels=[term.label for term in term_circuits],
        completed_rounds=completed_rounds,
        on_round=on_round,
        execution=execution,
        workers=workers,
    )
    term_estimates = list(adaptive.estimate.term_estimates)
    shots_per_term = [int(estimate.shots) for estimate in term_estimates]
    return term_estimates, shots_per_term, adaptive


def estimate_multi_cut_expectation(
    circuit: QuantumCircuit,
    locations: list[CutLocation],
    protocols: list[WireCutProtocol],
    observable: str | PauliString,
    shots: int,
    allocation: str = "proportional",
    seed: SeedLike = None,
    method: str = "exact",
    compute_exact: bool = True,
    backend: SimulatorBackend | str | None = None,
    mode: str = "static",
    target_error: float | None = None,
    rounds: int = DEFAULT_MAX_ROUNDS,
    planner: str | None = None,
    execution: str = "inprocess",
    workers: int | None = None,
) -> CutExpectationResult:
    """Estimate a Pauli observable of a circuit with several wires cut.

    The full tensor-product QPD term set is built, the shot budget is split
    across the product terms proportionally to the coefficient-magnitude
    products (or per ``allocation``), and all term circuits are executed as
    one batch through ``backend``.

    Parameters
    ----------
    circuit:
        The original (uncut) circuit; it is not modified.
    locations:
        The cut locations, one per protocol.
    protocols:
        The single-wire protocol applied at each location.
    observable:
        Pauli observable over the circuit's logical qubits.
    shots:
        Total shot budget across all product-term circuits.  In adaptive
        mode this is the hard ceiling; fewer shots are spent when the
        target error is reached early.
    allocation:
        Shot-allocation strategy (``proportional``, ``multinomial``,
        ``uniform``).
    seed:
        Seed or generator for all sampling.  Static mode consumes it
        exactly as before (bitwise-identical results); adaptive mode
        derives one child stream per round.
    method:
        Shot-simulator method (``exact`` or ``trajectory``; serial backend
        only).
    compute_exact:
        Also compute the exact uncut value for error reporting.
    backend:
        Execution backend (name or instance); ``None`` selects the serial
        backend.  All backends yield identical results for the same seed.
    mode:
        ``"static"`` (default) or ``"adaptive"`` (round-structured
        execution with early stopping).
    target_error:
        Adaptive mode's stopping threshold on the pooled standard error
        (required when ``mode="adaptive"``).
    rounds:
        Adaptive mode's round limit.
    planner:
        Adaptive mode's per-round planner name (``"neyman"`` by default).
    execution:
        Adaptive mode's round execution: ``"inprocess"`` (default) or
        ``"distributed"`` (the work-stealing pool of
        :mod:`repro.distributed`; bitwise identical to in-process).
    workers:
        Distributed execution's worker-process count.

    Returns
    -------
    CutExpectationResult
        The recombined estimate with per-term summaries.
    """
    if mode not in ESTIMATION_MODES:
        raise CuttingError(f"unknown mode {mode!r}; expected one of {ESTIMATION_MODES}")
    if execution != "inprocess" and mode != "adaptive":
        raise CuttingError("distributed execution requires mode='adaptive'")
    pauli = observable if isinstance(observable, PauliString) else PauliString(observable)
    if pauli.num_qubits != circuit.num_qubits:
        raise CuttingError(
            f"observable acts on {pauli.num_qubits} qubits, circuit has {circuit.num_qubits}"
        )
    term_circuits = build_multi_cut_circuits(circuit, locations, protocols)
    exact_value = exact_expectation(circuit, pauli.to_matrix()) if compute_exact else None
    protocol_name = "+".join(p.name for p in protocols)
    if mode == "adaptive":
        if target_error is None:
            raise CuttingError("adaptive mode requires target_error")
        config = AdaptiveConfig(
            target_error=target_error, max_shots=int(shots), max_rounds=rounds, planner=planner
        )
        _, _, adaptive = execute_term_circuits_adaptive(
            term_circuits,
            pauli,
            config,
            seed=seed,
            backend=backend,
            method=method,
            execution=execution,
            workers=workers,
        )
        return CutExpectationResult.from_adaptive(adaptive, protocol_name, exact_value)
    term_estimates, shots_per_term = execute_term_circuits(
        term_circuits,
        pauli,
        shots,
        allocation=allocation,
        seed=seed,
        backend=backend,
        method=method,
    )
    estimate = combine_term_estimates(term_estimates)
    return CutExpectationResult(
        value=estimate.value,
        standard_error=estimate.standard_error,
        total_shots=estimate.total_shots,
        kappa=estimate.kappa,
        shots_per_term=tuple(shots_per_term),
        term_estimates=estimate.term_estimates,
        protocol_name=protocol_name,
        exact_value=exact_value,
    )


def independent_cuts_decomposition(
    protocols: list[WireCutProtocol],
) -> QuasiProbDecomposition:
    """Return the channel-level QPD of cutting each wire independently.

    The result acts on ``len(protocols)`` qubits and its κ is the product of
    the per-protocol κ values.

    Parameters
    ----------
    protocols:
        The per-wire protocols to tensor together.

    Returns
    -------
    QuasiProbDecomposition
        The tensor-product decomposition.
    """
    if not protocols:
        raise CuttingError("at least one protocol is required")
    decomposition = protocols[0].decomposition()
    for protocol in protocols[1:]:
        decomposition = decomposition.tensor(protocol.decomposition())
    return decomposition
