"""Applying a wire-cut protocol to a circuit location.

:func:`build_cut_circuits` takes an (uncut) circuit, a :class:`CutLocation`
identifying a wire (qubit + position in the instruction stream) and a
:class:`~repro.cutting.base.WireCutProtocol`, and produces one executable
circuit per QPD term.  Each term circuit contains:

* the original instructions up to the cut (the *sender fragment*),
* the term's gadget, which transfers the cut wire onto a fresh receiver
  qubit using only local operations, classical communication and — for NME
  protocols — a pre-shared resource pair,
* the original instructions after the cut (the *receiver fragment*), with the
  cut qubit remapped onto the receiver qubit.

The sender/receiver partition is recorded so that a genuinely distributed
execution (two devices exchanging classical messages) maps one-to-one onto
the produced circuits; in this repository both fragments run inside one
simulator, which is statistically equivalent (see DESIGN.md, substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import MEASURE, RESET
from repro.cutting.base import GadgetWiring, WireCutProtocol, WireCutTerm

__all__ = ["CutLocation", "CutTermCircuit", "build_cut_circuits", "cut_wire"]


@dataclass(frozen=True)
class CutLocation:
    """Identifies where a wire is cut.

    Attributes
    ----------
    qubit:
        The qubit whose wire is cut.
    position:
        Number of leading instructions of the original circuit that belong to
        the sender fragment (the cut happens *after* instruction
        ``position − 1``).  ``position = len(circuit)`` cuts at the very end
        of the circuit.
    """

    qubit: int
    position: int


@dataclass(frozen=True)
class CutTermCircuit:
    """One executable circuit realising a single QPD term of a cut.

    Attributes
    ----------
    circuit:
        The full term circuit (sender fragment + gadget + receiver fragment).
    term:
        The protocol term this circuit realises.
    term_index:
        Index of the term within the protocol.
    qubit_map:
        Mapping from original (logical) qubit indices to the physical qubit
        indices of ``circuit`` after the cut.
    gadget_clbits:
        Absolute classical-bit indices written by the gadget.
    sign_clbits:
        Absolute classical-bit indices whose parity multiplies measured
        observables during post-processing.
    sender_qubits / receiver_qubits:
        The partition of physical qubits between the two devices a
        distributed execution would use.
    """

    circuit: QuantumCircuit
    term: WireCutTerm
    term_index: int
    qubit_map: dict[int, int]
    gadget_clbits: tuple[int, ...]
    sign_clbits: tuple[int, ...]
    sender_qubits: tuple[int, ...] = field(default_factory=tuple)
    receiver_qubits: tuple[int, ...] = field(default_factory=tuple)

    @property
    def coefficient(self) -> float:
        """The term's quasiprobability coefficient."""
        return self.term.coefficient


def _validate_location(circuit: QuantumCircuit, location: CutLocation) -> None:
    if not 0 <= location.qubit < circuit.num_qubits:
        raise CuttingError(
            f"cut qubit {location.qubit} out of range for a {circuit.num_qubits}-qubit circuit"
        )
    if not 0 <= location.position <= len(circuit):
        raise CuttingError(
            f"cut position {location.position} out of range for a circuit with "
            f"{len(circuit)} instructions"
        )
    for instruction in circuit.instructions[location.position :]:
        if instruction.kind in (MEASURE, RESET) and location.qubit in instruction.qubits:
            raise CuttingError(
                "the cut qubit is measured or reset after the cut point; cut before "
                "non-unitary operations on the wire"
            )


def build_cut_circuits(
    circuit: QuantumCircuit,
    location: CutLocation,
    protocol: WireCutProtocol,
) -> list[CutTermCircuit]:
    """Return one :class:`CutTermCircuit` per QPD term of ``protocol``.

    The original circuit is left untouched.
    """
    _validate_location(circuit, location)
    term_circuits = []
    for index, term in enumerate(protocol.terms):
        term_circuits.append(_build_single_term(circuit, location, term, index, protocol.name))
    return term_circuits


def _build_single_term(
    circuit: QuantumCircuit,
    location: CutLocation,
    term: WireCutTerm,
    term_index: int,
    protocol_name: str,
) -> CutTermCircuit:
    num_original = circuit.num_qubits
    receiver_qubit = num_original
    ancilla_qubits = tuple(range(num_original + 1, num_original + 1 + term.num_ancilla_qubits))
    total_qubits = num_original + 1 + term.num_ancilla_qubits
    clbit_offset = circuit.num_clbits
    total_clbits = clbit_offset + term.num_gadget_clbits

    cut_circuit = QuantumCircuit(
        total_qubits, total_clbits, name=f"{circuit.name}_{protocol_name}_term{term_index}"
    )

    # Sender fragment: instructions before the cut, unchanged.
    for instruction in circuit.instructions[: location.position]:
        cut_circuit.append(instruction)

    # The cut gadget.
    wiring = GadgetWiring(
        sender_qubit=location.qubit,
        receiver_qubit=receiver_qubit,
        ancilla_qubits=ancilla_qubits,
        clbit_offset=clbit_offset,
    )
    term.build_gadget(cut_circuit, wiring)

    # Receiver fragment: remaining instructions with the cut qubit remapped.
    qubit_remap = {location.qubit: receiver_qubit}
    for instruction in circuit.instructions[location.position :]:
        cut_circuit.append(instruction.remap(qubit_remap))

    qubit_map = {q: q for q in range(num_original)}
    qubit_map[location.qubit] = receiver_qubit
    gadget_clbits = tuple(range(clbit_offset, clbit_offset + term.num_gadget_clbits))
    sign_clbits = tuple(clbit_offset + relative for relative in term.sign_clbits)

    sender_qubits = tuple(range(num_original)) + ancilla_qubits
    receiver_qubits = (receiver_qubit,)

    return CutTermCircuit(
        circuit=cut_circuit,
        term=term,
        term_index=term_index,
        qubit_map=qubit_map,
        gadget_clbits=gadget_clbits,
        sign_clbits=sign_clbits,
        sender_qubits=sender_qubits,
        receiver_qubits=receiver_qubits,
    )


def cut_wire(
    circuit: QuantumCircuit,
    qubit: int,
    position: int,
    protocol: WireCutProtocol,
) -> list[CutTermCircuit]:
    """Convenience wrapper around :func:`build_cut_circuits`."""
    return build_cut_circuits(circuit, CutLocation(qubit=qubit, position=position), protocol)
