"""Virtual entanglement distillation (Section II-C) and the Appendix-B construction.

Section II-C of the paper recalls that a maximally entangled state Φ can be
*quasiprobabilistically simulated* from an NME resource ρ with optimal
overhead ``γ̂_ρ(Φ) = 2/f(ρ) − 1`` (Eq. 17) — "virtual entanglement
distillation" [21].  Appendix B's upper-bound argument then builds a wire cut
from that simulation: teleport through the *virtually distilled* pair.

This module implements the constructive side for pure resources ``|Φ_k⟩``:

* :func:`virtual_bell_decomposition` — an explicit QPD of the maximally
  entangled two-qubit state in terms of LOCC maps applied to ``Φ_k``,
  attaining the optimal overhead ``2/f − 1``;
* :class:`DistilledTeleportWireCut` — the Appendix-B wire cut: plain
  teleportation through each term of the virtual Bell pair.  Its κ equals the
  NME cut's κ (both are optimal), but it uses different circuits; it serves
  as an independent cross-check of Theorem 1's upper bound and as an ablation
  against the *direct* Theorem-2 construction (which needs no separate
  distillation step).

The decomposition follows Appendix B's Figure-7 construction read forwards:
locally prepare a maximally entangled pair Φ_AB on the sender, then apply
each Theorem-2 wire-cut term to "transmit" qubit B through the NME resource
ρ_CD.  The induced linear maps on the resource,

* ``G_{1,2}(ρ) = Σ_σ ⟨Φ_σ|ρ|Φ_σ⟩ · (I ⊗ U_i σ U_i†)Φ(I ⊗ U_i σ U_i†)`` (the
  teleportation terms — operationally a local Bell measurement on the
  sender's (B, C) pair plus a conditional Pauli at the receiver, i.e. LOCC),
* ``G_3(ρ) = Tr[ρ] · ½ Σ_j |j, 1−j⟩⟨j, 1−j|`` (the measure-and-flip term,
  which consumes no entanglement),

combine as ``Φ = a·G_1(Φ_k) + a·G_2(Φ_k) − b·G_3(Φ_k)`` with
``κ = 2a + b = 2/f(Φ_k) − 1``.  The identity is verified numerically at
construction time — construction fails loudly otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.base import GadgetWiring, WireCutProtocol, WireCutTerm
from repro.cutting.nme_cut import nme_coefficients
from repro.cutting.overhead import nme_overhead
from repro.quantum.bell import bell_state, phi_k_density
from repro.quantum.channels import QuantumChannel
from repro.quantum.gates import H, S
from repro.qpd.decomposition import QuasiProbDecomposition
from repro.qpd.terms import QPDTerm
from repro.teleport.protocol import bell_measurement, prepare_phi_k, teleportation_corrections

__all__ = [
    "virtual_bell_decomposition",
    "DistilledTeleportWireCut",
]


def _teleport_distillation_channel(basis_unitary: np.ndarray) -> QuantumChannel:
    """LOCC map induced by teleporting half of a fresh Φ through the resource pair.

    Kraus operators ``K_σ = |out_σ⟩⟨Φ_σ|`` with
    ``|out_σ⟩ = (I ⊗ U σ U†)|Φ⟩``: a local Bell measurement on the sender's
    qubits selects the Bell component Φ_σ of the resource, and the receiver's
    conditional Pauli leaves the rotated Bell state ``|out_σ⟩`` shared between
    the parties.  Trace preserving because both {|Φ_σ⟩} and {|out_σ⟩} are
    orthonormal bases.
    """
    from repro.quantum.bell import bell_basis_states
    from repro.quantum.gates import PAULI_MATRICES

    phi_vector = bell_state("I").data
    kraus = []
    for label, bell in bell_basis_states().items():
        rotated_pauli = basis_unitary @ PAULI_MATRICES[label] @ basis_unitary.conj().T
        out_vector = np.kron(np.eye(2, dtype=complex), rotated_pauli) @ phi_vector
        kraus.append(np.outer(out_vector, bell.data.conj()))
    return QuantumChannel(kraus)


def _flip_distillation_channel() -> QuantumChannel:
    """LOCC map of the measure-and-flip term: discard the resource, output the anti-correlated mixture."""
    kraus = []
    for j in range(2):
        out = np.zeros(4, dtype=complex)
        out[j * 2 + (1 - j)] = 1.0  # |j, 1-j>
        for m in range(4):
            bra_m = np.zeros(4, dtype=complex)
            bra_m[m] = 1.0
            kraus.append(np.sqrt(0.5) * np.outer(out, bra_m.conj()))
    return QuantumChannel(kraus)


def virtual_bell_decomposition(k: float, atol: float = 1e-9) -> QuasiProbDecomposition:
    """Return the QPD ``Φ = Σ_i c_i G_i(Φ_k)`` with LOCC maps ``G_i`` and optimal κ (Eq. 17).

    Parameters
    ----------
    k:
        Resource parameter of ``|Φ_k⟩``.
    atol:
        Verification tolerance.

    Raises
    ------
    CuttingError
        If the constructed decomposition fails to reproduce Φ exactly or does
        not attain the optimal overhead ``2/f(Φ_k) − 1`` — which would signal
        an implementation bug, so the check is always on.
    """
    if k < 0:
        raise CuttingError(f"k must be non-negative, got {k}")
    a, b = nme_coefficients(k)
    u2 = S @ H
    phi = bell_state("I").to_density_matrix().data

    terms = [
        QPDTerm(coefficient=a, channel=_teleport_distillation_channel(H), label="virtual-U1"),
        QPDTerm(coefficient=a, channel=_teleport_distillation_channel(u2), label="virtual-U2"),
    ]
    if b > 1e-15:
        terms.append(
            QPDTerm(coefficient=-b, channel=_flip_distillation_channel(), label="virtual-flip")
        )
    decomposition = QuasiProbDecomposition(terms, name=f"virtual-bell(k={k:g})")

    reconstructed = decomposition.apply_exact(phi_k_density(k).data)
    if not np.allclose(reconstructed, phi, atol=atol):
        raise CuttingError("virtual Bell decomposition failed verification")
    if abs(decomposition.kappa - nme_overhead(k)) > 1e-8:
        raise CuttingError("virtual Bell decomposition does not attain the optimal overhead")
    return decomposition


def _distilled_teleport_gadget(k: float, basis_label: str):
    """Gadget: teleport through Φ_k with the Theorem-2 basis rotation applied to the *pair*.

    Operationally identical to the NME-cut gadget (the rotations commute
    through the teleportation), but expressed as the Appendix-B order:
    distill-then-teleport.  Kept separate so the ablation benchmark can time
    both formulations and confirm they sample identical distributions.
    """

    def gadget(circuit: QuantumCircuit, wiring: GadgetWiring) -> None:
        """Append the distill-then-teleport gadget at the wired qubits."""
        sender = wiring.sender_qubit
        ancilla = wiring.ancilla_qubits[0]
        receiver = wiring.receiver_qubit
        clbit_a, clbit_b = wiring.clbit(0), wiring.clbit(1)
        # Prepare the NME pair first (the "resource" of the distillation).
        prepare_phi_k(circuit, k, ancilla, receiver)
        # Basis rotation on the sender side of the virtual pair.
        if basis_label == "U1":
            circuit.h(sender)
        else:
            circuit.sdg(sender)
            circuit.h(sender)
        bell_measurement(circuit, sender, ancilla, clbit_a, clbit_b)
        teleportation_corrections(circuit, receiver, clbit_a, clbit_b)
        if basis_label == "U1":
            circuit.h(receiver)
        else:
            circuit.h(receiver)
            circuit.s(receiver)

    return gadget


class DistilledTeleportWireCut(WireCutProtocol):
    """Appendix-B wire cut: teleportation through a virtually distilled Bell pair.

    Channel-wise identical to :class:`~repro.cutting.nme_cut.NMEWireCut`
    (both attain the Theorem-1 optimum); the gadget circuits order the
    operations as the Appendix-B proof does.  Used as an independent
    cross-check and in the formulation ablation.
    """

    name = "distilled-teleport"

    def __init__(self, k: float):
        super().__init__()
        if k < 0:
            raise CuttingError(f"k must be non-negative, got {k}")
        self.k = float(k)

    def build_terms(self) -> tuple[WireCutTerm, ...]:
        """Construct the Appendix-B terms in distill-then-teleport order."""
        from repro.cutting.nme_cut import _teleport_term_channel
        from repro.cutting.standard_cut import _flip_gadget, _flip_prepare_channel

        a, b = nme_coefficients(self.k)
        u2 = S @ H
        terms = [
            WireCutTerm(
                coefficient=a,
                channel=_teleport_term_channel(self.k, H),
                label="distilled-teleport-U1",
                gadget_builder=_distilled_teleport_gadget(self.k, "U1"),
                num_ancilla_qubits=1,
                num_gadget_clbits=2,
                consumes_entangled_pair=True,
            ),
            WireCutTerm(
                coefficient=a,
                channel=_teleport_term_channel(self.k, u2),
                label="distilled-teleport-U2",
                gadget_builder=_distilled_teleport_gadget(self.k, "U2"),
                num_ancilla_qubits=1,
                num_gadget_clbits=2,
                consumes_entangled_pair=True,
            ),
        ]
        if b > 1e-15:
            terms.append(
                WireCutTerm(
                    coefficient=-b,
                    channel=_flip_prepare_channel(),
                    label="measure-flip-prepare-Z",
                    gadget_builder=_flip_gadget,
                    num_gadget_clbits=1,
                )
            )
        return tuple(terms)

    def theoretical_overhead(self) -> float:
        """Return Corollary 1's κ for the distilled protocol."""
        return nme_overhead(self.k)
