"""The original Pauli-basis wire cut (Peng et al. [13]), κ = 4.

The identity is expanded in the Pauli operator basis,

.. math::

    \\rho = \\tfrac12\\left(\\mathrm{Tr}[\\rho]\\,I + \\mathrm{Tr}[X\\rho]\\,X
          + \\mathrm{Tr}[Y\\rho]\\,Y + \\mathrm{Tr}[Z\\rho]\\,Z\\right),

and each Pauli term is split into its two eigen-projector preparations,
giving eight observable-weighted measure-and-prepare terms with coefficients
``±1/2`` and total overhead ``κ = 4``.  The measured Pauli eigenvalue is a
classical ±1 factor folded into post-processing, which the term records via
``sign_clbits``.  This protocol is the historical baseline against which the
optimal κ = 3 cut and the paper's NME cut are compared in the ablation
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.cutting.base import GadgetWiring, WireCutProtocol, WireCutTerm, superoperator_from_map
from repro.cutting.overhead import peng_overhead
from repro.quantum.gates import PAULI_MATRICES

__all__ = ["PengWireCut"]

# Preparation circuits (gate sequences applied to |0>) for the six Pauli eigenstates.
_PREPARATIONS: dict[str, tuple[tuple[str, tuple[float, ...]], ...]] = {
    "0": (),
    "1": (("x", ()),),
    "+": (("h", ()),),
    "-": (("x", ()), ("h", ())),
    "+i": (("h", ()), ("s", ())),
    "-i": (("x", ()), ("h", ()), ("s", ())),
}

_PREPARED_KETS: dict[str, np.ndarray] = {
    "0": np.array([1, 0], dtype=complex),
    "1": np.array([0, 1], dtype=complex),
    "+": np.array([1, 1], dtype=complex) / np.sqrt(2),
    "-": np.array([1, -1], dtype=complex) / np.sqrt(2),
    "+i": np.array([1, 1j], dtype=complex) / np.sqrt(2),
    "-i": np.array([1, -1j], dtype=complex) / np.sqrt(2),
}

# Basis-change gates applied on the sender before a Z measurement to measure
# the given Pauli observable.
_MEASUREMENT_ROTATIONS: dict[str, tuple[tuple[str, tuple[float, ...]], ...]] = {
    "I": (),
    "X": (("h", ()),),
    "Y": (("sdg", ()), ("h", ())),
    "Z": (),
}


def _make_gadget(observable: str, prepared: str):
    """Return a gadget builder measuring ``observable`` and preparing ``prepared``."""

    def gadget(circuit: QuantumCircuit, wiring: GadgetWiring) -> None:
        """Append the measure/prepare pair at the wired qubits."""
        clbit = wiring.clbit(0)
        for gate_name, params in _MEASUREMENT_ROTATIONS[observable]:
            circuit.gate(gate_name, wiring.sender_qubit, params)
        circuit.measure(wiring.sender_qubit, clbit)
        for gate_name, params in _PREPARATIONS[prepared]:
            circuit.gate(gate_name, wiring.receiver_qubit, params)

    return gadget


def _term_superoperator(observable: str, prepared: str) -> np.ndarray:
    """Superoperator of the linear (not CP) map ``ρ ↦ Tr[Oρ]·|ψ⟩⟨ψ|``."""
    pauli = PAULI_MATRICES[observable]
    ket = _PREPARED_KETS[prepared]
    projector = np.outer(ket, ket.conj())

    def apply_map(rho: np.ndarray) -> np.ndarray:
        """Apply the term's linear map to one density matrix."""
        return np.trace(pauli @ rho) * projector

    return superoperator_from_map(apply_map)


class PengWireCut(WireCutProtocol):
    """Pauli-basis measure-and-prepare wire cut (κ = 4)."""

    name = "peng"

    #: (observable, prepared state, coefficient) for the eight terms.
    TERM_SPECS: tuple[tuple[str, str, float], ...] = (
        ("I", "0", 0.5),
        ("I", "1", 0.5),
        ("X", "+", 0.5),
        ("X", "-", -0.5),
        ("Y", "+i", 0.5),
        ("Y", "-i", -0.5),
        ("Z", "0", 0.5),
        ("Z", "1", -0.5),
    )

    def build_terms(self) -> tuple[WireCutTerm, ...]:
        """Construct the eight Pauli measure-and-prepare terms."""
        terms = []
        for observable, prepared, coefficient in self.TERM_SPECS:
            sign_clbits = () if observable == "I" else (0,)
            terms.append(
                WireCutTerm(
                    coefficient=coefficient,
                    superoperator_matrix=_term_superoperator(observable, prepared),
                    label=f"measure-{observable}-prepare-{prepared}",
                    gadget_builder=_make_gadget(observable, prepared),
                    num_gadget_clbits=1,
                    sign_clbits=sign_clbits,
                    metadata={"observable": observable, "prepared": prepared},
                )
            )
        return tuple(terms)

    def theoretical_overhead(self) -> float:
        """Return the Peng cut's κ = 4."""
        return peng_overhead()
