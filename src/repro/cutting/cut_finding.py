"""Automatic search for wire-cut locations (related work [38, 39]).

Circuit cutting is only useful if good cut points can be found.  This module
implements a small, exact search for single- and few-wire cuts that partition
a circuit into two fragments, each fitting a device with a limited number of
qubits, while minimising the total sampling overhead:

* the circuit is viewed as a dependency graph of instructions on wire
  segments;
* a *cut set* is a set of (qubit, position) locations; removing those wire
  segments must disconnect the instruction graph into a "front" part (only
  instructions before the cuts on the cut wires plus anything connected to
  them) and a "back" part;
* each fragment's width is the number of wires it touches (plus one receiver
  qubit per incoming cut on the back fragment, plus any resource ancillas);
* the cost of a cut set is the product of the per-cut overheads, i.e. κⁿ for
  n identical single-wire cuts (Corollary 1 supplies κ as a function of the
  available entanglement).

The search enumerates *time-slice* cut sets — all cuts share a single
position in the instruction stream — which is exactly the regime the paper's
distribution scenario targets (split a circuit between two devices) and keeps
the search exact and fast for the circuit sizes a statevector simulator can
handle anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.cutter import CutLocation
from repro.cutting.overhead import nme_overhead

__all__ = ["CutPlan", "find_time_slice_cuts", "fragment_widths"]


@dataclass(frozen=True)
class CutPlan:
    """A proposed set of wire cuts splitting a circuit into two fragments.

    Attributes
    ----------
    locations:
        The wire-cut locations (all sharing the same instruction position).
    front_qubits / back_qubits:
        Qubits whose remaining instructions execute on the first / second
        device.  Cut qubits appear in both (their wire continues on a
        receiver qubit in the back fragment).
    front_width / back_width:
        Number of physical qubits each device needs, *including* the receiver
        qubits for incoming cut wires (but excluding protocol ancillas, which
        depend on the protocol chosen later).
    sampling_overhead:
        Product of the per-cut κ values used for ranking.
    """

    locations: tuple[CutLocation, ...]
    front_qubits: tuple[int, ...]
    back_qubits: tuple[int, ...]
    front_width: int
    back_width: int
    sampling_overhead: float

    @property
    def num_cuts(self) -> int:
        """Number of wire cuts in the plan."""
        return len(self.locations)


def _touched_qubits(circuit: QuantumCircuit, start: int, stop: int) -> set[int]:
    """Return the qubits touched by instructions ``start:stop``."""
    touched: set[int] = set()
    for instruction in circuit.instructions[start:stop]:
        touched.update(instruction.qubits)
    return touched


def fragment_widths(circuit: QuantumCircuit, position: int, cut_qubits: set[int]) -> tuple[int, int]:
    """Return (front, back) fragment widths for a time-slice cut at ``position``.

    The front fragment holds every qubit touched before the cut; the back
    fragment holds every qubit touched after the cut, where each *cut* qubit
    contributes a fresh receiver wire.
    """
    front = _touched_qubits(circuit, 0, position)
    back = _touched_qubits(circuit, position, len(circuit))
    # Qubits used after the cut but never cut must live entirely on the back
    # device; qubits used on both sides and not cut force the fragments to
    # overlap (handled by the caller as an invalid plan).
    return len(front), len(back)


def find_time_slice_cuts(
    circuit: QuantumCircuit,
    max_fragment_width: int,
    entanglement_overlap: float | None = None,
    max_cuts: int | None = None,
) -> list[CutPlan]:
    """Enumerate valid time-slice cut plans, best (lowest overhead) first.

    Parameters
    ----------
    circuit:
        The circuit to split (measurement-free on the wires to be cut).
    max_fragment_width:
        Maximum number of qubits either device can hold (receiver qubits for
        cut wires count; protocol ancillas do not).
    entanglement_overlap:
        Entanglement level ``f(Φ_k)`` available between the devices; ``None``
        means no entanglement (κ = 3 per cut).  Used only to rank plans by
        total sampling overhead.
    max_cuts:
        Optional upper bound on the number of simultaneous cuts.

    Returns
    -------
    list[CutPlan]
        All valid plans sorted by (overhead, number of cuts).  Empty when the
        circuit cannot be split at any time slice under the width constraint.
    """
    if max_fragment_width < 1:
        raise CuttingError("max_fragment_width must be at least 1")
    if entanglement_overlap is None:
        per_cut_kappa = 3.0
    else:
        from repro.quantum.bell import k_from_overlap

        per_cut_kappa = nme_overhead(k_from_overlap(entanglement_overlap))

    plans: list[CutPlan] = []
    num_instructions = len(circuit)
    for position in range(1, num_instructions):
        front = _touched_qubits(circuit, 0, position)
        back = _touched_qubits(circuit, position, num_instructions)
        # Wires crossing the slice must be cut.
        crossing = front & back
        if max_cuts is not None and len(crossing) > max_cuts:
            continue
        if not crossing:
            # The circuit already factorises at this slice; no cut needed, so
            # it is not a cutting plan (callers can split trivially).
            continue
        front_width = len(front)
        # The back fragment needs one fresh receiver wire per cut plus its
        # other (uncut) wires.
        back_width = len(back)
        if front_width > max_fragment_width or back_width > max_fragment_width:
            continue
        locations = tuple(CutLocation(qubit=q, position=position) for q in sorted(crossing))
        plans.append(
            CutPlan(
                locations=locations,
                front_qubits=tuple(sorted(front)),
                back_qubits=tuple(sorted(back)),
                front_width=front_width,
                back_width=back_width,
                sampling_overhead=float(per_cut_kappa ** len(crossing)),
            )
        )
    plans.sort(key=lambda plan: (plan.sampling_overhead, plan.num_cuts, plan.locations[0].position))
    return plans
