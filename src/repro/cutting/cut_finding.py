"""Automatic search for wire-cut locations (related work [38, 39]).

Circuit cutting is only useful if good cut points can be found.  This module
implements a small, exact search for time-slice wire cuts that partition a
circuit into fragments, each fitting a device with a limited number of
qubits, while minimising the total sampling overhead:

* the circuit is viewed as a dependency graph of instructions on wire
  segments;
* a *cut set* is a set of (qubit, position) locations; removing those wire
  segments must disconnect the instruction stream into consecutive fragments
  (one per time slice plus one), each executable on its own device;
* each fragment's width is the number of wires it touches (a cut wire
  continues on a fresh receiver qubit, so the count is unchanged; a wire that
  merely passes through a fragment between two cuts still occupies a qubit);
* the cost of a cut set is the product of the per-cut overheads, i.e. κⁿ for
  n identical single-wire cuts (Corollary 1 supplies κ as a function of the
  available entanglement).

Two planners are provided:

* :func:`find_time_slice_cuts` — the original single-slice search: all cuts
  share one position in the instruction stream, yielding exactly two
  fragments.  This is the regime the paper's distribution scenario targets
  (split a circuit between two devices).
* :func:`plan_cuts` — the generalisation used by
  :class:`repro.pipeline.CutPipeline`: plans may contain several time
  slices (found by repeated bipartition of over-wide fragments), so a
  circuit can be split into more than two fragments, each below the device
  width, with n independent wire cuts and total overhead κⁿ.

Both searches are exact for the circuit sizes a statevector simulator can
handle anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.cutter import CutLocation
from repro.cutting.overhead import nme_overhead

__all__ = [
    "CutPlan",
    "Fragment",
    "MultiCutPlan",
    "find_time_slice_cuts",
    "fragment_widths",
    "plan_cuts",
    "plan_from_locations",
    "plan_from_positions",
]


@dataclass(frozen=True)
class CutPlan:
    """A proposed set of wire cuts splitting a circuit into two fragments.

    Attributes
    ----------
    locations:
        The wire-cut locations (all sharing the same instruction position).
    front_qubits / back_qubits:
        Qubits whose remaining instructions execute on the first / second
        device.  Cut qubits appear in both (their wire continues on a
        receiver qubit in the back fragment).
    front_width / back_width:
        Number of physical qubits each device needs, *including* the receiver
        qubits for incoming cut wires (but excluding protocol ancillas, which
        depend on the protocol chosen later).
    sampling_overhead:
        Product of the per-cut κ values used for ranking.
    """

    locations: tuple[CutLocation, ...]
    front_qubits: tuple[int, ...]
    back_qubits: tuple[int, ...]
    front_width: int
    back_width: int
    sampling_overhead: float

    @property
    def num_cuts(self) -> int:
        """Number of wire cuts in the plan."""
        return len(self.locations)


@dataclass(frozen=True)
class Fragment:
    """One contiguous slice of a multi-cut plan, executable on its own device.

    Attributes
    ----------
    start / stop:
        The fragment covers instructions ``start:stop`` of the original
        circuit.
    qubits:
        Original wire indices present in the fragment: wires touched by its
        instructions plus wires that pass through between two cuts without
        being touched (they still occupy a physical qubit).
    width:
        Number of physical qubits the fragment's device needs (receiver
        qubits replace cut wires one-for-one, so this equals
        ``len(qubits)``; protocol ancillas are excluded).
    """

    start: int
    stop: int
    qubits: tuple[int, ...]
    width: int


@dataclass(frozen=True)
class MultiCutPlan:
    """A set of time-slice wire cuts splitting a circuit into ≥ 2 fragments.

    Produced by :func:`plan_cuts` (or directly by
    :func:`plan_from_positions`) and consumed by
    :class:`repro.pipeline.CutPipeline`, whose decompose stage applies one
    wire-cut protocol per location.

    Attributes
    ----------
    positions:
        The time-slice positions, strictly increasing; fragment ``i`` spans
        the instructions between consecutive positions.
    locations:
        One :class:`~repro.cutting.cutter.CutLocation` per wire crossing a
        slice.  A wire crossing several slices is cut at each of them.
    fragments:
        The resulting :class:`Fragment` partition (``len(positions) + 1``
        entries).
    sampling_overhead:
        Product of the per-cut κ values used for ranking (κⁿ for n cuts at a
        uniform entanglement level).
    """

    positions: tuple[int, ...]
    locations: tuple[CutLocation, ...]
    fragments: tuple[Fragment, ...]
    sampling_overhead: float

    @property
    def num_cuts(self) -> int:
        """Number of wire cuts in the plan."""
        return len(self.locations)

    @property
    def num_fragments(self) -> int:
        """Number of device-sized fragments the plan produces."""
        return len(self.fragments)

    @property
    def max_width(self) -> int:
        """Width of the widest fragment (the binding device constraint)."""
        return max(fragment.width for fragment in self.fragments)


def _touched_qubits(circuit: QuantumCircuit, start: int, stop: int) -> set[int]:
    """Return the qubits touched by instructions ``start:stop``."""
    touched: set[int] = set()
    for instruction in circuit.instructions[start:stop]:
        touched.update(instruction.qubits)
    return touched


def _wire_usage(circuit: QuantumCircuit) -> dict[int, tuple[int, int]]:
    """Return, per qubit, the (first, last) instruction index touching it."""
    usage: dict[int, tuple[int, int]] = {}
    for index, instruction in enumerate(circuit.instructions):
        for qubit in instruction.qubits:
            first, _ = usage.get(qubit, (index, index))
            usage[qubit] = (first, index)
    return usage


def fragment_widths(circuit: QuantumCircuit, position: int, cut_qubits: set[int]) -> tuple[int, int]:
    """Return (front, back) fragment widths for a time-slice cut at ``position``.

    The front fragment holds every qubit touched before the cut; the back
    fragment holds every qubit touched after the cut, where each *cut* qubit
    contributes a fresh receiver wire.
    """
    front = _touched_qubits(circuit, 0, position)
    back = _touched_qubits(circuit, position, len(circuit))
    # Qubits used after the cut but never cut must live entirely on the back
    # device; qubits used on both sides and not cut force the fragments to
    # overlap (handled by the caller as an invalid plan).
    return len(front), len(back)


def _per_cut_kappa(entanglement_overlap: float | None) -> float:
    """Return the per-cut κ for ranking: 3 without entanglement, Corollary 1 with."""
    if entanglement_overlap is None:
        return 3.0
    from repro.quantum.bell import k_from_overlap

    return nme_overhead(k_from_overlap(entanglement_overlap))


def plan_from_positions(
    circuit: QuantumCircuit,
    positions: tuple[int, ...] | list[int],
    entanglement_overlap: float | None = None,
) -> MultiCutPlan:
    """Build the :class:`MultiCutPlan` cutting ``circuit`` at the given time slices.

    Parameters
    ----------
    circuit:
        The circuit to split.
    positions:
        Strictly increasing slice positions in ``1 .. len(circuit) - 1``.
        Every wire crossing a slice is cut there; a wire crossing several
        slices is cut at each.
    entanglement_overlap:
        Entanglement level ``f(Φ_k)`` used to rank the plan by total sampling
        overhead; ``None`` means no entanglement (κ = 3 per cut).

    Returns
    -------
    MultiCutPlan
        The plan with its fragments, cut locations and κⁿ overhead.

    Raises
    ------
    CuttingError
        If the positions are not strictly increasing interior slices.
    """
    ordered = tuple(int(p) for p in positions)
    if not ordered:
        raise CuttingError("at least one slice position is required")
    if list(ordered) != sorted(set(ordered)):
        raise CuttingError(f"slice positions must be strictly increasing, got {positions}")
    if ordered[0] < 1 or ordered[-1] > len(circuit) - 1:
        raise CuttingError(
            f"slice positions must lie in 1..{len(circuit) - 1}, got {positions}"
        )
    return _build_plan(
        circuit, ordered, _wire_usage(circuit), _per_cut_kappa(entanglement_overlap)
    )


def _fragments_between(
    circuit: QuantumCircuit,
    interior: tuple[int, ...],
    usage: dict[int, tuple[int, int]],
) -> tuple[Fragment, ...]:
    """Build the fragment partition for the given interior slice positions.

    Each fragment holds the wires its instructions touch plus any *through*
    wire — used before the fragment and again at or after its end but never
    inside — which still occupies a physical qubit while passing through.
    """
    boundaries = (0,) + interior + (len(circuit),)
    fragments: list[Fragment] = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        touched = _touched_qubits(circuit, start, stop)
        through = {
            qubit
            for qubit, (first, last) in usage.items()
            if first < start and last >= stop and qubit not in touched
        }
        present = tuple(sorted(touched | through))
        fragments.append(Fragment(start=start, stop=stop, qubits=present, width=len(present)))
    return tuple(fragments)


def _build_plan(
    circuit: QuantumCircuit,
    ordered: tuple[int, ...],
    usage: dict[int, tuple[int, int]],
    per_cut_kappa: float,
) -> MultiCutPlan:
    """Assemble a plan from validated slice positions and precomputed wire usage."""
    locations: list[CutLocation] = []
    for position in ordered:
        crossing = {
            qubit
            for qubit, (first, last) in usage.items()
            if first < position <= last
        }
        locations.extend(CutLocation(qubit=q, position=position) for q in sorted(crossing))

    return MultiCutPlan(
        positions=ordered,
        locations=tuple(sorted(locations, key=lambda loc: (loc.position, loc.qubit))),
        fragments=_fragments_between(circuit, ordered, usage),
        sampling_overhead=float(per_cut_kappa ** len(locations)),
    )


def plan_from_locations(
    circuit: QuantumCircuit,
    locations: tuple[CutLocation, ...] | list[CutLocation],
    entanglement_overlap: float | None = None,
) -> MultiCutPlan:
    """Wrap explicit cut locations into a :class:`MultiCutPlan`.

    Unlike :func:`plan_from_positions`, the locations are taken as given —
    including end-of-circuit cuts (``position == len(circuit)``, the paper's
    single-qubit workload) and cuts that do not cover every wire crossing a
    slice.  Fragment metadata is derived from the interior slice positions
    only, so it is advisory for such plans.

    Parameters
    ----------
    circuit:
        The circuit the locations refer to.
    locations:
        The wire cuts to perform.
    entanglement_overlap:
        Entanglement level ``f(Φ_k)`` used for the κⁿ overhead metadata;
        ``None`` means no entanglement (κ = 3 per cut).

    Returns
    -------
    MultiCutPlan
        A plan carrying exactly the given locations.

    Raises
    ------
    CuttingError
        If no locations are given or one is out of range.
    """
    if not locations:
        raise CuttingError("at least one cut location is required")
    for location in locations:
        if not 0 <= location.qubit < circuit.num_qubits:
            raise CuttingError(f"cut qubit {location.qubit} out of range")
        if not 0 <= location.position <= len(circuit):
            raise CuttingError(f"cut position {location.position} out of range")
    interior = tuple(
        sorted({loc.position for loc in locations if 0 < loc.position < len(circuit)})
    )
    usage = _wire_usage(circuit)
    per_cut_kappa = _per_cut_kappa(entanglement_overlap)
    return MultiCutPlan(
        positions=interior,
        locations=tuple(sorted(locations, key=lambda loc: (loc.position, loc.qubit))),
        fragments=_fragments_between(circuit, interior, usage),
        sampling_overhead=float(per_cut_kappa ** len(locations)),
    )


#: Default bound on the number of time slices :func:`plan_cuts` will try;
#: raise ``max_fragments`` past ``_DEFAULT_MAX_SLICES + 1`` to search deeper.
_DEFAULT_MAX_SLICES = 6


def _feasible_position_tuples(circuit, num_slices, max_fragment_width):
    """Yield slice tuples whose every fragment's touched-width fits the device.

    The touched-qubit count of a fragment is a lower bound on its final
    width (through wires only add), and it is monotone in the fragment's
    length — so an over-wide prefix fragment prunes its entire subtree and
    the enumeration never materialises the combinatorial candidate space a
    flat ``itertools.combinations`` sweep would.  Candidates still get an
    exact width check (including through wires) by the caller.
    """
    instructions = circuit.instructions
    num_instructions = len(instructions)
    # suffix_fits[q] — does the final fragment [q, N) fit the device?
    suffix_fits = [False] * (num_instructions + 1)
    touched: set[int] = set()
    suffix_fits[num_instructions] = True
    for q in range(num_instructions - 1, 0, -1):
        touched.update(instructions[q].qubits)
        suffix_fits[q] = len(touched) <= max_fragment_width

    def _extend(prefix: tuple[int, ...], start: int):
        depth = len(prefix)
        fragment: set[int] = set()
        for q in range(start + 1, num_instructions - (num_slices - depth - 1)):
            fragment.update(instructions[q - 1].qubits)
            if len(fragment) > max_fragment_width:
                return
            if depth + 1 == num_slices:
                if suffix_fits[q]:
                    yield prefix + (q,)
            else:
                yield from _extend(prefix + (q,), q)

    yield from _extend((), 0)


def plan_cuts(
    circuit: QuantumCircuit,
    max_fragment_width: int,
    entanglement_overlap: float | None = None,
    max_cuts: int | None = None,
    max_fragments: int | None = None,
) -> list[MultiCutPlan]:
    """Enumerate valid multi-slice cut plans, best (lowest overhead) first.

    The search deepens by repeated bipartition: first every single time
    slice is tried, then every pair, and so on — so plans with more than two
    fragments (and cuts at several positions) are found exactly when fewer
    slices cannot satisfy the width constraint.  Since a plan with ``m``
    slices contains at least ``m`` cuts (overhead ≥ κᵐ), the deepening stops
    as soon as another level cannot beat the best plan already found, which
    keeps the search fast on the circuit sizes a statevector simulator can
    handle anyway.

    Parameters
    ----------
    circuit:
        The circuit to split (measurement-free on the wires to be cut).
    max_fragment_width:
        Maximum number of qubits any device can hold (receiver qubits for cut
        wires count; protocol ancillas do not).
    entanglement_overlap:
        Entanglement level ``f(Φ_k)`` available between the devices; ``None``
        means no entanglement (κ = 3 per cut).  Used only to rank plans by
        total sampling overhead.
    max_cuts:
        Optional upper bound on the total number of wire cuts.
    max_fragments:
        Optional upper bound on the number of fragments (i.e. devices); also
        bounds the search depth (``max_fragments − 1`` slices).  Without it
        the search tries at most ``_DEFAULT_MAX_SLICES`` slices.

    Returns
    -------
    list[MultiCutPlan]
        All valid plans found, sorted by (overhead, cuts, fragments,
        positions).  Zero-cut plans rank first (overhead κ⁰ = 1): the
        trivial single-fragment plan when the whole circuit already fits
        the device, and free-split plans when the circuit factorises at
        every slice into fitting fragments.  Empty when the circuit cannot
        be split under the constraints.
    """
    if max_fragment_width < 1:
        raise CuttingError("max_fragment_width must be at least 1")
    num_instructions = len(circuit)
    # Feasibility pre-check: an instruction touching more qubits than the
    # device width can never be placed, whatever the slicing — bail out
    # before enumerating any candidate.
    if any(len(ins.qubits) > max_fragment_width for ins in circuit.instructions):
        return []
    max_slices = num_instructions - 1
    if max_fragments is not None:
        max_slices = min(max_slices, max_fragments - 1)
    else:
        max_slices = min(max_slices, _DEFAULT_MAX_SLICES)

    usage = _wire_usage(circuit)
    per_cut_kappa = _per_cut_kappa(entanglement_overlap)
    valid: list[MultiCutPlan] = []
    if len(_touched_qubits(circuit, 0, num_instructions)) <= max_fragment_width:
        # The whole circuit fits one device: the trivial single-fragment
        # plan needs no cut and ranks first at overhead 1.
        valid.append(
            MultiCutPlan(
                positions=(),
                locations=(),
                fragments=_fragments_between(circuit, (), usage),
                sampling_overhead=1.0,
            )
        )
    # Positions where the circuit factorises (no wire crosses) are *free*
    # slices: they split fragments without a cut.  A plan with m slices
    # therefore has at least m - free_count cuts, which both bounds the
    # useful search depth under max_cuts and powers the early termination.
    free_count = sum(
        1
        for position in range(1, num_instructions)
        if not any(first < position <= last for first, last in usage.values())
    )
    if max_cuts is not None:
        max_slices = min(max_slices, max_cuts + free_count)

    best_cuts: int | None = None
    for num_slices in range(1, max_slices + 1):
        if best_cuts is not None and num_slices - free_count > best_cuts:
            # A plan with m slices has >= m - free_count cuts, so its
            # overhead is >= kappa^(m - free_count): no deeper level can
            # beat the best plan already found.
            break
        for positions in _feasible_position_tuples(circuit, num_slices, max_fragment_width):
            plan = _build_plan(circuit, positions, usage, per_cut_kappa)
            if max_cuts is not None and plan.num_cuts > max_cuts:
                continue
            if any(fragment.width > max_fragment_width for fragment in plan.fragments):
                continue
            valid.append(plan)
            if best_cuts is None or plan.num_cuts < best_cuts:
                best_cuts = plan.num_cuts
    valid.sort(
        key=lambda plan: (
            plan.sampling_overhead,
            plan.num_cuts,
            plan.num_fragments,
            plan.positions,
        ),
    )
    return valid


def find_time_slice_cuts(
    circuit: QuantumCircuit,
    max_fragment_width: int,
    entanglement_overlap: float | None = None,
    max_cuts: int | None = None,
) -> list[CutPlan]:
    """Enumerate valid single-slice cut plans, best (lowest overhead) first.

    This is the two-fragment special case of :func:`plan_cuts`, kept as the
    paper's distribution scenario (split a circuit between exactly two
    devices at one point in time).

    Parameters
    ----------
    circuit:
        The circuit to split (measurement-free on the wires to be cut).
    max_fragment_width:
        Maximum number of qubits either device can hold (receiver qubits for
        cut wires count; protocol ancillas do not).
    entanglement_overlap:
        Entanglement level ``f(Φ_k)`` available between the devices; ``None``
        means no entanglement (κ = 3 per cut).  Used only to rank plans by
        total sampling overhead.
    max_cuts:
        Optional upper bound on the number of simultaneous cuts.

    Returns
    -------
    list[CutPlan]
        All valid plans sorted by (overhead, number of cuts).  Empty when the
        circuit cannot be split at any time slice under the width constraint.
    """
    if max_fragment_width < 1:
        raise CuttingError("max_fragment_width must be at least 1")
    per_cut_kappa = _per_cut_kappa(entanglement_overlap)

    plans: list[CutPlan] = []
    num_instructions = len(circuit)
    for position in range(1, num_instructions):
        front = _touched_qubits(circuit, 0, position)
        back = _touched_qubits(circuit, position, num_instructions)
        # Wires crossing the slice must be cut.
        crossing = front & back
        if max_cuts is not None and len(crossing) > max_cuts:
            continue
        if not crossing:
            # The circuit already factorises at this slice; no cut needed, so
            # it is not a cutting plan (callers can split trivially).
            continue
        front_width = len(front)
        # The back fragment needs one fresh receiver wire per cut plus its
        # other (uncut) wires.
        back_width = len(back)
        if front_width > max_fragment_width or back_width > max_fragment_width:
            continue
        locations = tuple(CutLocation(qubit=q, position=position) for q in sorted(crossing))
        plans.append(
            CutPlan(
                locations=locations,
                front_qubits=tuple(sorted(front)),
                back_qubits=tuple(sorted(back)),
                front_width=front_width,
                back_width=back_width,
                sampling_overhead=float(per_cut_kappa ** len(crossing)),
            )
        )
    plans.sort(key=lambda plan: (plan.sampling_overhead, plan.num_cuts, plan.locations[0].position))
    return plans
