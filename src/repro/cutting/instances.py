"""Instance-level dedup of multi-cut fragment subcircuits.

The monolithic multi-cut executor (:mod:`repro.cutting.multi_wire`) builds
one full-width circuit per element of the Cartesian product of the per-cut
QPD terms — mⁿ circuits for n cuts — and every one of them re-simulates the
same fragment bodies.  For *full-slice* plans (every wire crossing a time
slice is cut there) the quantum state factorises at each slice: the only
coupling between consecutive fragments is classical — the message bits a
cut gadget's sender half measures and its receiver half conditions on.

This module exploits that structure, following the
``run_subcircuit_instances`` / ``generate_summation_terms`` split of the
circuit-knitting-toolbox lineage:

1. every protocol term's gadget is split into a sender half and a receiver
   half (:func:`split_wire_cut_term`); protocols whose gadgets entangle
   both sides of a cut (the NME/teleportation family consumes a pre-shared
   pair) are detected and reported as unsupported, so callers fall back to
   the monolithic path;
2. the unique **fragment instances** — one compact, fragment-local circuit
   per (fragment, incoming cut terms + resolved message values, outgoing
   cut terms) combination — are enumerated once per plan
   (:class:`InstanceTable`);
3. each instance is evaluated exactly once through the existing
   :class:`~repro.circuits.backends.SimulatorBackend` seam (and therefore
   the :class:`~repro.circuits.backends.DistributionCache`), yielding a
   conditional distribution tensor per instance;
4. every QPD product term indexes into the shared table: its exact signed
   outcome probability ``p₊`` is a transfer-matrix chain over its
   fragments' tensors (:mod:`repro.qpd.contraction`), and exact values
   contract the whole κⁿ summation in one pass
   (:meth:`InstanceTable.contract_exact_value`).

The payoff is twofold: simulation cost drops from mⁿ monolithic circuits to
the (far fewer, exponentially narrower) unique instances, and reconstruction
drops from materialising the κⁿ summation to a chain contraction that is
linear in the number of fragments.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace
from itertools import product

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits.backends import DistributionCache, SimulatorBackend, resolve_backend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import _BASIS_CHANGE
from repro.circuits.instruction import Instruction
from repro.cutting.base import GadgetWiring, WireCutProtocol, WireCutTerm
from repro.cutting.cut_finding import MultiCutPlan, _wire_usage
from repro.cutting.executor import _as_pauli
from repro.qpd.adaptive import (
    AdaptiveConfig,
    AdaptiveResult,
    RoundRecord,
    run_adaptive_rounds,
)
from repro.qpd.allocation import allocate_shots
from repro.qpd.contraction import chain_probability_plus, signed_transfer
from repro.qpd.estimator import TermEstimate
from repro.quantum.paulis import PauliString
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "SplitGadget",
    "split_wire_cut_term",
    "instance_support_reason",
    "supports_instance_dedup",
    "FragmentInstance",
    "InstanceStats",
    "InstanceTable",
    "build_instance_table",
    "execute_instances",
    "execute_instances_adaptive",
]

#: Scratch wiring used to materialise a gadget for splitting.
_SCRATCH_SENDER = 0
_SCRATCH_RECEIVER = 1


@dataclass(frozen=True)
class SplitGadget:
    """A wire-cut term's gadget, partitioned across the cut.

    Attributes
    ----------
    term:
        The :class:`~repro.cutting.base.WireCutTerm` the split came from.
    sender_instructions:
        Instructions touching only the sender qubit (and gadget ancillas),
        expressed on the scratch wiring (sender = qubit 0, ancillas from
        qubit 2) with gadget-relative classical bits.
    receiver_instructions:
        Instructions touching only the receiver qubit (scratch qubit 1);
        their conditions reference gadget-relative classical bits written
        by the sender half.
    message_clbits:
        Gadget-relative classical bits the receiver half conditions on —
        the classical message crossing the cut.
    """

    term: WireCutTerm
    sender_instructions: tuple[Instruction, ...]
    receiver_instructions: tuple[Instruction, ...]
    message_clbits: tuple[int, ...]

    @property
    def num_message_bits(self) -> int:
        """Number of classical bits the cut communicates."""
        return len(self.message_clbits)


def split_wire_cut_term(term: WireCutTerm) -> SplitGadget | None:
    """Partition a term's gadget into sender and receiver halves.

    The gadget is built once on a scratch wiring and its instructions are
    classified by the qubits they touch.  A split exists exactly when the
    gadget is LOCC across the cut: no instruction spans both sides, the
    receiver side writes no classical bits, and every receiver-side
    condition reads a bit the sender side has already measured.  Gadgets
    violating any of these (e.g. the NME/teleportation family, whose
    resource-pair preparation entangles an ancilla with the receiver)
    return ``None``, signalling the caller to fall back to the monolithic
    per-term path.

    Parameters
    ----------
    term:
        The wire-cut term to split.

    Returns
    -------
    SplitGadget | None
        The split gadget, or ``None`` when the gadget cannot be factored
        across the cut.
    """
    scratch = QuantumCircuit(2 + term.num_ancilla_qubits, term.num_gadget_clbits, name="scratch")
    wiring = GadgetWiring(
        sender_qubit=_SCRATCH_SENDER,
        receiver_qubit=_SCRATCH_RECEIVER,
        ancilla_qubits=tuple(range(2, 2 + term.num_ancilla_qubits)),
        clbit_offset=0,
    )
    try:
        term.build_gadget(scratch, wiring)
    except CuttingError:
        return None
    sender_side = {_SCRATCH_SENDER} | set(wiring.ancilla_qubits)
    sender: list[Instruction] = []
    receiver: list[Instruction] = []
    written: set[int] = set()
    message: set[int] = set()
    for instruction in scratch.instructions:
        if instruction.kind == "barrier":
            continue
        touched = set(instruction.qubits)
        if touched <= sender_side:
            sender.append(instruction)
            written.update(instruction.clbits)
        elif touched == {_SCRATCH_RECEIVER}:
            if instruction.clbits:
                return None
            if instruction.condition is not None:
                clbit, _ = instruction.condition
                if clbit not in written:
                    return None
                message.add(clbit)
            receiver.append(instruction)
        else:
            return None
    return SplitGadget(
        term=term,
        sender_instructions=tuple(sender),
        receiver_instructions=tuple(receiver),
        message_clbits=tuple(sorted(message)),
    )


def instance_support_reason(
    circuit: QuantumCircuit,
    plan: MultiCutPlan,
    protocols: Sequence[WireCutProtocol],
) -> str | None:
    """Explain why instance dedup cannot serve a plan, or ``None`` if it can.

    Dedup requires the fragment chain to factorise at every slice:

    * the plan must contain at least one cut, every cut must sit on an
      interior time slice, and every wire crossing a slice must be cut
      there (the shape :func:`~repro.cutting.cut_finding.plan_from_positions`
      guarantees; hand-built plans with end-of-circuit cuts do not);
    * the original circuit must be measurement-free (no classical bits
      threading state between fragments);
    * every protocol term's gadget must split across the cut
      (:func:`split_wire_cut_term`).

    Parameters
    ----------
    circuit:
        The original (uncut) circuit.
    plan:
        The multi-cut plan.
    protocols:
        One protocol per cut location.

    Returns
    -------
    str | None
        A human-readable reason when unsupported; ``None`` when the plan
        can be evaluated through an :class:`InstanceTable`.
    """
    if plan.num_cuts == 0:
        return "plan has no cuts, so there is nothing to dedup"
    if len(protocols) != plan.num_cuts:
        return (
            f"plan has {plan.num_cuts} cuts but {len(protocols)} protocols were given"
        )
    for instruction in circuit.instructions:
        if instruction.clbits or instruction.condition is not None:
            return "base circuit uses classical bits, which may couple fragments"
    positions = set(plan.positions)
    qubits_by_position: dict[int, set[int]] = {}
    for location in plan.locations:
        if location.position not in positions:
            return (
                f"cut at position {location.position} is not an interior time slice "
                "of the plan"
            )
        qubits_by_position.setdefault(location.position, set()).add(location.qubit)
    usage = _wire_usage(circuit)
    for position in plan.positions:
        crossing = {q for q, (first, last) in usage.items() if first < position <= last}
        if qubits_by_position.get(position, set()) != crossing:
            return f"slice at position {position} does not cut every crossing wire"
    for protocol in protocols:
        for term in protocol.terms:
            if split_wire_cut_term(term) is None:
                return (
                    f"protocol {protocol.name!r} term {term.label!r} has a gadget "
                    "spanning both sides of the cut"
                )
    return None


def supports_instance_dedup(
    circuit: QuantumCircuit,
    plan: MultiCutPlan,
    protocols: Sequence[WireCutProtocol],
) -> bool:
    """Return True when the plan can be evaluated through an :class:`InstanceTable`."""
    return instance_support_reason(circuit, plan, protocols) is None


@dataclass(frozen=True)
class FragmentInstance:
    """One unique (fragment, basis-config) subcircuit instance.

    Attributes
    ----------
    fragment_index:
        Which fragment of the plan the instance belongs to.
    in_config:
        Per incoming cut (in location order): the chosen term index and the
        assumed values of that term's message bits.  Incoming receiver
        instructions are resolved against these values at build time.
    out_config:
        The chosen term index per outgoing cut (in location order).
    circuit:
        The compact fragment-local circuit: resolved receiver halves, the
        fragment body, outgoing sender halves and any observable
        measurements finalised in this fragment.
    message_clbits:
        Local classical bits carrying the outgoing message, flattened in
        cut order (most significant first in the configuration index).
    parity_clbits:
        Local classical bits whose parity contributes to the signed
        observable outcome (observable measurements plus outgoing sign
        bits).
    """

    fragment_index: int
    in_config: tuple[tuple[int, tuple[int, ...]], ...]
    out_config: tuple[int, ...]
    circuit: QuantumCircuit
    message_clbits: tuple[int, ...]
    parity_clbits: tuple[int, ...]


@dataclass(frozen=True)
class InstanceStats:
    """Dedup accounting of one instance-table evaluation.

    Attributes
    ----------
    num_terms:
        Size of the QPD product term set (mⁿ).
    num_fragments:
        Fragments in the plan.
    num_cuts:
        Wire cuts in the plan.
    num_instances:
        Unique fragment instances the table simulated (the *misses* of the
        dedup cache).
    num_references:
        Fragment evaluations a per-term path would have run; the table
        serves ``num_references − num_instances`` of them from the shared
        entries (the *hits*).
    cache_hits / cache_misses:
        The table's own accounting: hits are references served without a
        new simulation, misses are the unique instances evaluated.
    distribution_cache_hits / distribution_cache_misses:
        Hits/misses the evaluation contributed to the backend's
        :class:`~repro.circuits.backends.DistributionCache`, when the
        backend exposes one (0 otherwise).
    """

    num_terms: int
    num_fragments: int
    num_cuts: int
    num_instances: int
    num_references: int
    distribution_cache_hits: int = 0
    distribution_cache_misses: int = 0

    @property
    def cache_hits(self) -> int:
        """References served from the shared table without a new simulation."""
        return self.num_references - self.num_instances

    @property
    def cache_misses(self) -> int:
        """Unique instances that had to be simulated."""
        return self.num_instances

    @property
    def dedup_ratio(self) -> float:
        """How many per-term fragment evaluations each unique instance serves."""
        if self.num_instances == 0:
            return 1.0
        return self.num_references / self.num_instances

    def to_payload(self) -> dict:
        """Return the JSON-serializable form of the statistics."""
        return {
            "num_terms": int(self.num_terms),
            "num_fragments": int(self.num_fragments),
            "num_cuts": int(self.num_cuts),
            "num_instances": int(self.num_instances),
            "num_references": int(self.num_references),
            "distribution_cache_hits": int(self.distribution_cache_hits),
            "distribution_cache_misses": int(self.distribution_cache_misses),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "InstanceStats":
        """Rebuild the statistics from a stored payload."""
        return cls(
            num_terms=int(payload["num_terms"]),
            num_fragments=int(payload["num_fragments"]),
            num_cuts=int(payload["num_cuts"]),
            num_instances=int(payload["num_instances"]),
            num_references=int(payload["num_references"]),
            distribution_cache_hits=int(payload.get("distribution_cache_hits", 0)),
            distribution_cache_misses=int(payload.get("distribution_cache_misses", 0)),
        )


@dataclass(frozen=True)
class _FragmentLayout:
    """Static per-fragment data shared by all of the fragment's instances."""

    index: int
    start: int
    stop: int
    local_qubits: tuple[int, ...]
    in_cuts: tuple[int, ...]
    out_cuts: tuple[int, ...]
    observable_targets: tuple[tuple[int, str], ...]

    @property
    def qubit_index(self) -> dict[int, int]:
        """Mapping from original wire index to fragment-local qubit index."""
        return {qubit: local for local, qubit in enumerate(self.local_qubits)}


class InstanceTable:
    """Shared table of unique fragment instances for one multi-cut plan.

    Construction enumerates every unique (fragment, basis-config) instance
    of the plan; :meth:`evaluate` simulates each exactly once through a
    :class:`~repro.circuits.backends.SimulatorBackend` and converts the
    resulting distributions into conditional tensors.  QPD product terms
    then index into the table: :meth:`term_probability_plus` chains the
    term's tensors into its exact ``p₊``, and
    :meth:`contract_exact_value` folds coefficients and parity signs into
    a single chain contraction of the whole κⁿ summation.

    Use :func:`build_instance_table` to construct one (it validates plan
    support and raises a :class:`~repro.exceptions.CuttingError` naming
    the obstruction otherwise).

    Parameters
    ----------
    circuit:
        The original (uncut) circuit.
    plan:
        A full-slice :class:`~repro.cutting.cut_finding.MultiCutPlan`.
    protocols:
        One splittable protocol per cut location.
    observable:
        Pauli observable over the circuit's logical qubits.
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        plan: MultiCutPlan,
        protocols: Sequence[WireCutProtocol],
        observable: str | PauliString,
    ):
        reason = instance_support_reason(circuit, plan, list(protocols))
        if reason is not None:
            raise CuttingError(f"plan does not support instance dedup: {reason}")
        self.circuit = circuit
        self.plan = plan
        self.protocols = tuple(protocols)
        self.pauli = _as_pauli(observable, circuit.num_qubits)
        self._splits: tuple[tuple[SplitGadget, ...], ...] = tuple(
            tuple(split_wire_cut_term(term) for term in protocol.terms)  # type: ignore[misc]
            for protocol in self.protocols
        )
        # Monolithic coefficient products multiply in descending-position
        # order (ties keep location order); replicate it exactly so the
        # dedup path's coefficients are bitwise identical.
        self._coefficient_order = sorted(
            range(plan.num_cuts),
            key=lambda index: plan.locations[index].position,
            reverse=True,
        )
        self._layouts = self._build_layouts()
        self._instances: dict[tuple, FragmentInstance] = {}
        self._order: list[tuple] = []
        self._enumerate_instances()
        self._tensors: dict[tuple, np.ndarray] | None = None
        self._stats: InstanceStats | None = None

    # -- enumeration -------------------------------------------------------------------

    def _build_layouts(self) -> tuple[_FragmentLayout, ...]:
        """Derive the static per-fragment layouts from the plan."""
        usage = _wire_usage(self.circuit)
        fragments = self.plan.fragments
        # Final fragment of each observable-active wire: where its last
        # instruction lives (nothing later touches the wire, so measuring
        # there equals measuring at the end of the full circuit).  Wires the
        # circuit never touches stay in |0> and are measured in fragment 0.
        targets_by_fragment: dict[int, list[tuple[int, str]]] = {}
        untouched_active: list[int] = []
        for qubit, label in enumerate(self.pauli.labels):
            if label == "I":
                continue
            if qubit not in usage:
                untouched_active.append(qubit)
                targets_by_fragment.setdefault(0, []).append((qubit, label))
                continue
            last = usage[qubit][1]
            for index, fragment in enumerate(fragments):
                if fragment.start <= last < fragment.stop:
                    targets_by_fragment.setdefault(index, []).append((qubit, label))
                    break
        layouts = []
        for index, fragment in enumerate(fragments):
            local = set(fragment.qubits)
            if index == 0:
                local.update(untouched_active)
            layouts.append(
                _FragmentLayout(
                    index=index,
                    start=fragment.start,
                    stop=fragment.stop,
                    local_qubits=tuple(sorted(local)),
                    in_cuts=tuple(
                        cut
                        for cut, location in enumerate(self.plan.locations)
                        if location.position == fragment.start
                    ),
                    out_cuts=tuple(
                        cut
                        for cut, location in enumerate(self.plan.locations)
                        if location.position == fragment.stop
                    ),
                    observable_targets=tuple(
                        sorted(targets_by_fragment.get(index, []))
                    ),
                )
            )
        return tuple(layouts)

    def _in_options(self, cut: int) -> list[tuple[int, tuple[int, ...]]]:
        """All (term index, message values) pairs an incoming cut can take."""
        options = []
        for term_index, split in enumerate(self._splits[cut]):
            for bits in product((0, 1), repeat=split.num_message_bits):
                options.append((term_index, bits))
        return options

    def _enumerate_instances(self) -> None:
        """Build every unique fragment instance of the plan."""
        for layout in self._layouts:
            in_options = [self._in_options(cut) for cut in layout.in_cuts]
            out_options = [range(len(self._splits[cut])) for cut in layout.out_cuts]
            for in_config in product(*in_options):
                for out_config in product(*out_options):
                    instance = self._build_instance(layout, in_config, tuple(out_config))
                    key = (layout.index, in_config, tuple(out_config))
                    self._instances[key] = instance
                    self._order.append(key)

    def _build_instance(
        self,
        layout: _FragmentLayout,
        in_config: tuple[tuple[int, tuple[int, ...]], ...],
        out_config: tuple[int, ...],
    ) -> FragmentInstance:
        """Assemble the compact fragment-local circuit of one instance."""
        qubit_index = layout.qubit_index
        num_ancillas = sum(
            self._splits[cut][term_index].term.num_ancilla_qubits
            for cut, term_index in zip(layout.out_cuts, out_config)
        )
        num_gadget_clbits = sum(
            self._splits[cut][term_index].term.num_gadget_clbits
            for cut, term_index in zip(layout.out_cuts, out_config)
        )
        circuit = QuantumCircuit(
            len(layout.local_qubits) + num_ancillas,
            num_gadget_clbits + len(layout.observable_targets),
            name=f"{self.circuit.name}_frag{layout.index}",
        )
        # Incoming receiver halves, conditions resolved against the assumed
        # message values (kept and unconditioned on a match, dropped otherwise).
        for cut, (term_index, bits) in zip(layout.in_cuts, in_config):
            split = self._splits[cut][term_index]
            target = qubit_index[self.plan.locations[cut].qubit]
            assigned = dict(zip(split.message_clbits, bits))
            for instruction in split.receiver_instructions:
                if instruction.condition is not None:
                    clbit, value = instruction.condition
                    if assigned[clbit] != value:
                        continue
                    instruction = replace(instruction, condition=None)
                circuit.append(instruction.remap({_SCRATCH_RECEIVER: target}))
        # Fragment body, compacted onto the local register.
        for instruction in self.circuit.instructions[layout.start : layout.stop]:
            circuit.append(instruction.remap(qubit_index))
        # Outgoing sender halves.
        clbit_cursor = 0
        ancilla_cursor = len(layout.local_qubits)
        message_clbits: list[int] = []
        parity_clbits: list[int] = []
        for cut, term_index in zip(layout.out_cuts, out_config):
            split = self._splits[cut][term_index]
            term = split.term
            qubit_map = {_SCRATCH_SENDER: qubit_index[self.plan.locations[cut].qubit]}
            for offset in range(term.num_ancilla_qubits):
                qubit_map[2 + offset] = ancilla_cursor
                ancilla_cursor += 1
            clbit_map = {
                relative: clbit_cursor + relative
                for relative in range(term.num_gadget_clbits)
            }
            for instruction in split.sender_instructions:
                circuit.append(instruction.remap(qubit_map, clbit_map))
            message_clbits.extend(clbit_cursor + relative for relative in split.message_clbits)
            parity_clbits.extend(clbit_cursor + relative for relative in term.sign_clbits)
            clbit_cursor += term.num_gadget_clbits
        # Observable measurements finalised in this fragment.
        for offset, (qubit, label) in enumerate(layout.observable_targets):
            local = qubit_index[qubit]
            for gate_name, params in _BASIS_CHANGE[label]:
                circuit.gate(gate_name, local, params)
            clbit = num_gadget_clbits + offset
            circuit.measure(local, clbit)
            parity_clbits.append(clbit)
        return FragmentInstance(
            fragment_index=layout.index,
            in_config=in_config,
            out_config=out_config,
            circuit=circuit,
            message_clbits=tuple(message_clbits),
            parity_clbits=tuple(parity_clbits),
        )

    # -- sizes -------------------------------------------------------------------------

    @property
    def num_fragments(self) -> int:
        """Number of fragments in the plan."""
        return len(self._layouts)

    @property
    def num_instances(self) -> int:
        """Number of unique fragment instances the table holds."""
        return len(self._order)

    @property
    def num_terms(self) -> int:
        """Size of the QPD product term set (mⁿ)."""
        count = 1
        for splits in self._splits:
            count *= len(splits)
        return count

    @property
    def num_references(self) -> int:
        """Fragment evaluations the per-term path would run for the full term set."""
        term_counts = [len(splits) for splits in self._splits]
        total = 0
        for layout in self._layouts:
            references = 1
            for cut, count in enumerate(term_counts):
                if cut in layout.in_cuts:
                    references *= len(self._in_options(cut))
                else:
                    references *= count
            total += references
        return total

    @property
    def instances(self) -> tuple[FragmentInstance, ...]:
        """Every unique fragment instance, in enumeration order."""
        return tuple(self._instances[key] for key in self._order)

    @property
    def stats(self) -> InstanceStats:
        """Dedup statistics of the last evaluation (evaluation required)."""
        if self._stats is None:
            raise CuttingError("instance table has not been evaluated yet")
        return self._stats

    # -- evaluation --------------------------------------------------------------------

    def evaluate(self, backend: SimulatorBackend | str | None = None) -> InstanceStats:
        """Simulate every unique instance once and build its conditional tensor.

        Evaluation is idempotent: a table that already holds tensors returns
        its statistics without re-simulating.

        Parameters
        ----------
        backend:
            Execution backend (name or instance); ``None`` selects serial.

        Returns
        -------
        InstanceStats
            The dedup accounting of the evaluation.
        """
        if self._tensors is not None and self._stats is not None:
            return self._stats
        exec_backend = resolve_backend(backend)
        cache = getattr(exec_backend, "cache", None)
        if not isinstance(cache, DistributionCache):
            cache = None
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        circuits = [self._instances[key].circuit for key in self._order]
        distributions = exec_backend.exact_distributions(circuits)
        tensors: dict[tuple, np.ndarray] = {}
        for key, distribution in zip(self._order, distributions):
            tensors[key] = _conditional_tensor(self._instances[key], distribution)
        self._tensors = tensors
        self._stats = InstanceStats(
            num_terms=self.num_terms,
            num_fragments=self.num_fragments,
            num_cuts=self.plan.num_cuts,
            num_instances=self.num_instances,
            num_references=self.num_references,
            distribution_cache_hits=(cache.hits - hits_before) if cache is not None else 0,
            distribution_cache_misses=(cache.misses - misses_before) if cache is not None else 0,
        )
        return self._stats

    # -- per-term views ----------------------------------------------------------------

    def term_assignments(self) -> list[tuple[int, ...]]:
        """All per-cut term index assignments, in monolithic product order."""
        return [
            tuple(choice)
            for choice in product(*(range(len(splits)) for splits in self._splits))
        ]

    def term_coefficient(self, assignment: tuple[int, ...]) -> float:
        """Product coefficient of one term assignment (monolithic multiply order)."""
        coefficient = 1.0
        for cut in self._coefficient_order:
            coefficient *= self._splits[cut][assignment[cut]].term.coefficient
        return coefficient

    def term_label(self, assignment: tuple[int, ...]) -> str:
        """Combined term label (per-cut labels joined with ``+``, location order)."""
        return "+".join(
            self._splits[cut][term_index].term.label
            for cut, term_index in enumerate(assignment)
        )

    def term_entangled_pairs(self, assignment: tuple[int, ...]) -> int:
        """Pre-shared entangled pairs one shot of the assignment consumes."""
        return sum(
            1
            for cut, term_index in enumerate(assignment)
            if self._splits[cut][term_index].term.consumes_entangled_pair
        )

    def _term_in_configs(
        self, layout: _FragmentLayout, assignment: tuple[int, ...]
    ) -> list[tuple[tuple[int, tuple[int, ...]], ...]]:
        """Incoming configurations of one fragment under a fixed assignment.

        The enumeration order matches the outgoing-configuration index of
        the previous fragment's tensor (big-endian over the flattened
        message bits), which is what keeps the chain contraction aligned.
        """
        options = []
        for cut in layout.in_cuts:
            term_index = assignment[cut]
            split = self._splits[cut][term_index]
            options.append(
                [(term_index, bits) for bits in product((0, 1), repeat=split.num_message_bits)]
            )
        return [tuple(combo) for combo in product(*options)]

    def term_chain_tensors(self, assignment: tuple[int, ...]) -> list[np.ndarray]:
        """Stack one term's per-fragment tensors for the chain contraction.

        Parameters
        ----------
        assignment:
            The per-cut term index choice.

        Returns
        -------
        list[numpy.ndarray]
            One ``(num_in_configs, num_out_configs, 2)`` tensor per
            fragment, ready for
            :func:`~repro.qpd.contraction.chain_probability_plus`.
        """
        if self._tensors is None:
            raise CuttingError("instance table has not been evaluated yet")
        chain = []
        for layout in self._layouts:
            out_config = tuple(assignment[cut] for cut in layout.out_cuts)
            stacked = np.stack(
                [
                    self._tensors[(layout.index, in_config, out_config)]
                    for in_config in self._term_in_configs(layout, assignment)
                ]
            )
            chain.append(stacked)
        return chain

    def term_probability_plus(self, assignment: tuple[int, ...]) -> float:
        """Exact ``p₊`` of one product term via the memoized fragment chain."""
        return chain_probability_plus(self.term_chain_tensors(assignment))

    def materialized_term_probability_plus(
        self,
        assignment: tuple[int, ...],
        backend: SimulatorBackend | str | None = None,
    ) -> float:
        """Per-term reference: rebuild and re-simulate the chain without the table.

        This is the un-memoized evaluation the table replaces: every
        fragment instance the term touches is constructed and simulated
        afresh.  The simulators are deterministic, so the result is
        bitwise identical to :meth:`term_probability_plus` — the tests and
        the ``bench_reconstruct`` benchmark assert exactly that.

        Parameters
        ----------
        assignment:
            The per-cut term index choice.
        backend:
            Execution backend (name or instance); ``None`` selects serial.

        Returns
        -------
        float
            The term's exact ``p₊``.
        """
        exec_backend = resolve_backend(backend)
        fresh: list[FragmentInstance] = []
        boundaries: list[int] = [0]
        for layout in self._layouts:
            out_config = tuple(assignment[cut] for cut in layout.out_cuts)
            for in_config in self._term_in_configs(layout, assignment):
                fresh.append(self._build_instance(layout, in_config, out_config))
            boundaries.append(len(fresh))
        distributions = exec_backend.exact_distributions(
            [instance.circuit for instance in fresh]
        )
        chain = []
        for index in range(len(self._layouts)):
            start, stop = boundaries[index], boundaries[index + 1]
            stacked = np.stack(
                [
                    _conditional_tensor(instance, distribution)
                    for instance, distribution in zip(
                        fresh[start:stop], distributions[start:stop]
                    )
                ]
            )
            chain.append(stacked)
        return chain_probability_plus(chain)

    # -- reconstruction ----------------------------------------------------------------

    def contract_exact_value(self) -> float:
        """Contract the full κⁿ summation into one pass over the fragment chain.

        Instead of materialising every product term, the chain state tracks
        a signed weight per (term choice, message value) configuration of
        the current slice; each fragment folds in its parity-signed
        transfer vectors (:func:`~repro.qpd.contraction.signed_transfer`)
        and each outgoing cut folds in its term coefficients at the sender
        side.  The cost is linear in the number of fragments — per-slice
        configuration counts replace the mⁿ term product — yet the result
        equals ``Σ_t c_t (2 p₊(t) − 1)`` exactly.

        Returns
        -------
        float
            The exactly reconstructed expectation value.
        """
        if self._tensors is None:
            raise CuttingError("instance table has not been evaluated yet")
        state: dict[tuple, float] = {(): 1.0}
        for layout in self._layouts:
            out_options = [range(len(self._splits[cut])) for cut in layout.out_cuts]
            new_state: dict[tuple, float] = {}
            for in_config in sorted(state):
                weight = state[in_config]
                for out_choice in product(*out_options):
                    out_config = tuple(out_choice)
                    coefficient = 1.0
                    for cut, term_index in zip(layout.out_cuts, out_config):
                        coefficient *= self._splits[cut][term_index].term.coefficient
                    signed = signed_transfer(
                        self._tensors[(layout.index, in_config, out_config)][np.newaxis]
                    )[0]
                    message_options = [
                        list(
                            product(
                                (0, 1),
                                repeat=self._splits[cut][term_index].num_message_bits,
                            )
                        )
                        for cut, term_index in zip(layout.out_cuts, out_config)
                    ]
                    for index, bits_choice in enumerate(product(*message_options)):
                        key = tuple(
                            (term_index, bits)
                            for term_index, bits in zip(out_config, bits_choice)
                        )
                        contribution = weight * coefficient * signed[index]
                        new_state[key] = new_state.get(key, 0.0) + contribution
            state = new_state
        return float(state[()])

    def summed_exact_value(self) -> float:
        """Reference κⁿ summation ``Σ_t c_t (2 p₊(t) − 1)`` over the memoized chains."""
        value = 0.0
        for assignment in self.term_assignments():
            mean = 2.0 * self.term_probability_plus(assignment) - 1.0
            value += self.term_coefficient(assignment) * mean
        return float(value)


def _conditional_tensor(
    instance: FragmentInstance, distribution: dict[str, float]
) -> np.ndarray:
    """Fold one instance's outcome distribution into its conditional tensor.

    Bitstrings are accumulated in sorted order, so the tensor is independent
    of the backend's distribution-dict insertion order — a precondition for
    the cross-backend bitwise identity of the dedup path.
    """
    num_configs = 2 ** len(instance.message_clbits)
    tensor = np.zeros((num_configs, 2))
    for bitstring in sorted(distribution):
        probability = distribution[bitstring]
        config = 0
        for clbit in instance.message_clbits:
            config = (config << 1) | int(bitstring[clbit])
        parity = sum(int(bitstring[clbit]) for clbit in instance.parity_clbits) % 2
        tensor[config, parity] += probability
    return tensor


def build_instance_table(
    circuit: QuantumCircuit,
    plan: MultiCutPlan,
    protocols: Sequence[WireCutProtocol],
    observable: str | PauliString,
) -> InstanceTable:
    """Enumerate the unique fragment instances of a full-slice plan.

    Parameters
    ----------
    circuit:
        The original (uncut) circuit.
    plan:
        The multi-cut plan; must be full-slice
        (see :func:`instance_support_reason`).
    protocols:
        One splittable protocol per cut location.
    observable:
        Pauli observable over the circuit's logical qubits.

    Returns
    -------
    InstanceTable
        The (not yet evaluated) instance table.

    Raises
    ------
    CuttingError
        When the plan or protocols cannot be served by instance dedup; the
        message names the obstruction so callers can fall back to the
        monolithic path.
    """
    return InstanceTable(circuit, plan, protocols, observable)


def execute_instances(
    table: InstanceTable,
    shots: int,
    allocation: str = "proportional",
    seed: SeedLike = None,
    backend: SimulatorBackend | str | None = None,
) -> tuple[list[TermEstimate], list[int], InstanceStats]:
    """Static execution of a product term set through the shared instance table.

    The dedup counterpart of
    :func:`repro.cutting.multi_wire.execute_term_circuits`: unique instances
    are evaluated once through ``backend``, each term's exact ``p₊`` is
    chained from the shared tensors, and the term's empirical mean is drawn
    as a binomial over ``p₊`` — statistically identical to simulating the
    monolithic term circuit (every shot is an i.i.d. draw from the same
    exact distribution) and bitwise identical across backends.

    Parameters
    ----------
    table:
        The instance table of the plan.
    shots:
        Total shot budget across all product terms.
    allocation:
        Shot-allocation strategy over the product term set.
    seed:
        Seed or generator for allocation and sampling.
    backend:
        Execution backend (name or instance); ``None`` selects serial.

    Returns
    -------
    tuple[list[TermEstimate], list[int], InstanceStats]
        Per-term empirical summaries, the shots assigned to each term, and
        the dedup accounting.
    """
    stats = table.evaluate(backend)
    rng = as_generator(seed)
    assignments = table.term_assignments()
    coefficients = np.array([table.term_coefficient(a) for a in assignments])
    magnitudes = np.abs(coefficients)
    probabilities = magnitudes / magnitudes.sum()
    shots_per_term = allocate_shots(probabilities, shots, strategy=allocation, seed=rng)
    term_estimates = []
    for assignment, coefficient, term_shots in zip(assignments, coefficients, shots_per_term):
        count = int(term_shots)
        if count <= 0:
            mean = 0.0
        else:
            probability_plus = table.term_probability_plus(assignment)
            successes = rng.binomial(count, probability_plus)
            mean = 2.0 * successes / count - 1.0
        term_estimates.append(
            TermEstimate(
                coefficient=float(coefficient),
                mean=mean,
                shots=count,
                label=table.term_label(assignment),
            )
        )
    return term_estimates, [int(count) for count in shots_per_term], stats


def execute_instances_adaptive(
    table: InstanceTable,
    config: AdaptiveConfig,
    seed: SeedLike = None,
    backend: SimulatorBackend | str | None = None,
    completed_rounds: Sequence[RoundRecord] = (),
    on_round=None,
) -> tuple[list[TermEstimate], list[int], AdaptiveResult, InstanceStats]:
    """Round-structured execution of a product term set through the instance table.

    The dedup counterpart of
    :func:`repro.cutting.multi_wire.execute_term_circuits_adaptive`: the
    unique instances are evaluated once up front, and every round's
    outcomes are binomial draws from the chained exact ``p₊`` values —
    the same statistical model
    :meth:`repro.cutting.executor.CutSamplingModel.estimate_adaptive`
    uses for the single-cut sweep path.

    Parameters
    ----------
    table:
        The instance table of the plan.
    config:
        The adaptive-engine configuration (target error, budget, rounds,
        planner).
    seed:
        Master seed; round ``r`` draws from the ``r``-th spawned child
        sequence.
    backend:
        Execution backend (name or instance); ``None`` selects serial.
    completed_rounds:
        Rounds persisted by an interrupted run, replayed without
        re-execution.
    on_round:
        Optional progress hook forwarded to the engine.

    Returns
    -------
    tuple[list[TermEstimate], list[int], AdaptiveResult, InstanceStats]
        Per-term summaries, total shots per term, the engine result and
        the dedup accounting.
    """
    stats = table.evaluate(backend)
    assignments = table.term_assignments()
    coefficients = [table.term_coefficient(a) for a in assignments]
    p_plus = np.array([table.term_probability_plus(a) for a in assignments])

    def execute_round(index, round_shots, seed_sequence):
        """Draw one round's outcomes as binomials from the chained distributions."""
        rng = np.random.default_rng(seed_sequence)
        return [
            2.0 * rng.binomial(int(count), probability) / count - 1.0 if count > 0 else 0.0
            for probability, count in zip(p_plus, round_shots)
        ]

    adaptive = run_adaptive_rounds(
        coefficients,
        execute_round,
        config,
        seed=seed,
        labels=[table.term_label(a) for a in assignments],
        completed_rounds=completed_rounds,
        on_round=on_round,
    )
    term_estimates = list(adaptive.estimate.term_estimates)
    shots_per_term = [int(estimate.shots) for estimate in term_estimates]
    return term_estimates, shots_per_term, adaptive, stats
