"""Executing a single cut: sampling the QPD terms and recombining expectation values.

This is the single-cut runtime that turns a
:class:`~repro.cutting.base.WireCutProtocol` plus a circuit into an
expectation-value estimate, following the procedure of Section IV of the
paper.  It is the one-cut special case of the general machinery: multi-cut
estimation (tensor-product term sets, several fragments) lives in
:mod:`repro.cutting.multi_wire` and is orchestrated by
:class:`repro.pipeline.CutPipeline`; the fast sweep path below
(:class:`CutSamplingModel`) remains the engine of the Figure-6 harness.

The procedure per estimate:

1. build one circuit per QPD term (:mod:`repro.cutting.cutter`),
2. split the total shot budget across the terms proportionally to the
   coefficient magnitudes (other allocation strategies are available for the
   ablation benchmarks),
3. run each term circuit on the shot simulator, measuring the observable on
   the receiver side (plus any term-internal sign bits),
4. recombine the per-term means with the signed coefficients (Eq. 12).

Two execution paths are provided:

* :func:`estimate_cut_expectation` — the general path; every call samples the
  term circuits afresh through a
  :class:`~repro.circuits.backends.SimulatorBackend` (``backend=`` selects
  serial, vectorized or process-pool execution).
* :class:`CutSamplingModel` (via :func:`build_sampling_model`, or
  :func:`build_sampling_models` for whole workloads at once) — a fast path
  for parameter sweeps: the exact per-term outcome distributions are computed
  once and each subsequent estimate only needs binomial draws.  This is what
  the Figure-6 harness uses to evaluate 1000 input states × 6 entanglement
  levels × many shot budgets in seconds; it is statistically identical to the
  general path because each shot is an i.i.d. draw from the same exact
  distribution.

Multi-cut plans get the same exact-distribution fast path through the
instance-dedup layer (:mod:`repro.cutting.instances`): the unique
(fragment, basis-config) subcircuit instances are simulated once, each
product term's ``p₊`` is chained from the shared fragment tensors, and
:func:`sampling_models_from_instances` bridges an evaluated table into the
:class:`TermSamplingModel` machinery below.

Both paths offer two execution modes: ``static`` (the whole budget
allocated up front — the paper's procedure, unchanged bitwise) and
``adaptive`` (the round-structured engine of :mod:`repro.qpd.adaptive`,
stopping at a target standard error).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits.backends import SimulatorBackend, resolve_backend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import _BASIS_CHANGE, exact_expectation
from repro.cutting.base import WireCutProtocol
from repro.cutting.cutter import CutLocation, CutTermCircuit, build_cut_circuits
from repro.qpd.adaptive import (
    DEFAULT_MAX_ROUNDS,
    AdaptiveConfig,
    AdaptiveResult,
    RoundRecord,
    run_adaptive_rounds,
)
from repro.qpd.allocation import allocate_shots
from repro.qpd.estimator import QPDEstimate, TermEstimate, combine_term_estimates, combine_term_means
from repro.quantum.paulis import PauliString
from repro.quantum.states import Statevector
from repro.utils.rng import SeedLike, as_generator

#: Execution modes accepted by the estimation entry points.
ESTIMATION_MODES = ("static", "adaptive")

__all__ = [
    "BackendRoundExecutor",
    "CutExpectationResult",
    "ESTIMATION_MODES",
    "estimate_cut_expectation",
    "build_sampling_model",
    "build_sampling_models",
    "CutSamplingModel",
    "TermSamplingModel",
    "cut_expectation_value",
    "exact_cut_expectation",
    "sampling_models_from_instances",
]


@dataclass(frozen=True)
class CutExpectationResult:
    """Result of estimating an observable through a wire cut.

    Attributes
    ----------
    value:
        The recombined expectation-value estimate.
    standard_error:
        Propagated standard error.
    total_shots:
        Shots actually spent (across all term circuits).
    kappa:
        Sampling-overhead factor of the protocol used.
    shots_per_term:
        Shots assigned to each term.
    term_estimates:
        Per-term empirical summaries.
    protocol_name:
        Name of the wire-cut protocol.
    exact_value:
        The exact (uncut) expectation value, when it was computed alongside
        the estimate; ``None`` otherwise.
    mode:
        ``"static"`` (one up-front allocation) or ``"adaptive"`` (the
        round-structured engine of :mod:`repro.qpd.adaptive`).
    converged:
        Adaptive mode only: whether the pooled standard error reached the
        target before the budget ran out (``None`` in static mode).
    rounds:
        Adaptive mode only: the executed round records.
    """

    value: float
    standard_error: float
    total_shots: int
    kappa: float
    shots_per_term: tuple[int, ...]
    term_estimates: tuple[TermEstimate, ...]
    protocol_name: str
    exact_value: float | None = None
    mode: str = "static"
    converged: bool | None = None
    rounds: tuple[RoundRecord, ...] = ()

    @property
    def error(self) -> float | None:
        """Absolute deviation from the exact value (Eq. 28), when available."""
        if self.exact_value is None:
            return None
        return abs(self.value - self.exact_value)

    @classmethod
    def from_adaptive(
        cls,
        adaptive: AdaptiveResult,
        protocol_name: str,
        exact_value: float | None,
    ) -> "CutExpectationResult":
        """Freeze an engine result into the shared result type.

        The single mapping used by every adaptive entry point (general
        executor, sampling-model fast path, multi-cut estimator).
        """
        estimate = adaptive.estimate
        return cls(
            value=estimate.value,
            standard_error=estimate.standard_error,
            total_shots=estimate.total_shots,
            kappa=estimate.kappa,
            shots_per_term=tuple(t.shots for t in estimate.term_estimates),
            term_estimates=estimate.term_estimates,
            protocol_name=protocol_name,
            exact_value=exact_value,
            mode="adaptive",
            converged=adaptive.converged,
            rounds=adaptive.rounds,
        )


# ---------------------------------------------------------------------------
# Observables
# ---------------------------------------------------------------------------


def _as_pauli(observable: str | PauliString, num_qubits: int) -> PauliString:
    """Normalise the observable argument to a PauliString over the logical qubits."""
    if isinstance(observable, PauliString):
        pauli = observable
    else:
        pauli = PauliString(observable)
    if pauli.num_qubits == 1 and num_qubits > 1:
        # A single-letter observable refers to qubit 0, identity elsewhere.
        pauli = PauliString(pauli.labels + "I" * (num_qubits - 1), pauli.phase)
    if pauli.num_qubits != num_qubits:
        raise CuttingError(
            f"observable acts on {pauli.num_qubits} qubits, circuit has {num_qubits}"
        )
    if pauli.phase != 1:
        raise CuttingError("observables with non-unit phase are not supported")
    return pauli


def _measured_term_circuit(
    term_circuit: CutTermCircuit, pauli: PauliString
) -> tuple[QuantumCircuit, tuple[int, ...]]:
    """Append observable basis changes and measurements to a term circuit.

    Returns the measured circuit and the classical bits holding the
    observable outcomes.
    """
    base = term_circuit.circuit
    active = [
        (term_circuit.qubit_map[logical], label)
        for logical, label in enumerate(pauli.labels)
        if label != "I"
    ]
    measured = QuantumCircuit(
        base.num_qubits, base.num_clbits + len(active), name=f"{base.name}_meas"
    )
    measured.compose(base, inplace=True)
    observable_clbits = []
    for offset, (physical_qubit, label) in enumerate(active):
        for gate_name, params in _BASIS_CHANGE[label]:
            measured.gate(gate_name, physical_qubit, params)
        clbit = base.num_clbits + offset
        measured.measure(physical_qubit, clbit)
        observable_clbits.append(clbit)
    return measured, tuple(observable_clbits)


# ---------------------------------------------------------------------------
# General (backend) path
# ---------------------------------------------------------------------------


def estimate_cut_expectation(
    circuit: QuantumCircuit,
    location: CutLocation,
    protocol: WireCutProtocol,
    observable: str | PauliString = "Z",
    shots: int = 1000,
    allocation: str = "proportional",
    seed: SeedLike = None,
    method: str = "exact",
    compute_exact: bool = True,
    backend: SimulatorBackend | str | None = None,
    mode: str = "static",
    target_error: float | None = None,
    rounds: int = DEFAULT_MAX_ROUNDS,
    planner: str | None = None,
    execution: str = "inprocess",
    workers: int | None = None,
) -> CutExpectationResult:
    """Estimate ``⟨O⟩`` of ``circuit`` with the wire at ``location`` cut by ``protocol``.

    Parameters
    ----------
    circuit:
        The original (uncut) circuit; it is not modified.
    location:
        Where to cut (qubit and instruction position).
    protocol:
        The wire-cut protocol providing the QPD.
    observable:
        Pauli observable over the circuit's logical qubits (a single letter
        refers to qubit 0).
    shots:
        Total shot budget across all term circuits.  In adaptive mode this
        is the hard ``max_shots`` ceiling; fewer shots are spent when the
        target error is reached early.
    allocation:
        Shot-allocation strategy (``proportional``, ``multinomial``, ``uniform``).
    seed:
        Seed or generator for all sampling.  Static mode consumes it
        exactly as before this parameterisation (bitwise-identical
        results); adaptive mode derives one child stream per round.
    method:
        Shot-simulator method (``exact`` or ``trajectory``; serial backend only).
    compute_exact:
        Also compute the exact uncut value for error reporting.
    backend:
        Execution backend (name or instance); ``None`` selects the serial
        backend.  All backends yield identical results for the same seed.
    mode:
        ``"static"`` (one up-front allocation, the default) or
        ``"adaptive"`` (round-structured execution with early stopping).
    target_error:
        Adaptive mode's stopping threshold on the pooled standard error
        (required when ``mode="adaptive"``).
    rounds:
        Adaptive mode's round limit.
    planner:
        Adaptive mode's per-round :class:`~repro.qpd.allocation.ShotPlanner`
        name (``"neyman"`` by default).
    execution:
        Adaptive mode's round execution: ``"inprocess"`` (default) or
        ``"distributed"`` (rounds fan out over the multi-process
        work-stealing pool of :mod:`repro.distributed`; bitwise identical
        to in-process for the same seed).
    workers:
        Distributed execution's worker-process count.
    """
    if mode not in ESTIMATION_MODES:
        raise CuttingError(f"unknown mode {mode!r}; expected one of {ESTIMATION_MODES}")
    if execution != "inprocess" and mode != "adaptive":
        raise CuttingError("distributed execution requires mode='adaptive'")
    pauli = _as_pauli(observable, circuit.num_qubits)
    decomposition = protocol.decomposition()
    term_circuits = build_cut_circuits(circuit, location, protocol)
    exec_backend = resolve_backend(backend, method=method)
    measured_circuits: list[QuantumCircuit] = []
    selected_clbits: list[list[int]] = []
    for term_circuit in term_circuits:
        measured, observable_clbits = _measured_term_circuit(term_circuit, pauli)
        measured_circuits.append(measured)
        selected_clbits.append(list(observable_clbits) + list(term_circuit.sign_clbits))
    exact_value = (
        exact_expectation(circuit, pauli.to_matrix()) if compute_exact else None
    )

    if mode == "adaptive":
        if target_error is None:
            raise CuttingError("adaptive mode requires target_error")
        config = AdaptiveConfig(
            target_error=target_error, max_shots=int(shots), max_rounds=rounds, planner=planner
        )
        adaptive = run_adaptive_rounds(
            [term.coefficient for term in term_circuits],
            _backend_round_executor(exec_backend, measured_circuits, selected_clbits),
            config,
            seed=seed,
            labels=[term.term.label for term in term_circuits],
            execution=execution,
            workers=workers,
        )
        return CutExpectationResult.from_adaptive(adaptive, protocol.name, exact_value)

    rng = as_generator(seed)
    shots_per_term = allocate_shots(decomposition.probabilities, shots, strategy=allocation, seed=rng)
    counts_per_term = exec_backend.run_batch(
        measured_circuits, [int(s) for s in shots_per_term], seed=rng
    )
    term_estimates: list[TermEstimate] = []
    for term_circuit, term_shots, counts, selected in zip(
        term_circuits, shots_per_term, counts_per_term, selected_clbits
    ):
        if term_shots == 0:
            mean = 0.0
        elif selected:
            mean = counts.expectation_z(selected)
        else:
            mean = 1.0
        term_estimates.append(
            TermEstimate(
                coefficient=term_circuit.coefficient,
                mean=mean,
                shots=int(term_shots),
                label=term_circuit.term.label,
            )
        )

    estimate: QPDEstimate = combine_term_estimates(term_estimates)
    return CutExpectationResult(
        value=estimate.value,
        standard_error=estimate.standard_error,
        total_shots=estimate.total_shots,
        kappa=estimate.kappa,
        shots_per_term=tuple(int(s) for s in shots_per_term),
        term_estimates=estimate.term_estimates,
        protocol_name=protocol.name,
        exact_value=exact_value,
    )


class BackendRoundExecutor:
    """The adaptive engine's round hook over a simulator backend.

    Each round submits the full measured-circuit batch with the round's
    per-term shot counts (zero-shot terms keep the per-circuit seed streams
    aligned) and reduces the counts to per-term signed means.  Terms with
    no measured bits are deterministic +1 and never pay simulator shots.

    The executor also implements the engine's distribution hook:
    :meth:`distribute` lifts it into a
    :class:`~repro.distributed.DistributedRoundExecutor` over the same
    batch and backend, which produces bitwise-identical rounds through the
    multi-process work-stealing pool.
    """

    def __init__(
        self,
        exec_backend: SimulatorBackend,
        measured_circuits: list[QuantumCircuit],
        selected_clbits: list[list[int]],
    ) -> None:
        self.backend = exec_backend
        self.measured_circuits = list(measured_circuits)
        self.selected_clbits = [list(bits) for bits in selected_clbits]

    def __call__(self, index, round_shots, seed_sequence):
        """Run one round's batch and reduce counts to per-term signed means."""
        submitted = [
            int(count) if selected else 0
            for count, selected in zip(round_shots, self.selected_clbits)
        ]
        counts_per_term = self.backend.run_batch(
            self.measured_circuits, submitted, seed=seed_sequence
        )
        means = []
        for counts, selected, count in zip(counts_per_term, self.selected_clbits, round_shots):
            if count == 0:
                means.append(0.0)
            elif selected:
                means.append(counts.expectation_z(selected))
            else:
                means.append(1.0)
        return means

    def distribute(self, workers: int | None = None, **options):
        """Return the distributed round executor over the same batch and backend.

        Parameters
        ----------
        workers:
            Worker-process count (the distributed default when ``None``).
        options:
            Forwarded to
            :class:`~repro.distributed.DistributedRoundExecutor` (steal
            policy, pool mode, simulated latencies, ...).
        """
        from repro.distributed import DistributedRoundExecutor

        return DistributedRoundExecutor(
            self.measured_circuits,
            self.selected_clbits,
            backend=self.backend,
            workers=workers,
            **options,
        )


def _backend_round_executor(
    exec_backend: SimulatorBackend,
    measured_circuits: list[QuantumCircuit],
    selected_clbits: list[list[int]],
) -> BackendRoundExecutor:
    """Return the adaptive engine's round hook over a simulator backend."""
    return BackendRoundExecutor(exec_backend, measured_circuits, selected_clbits)


# ---------------------------------------------------------------------------
# Fast sweep path: precomputed exact per-term distributions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TermSamplingModel:
    """Exact sampling model of one term circuit.

    Attributes
    ----------
    coefficient:
        QPD coefficient of the term.
    probability_plus:
        Exact probability that one shot of the term circuit yields a signed
        outcome of +1 (observable parity × sign-bit parity).
    label:
        Term label.
    consumes_entangled_pair:
        Resource accounting flag.
    """

    coefficient: float
    probability_plus: float
    label: str
    consumes_entangled_pair: bool = False

    @property
    def exact_mean(self) -> float:
        """The term's exact expectation ``2 p₊ − 1``."""
        return 2.0 * self.probability_plus - 1.0

    def sample_mean(self, shots: int, rng: np.random.Generator) -> float:
        """Return the empirical mean of ``shots`` i.i.d. ±1 outcomes."""
        if shots <= 0:
            return 0.0
        successes = rng.binomial(shots, self.probability_plus)
        return 2.0 * successes / shots - 1.0


@dataclass(frozen=True)
class CutSamplingModel:
    """Exact per-term outcome distributions for fast repeated estimation.

    Built once per (circuit, protocol, observable) combination; estimates for
    any shot budget are then produced with binomial draws only.
    """

    terms: tuple[TermSamplingModel, ...]
    exact_value: float
    protocol_name: str

    @property
    def kappa(self) -> float:
        """Sampling-overhead factor of the underlying protocol."""
        return float(sum(abs(t.coefficient) for t in self.terms))

    @property
    def probabilities(self) -> np.ndarray:
        """Coefficient-proportional sampling distribution over terms."""
        magnitudes = np.array([abs(t.coefficient) for t in self.terms])
        return magnitudes / magnitudes.sum()

    def exact_cut_value(self) -> float:
        """The exact value reconstructed through the decomposition (should equal ``exact_value``)."""
        return float(sum(t.coefficient * t.exact_mean for t in self.terms))

    def estimate(
        self,
        shots: int,
        allocation: str = "proportional",
        seed: SeedLike = None,
    ) -> CutExpectationResult:
        """Produce one finite-shot estimate with the given total budget."""
        rng = as_generator(seed)
        shots_per_term = allocate_shots(self.probabilities, shots, strategy=allocation, seed=rng)
        term_estimates = []
        for model, term_shots in zip(self.terms, shots_per_term):
            mean = model.sample_mean(int(term_shots), rng)
            term_estimates.append(
                TermEstimate(
                    coefficient=model.coefficient,
                    mean=mean,
                    shots=int(term_shots),
                    label=model.label,
                )
            )
        estimate = combine_term_estimates(term_estimates)
        return CutExpectationResult(
            value=estimate.value,
            standard_error=estimate.standard_error,
            total_shots=estimate.total_shots,
            kappa=estimate.kappa,
            shots_per_term=tuple(int(s) for s in shots_per_term),
            term_estimates=estimate.term_estimates,
            protocol_name=self.protocol_name,
            exact_value=self.exact_value,
        )

    def estimate_adaptive(
        self,
        config: AdaptiveConfig,
        seed: SeedLike = None,
    ) -> CutExpectationResult:
        """Produce one adaptive estimate through the streaming round engine.

        The engine plans each round with the configured
        :class:`~repro.qpd.allocation.ShotPlanner`, draws the round's
        outcomes as binomial samples from the exact per-term distributions
        (statistically identical to re-running the simulator), merges the
        running statistics and stops as soon as the pooled standard error
        reaches ``config.target_error`` — or ``config.max_shots`` /
        ``config.max_rounds`` is exhausted.

        Parameters
        ----------
        config:
            The adaptive-engine configuration.
        seed:
            Master seed; round ``r`` draws from the ``r``-th spawned child
            stream.

        Returns
        -------
        CutExpectationResult
            The recombined estimate with ``mode="adaptive"``, the round
            records and the convergence flag attached.
        """
        p_plus = np.array([t.probability_plus for t in self.terms])

        def execute_round(index, round_shots, seed_sequence):
            """Draw one round's outcomes as binomials from the exact distributions."""
            rng = np.random.default_rng(seed_sequence)
            return [
                2.0 * rng.binomial(int(count), probability) / count - 1.0 if count > 0 else 0.0
                for probability, count in zip(p_plus, round_shots)
            ]

        adaptive: AdaptiveResult = run_adaptive_rounds(
            [t.coefficient for t in self.terms],
            execute_round,
            config,
            seed=seed,
            labels=[t.label for t in self.terms],
        )
        return CutExpectationResult.from_adaptive(adaptive, self.protocol_name, self.exact_value)

    def estimate_sweep(
        self,
        shot_grid: Sequence[int],
        allocation: str = "proportional",
        seed: SeedLike = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Estimate once per budget in ``shot_grid`` with vectorised draws.

        Every (budget, term) cell draws its binomial successes in one batched
        NumPy call and the recombination runs through
        :func:`~repro.qpd.estimator.combine_term_means`, so sweeping a shot
        grid costs a handful of array operations instead of
        ``len(shot_grid) × num_terms`` Python-level samples.

        Returns
        -------
        tuple[numpy.ndarray, numpy.ndarray]
            ``(values, standard_errors)`` arrays of length ``len(shot_grid)``.
        """
        rng = as_generator(seed)
        coefficients = np.array([t.coefficient for t in self.terms])
        p_plus = np.array([t.probability_plus for t in self.terms])
        shots_matrix = np.stack(
            [allocate_shots(self.probabilities, int(s), strategy=allocation, seed=rng) for s in shot_grid]
        )
        successes = rng.binomial(shots_matrix, p_plus)
        with np.errstate(divide="ignore", invalid="ignore"):
            means = np.where(
                shots_matrix > 0, 2.0 * successes / np.maximum(shots_matrix, 1) - 1.0, 0.0
            )
        return combine_term_means(coefficients, means, shots_matrix)

    def expected_pairs(self, shots: int, allocation: str = "proportional") -> float:
        """Expected number of entangled pairs consumed by a ``shots``-shot estimate."""
        shots_per_term = allocate_shots(self.probabilities, shots, strategy=allocation)
        return float(
            sum(
                int(n)
                for model, n in zip(self.terms, shots_per_term)
                if model.consumes_entangled_pair
            )
        )


def _probability_plus(distribution: dict[str, float], selected: list[int]) -> float:
    """Exact probability of a +1 signed outcome (even parity of the selected bits)."""
    probability_plus = 0.0
    for bitstring, probability in distribution.items():
        parity = sum(int(bitstring[c]) for c in selected) % 2
        if parity == 0:
            probability_plus += probability
    return float(min(max(probability_plus, 0.0), 1.0))


def build_sampling_models(
    circuits: Sequence[QuantumCircuit],
    locations: CutLocation | Sequence[CutLocation],
    protocol: WireCutProtocol,
    observable: str | PauliString = "Z",
    backend: SimulatorBackend | str | None = None,
) -> list[CutSamplingModel]:
    """Build one :class:`CutSamplingModel` per input circuit in a single batch.

    All term circuits of all inputs are submitted to the execution backend as
    one batch, so with the vectorized backend an entire workload (e.g. the
    1000 input states of Figure 6) is simulated as a handful of stacked NumPy
    computations rather than thousands of individual runs.

    Parameters
    ----------
    circuits:
        The (uncut) circuits to model.
    locations:
        One cut location shared by all circuits, or one per circuit.
    protocol:
        The wire-cut protocol providing the QPD.
    observable:
        Pauli observable (as in :func:`estimate_cut_expectation`).
    backend:
        Execution backend (name or instance); ``None`` selects the serial
        backend.
    """
    if isinstance(locations, CutLocation):
        locations = [locations] * len(circuits)
    if len(locations) != len(circuits):
        raise CuttingError(
            f"got {len(circuits)} circuits but {len(locations)} cut locations"
        )
    exec_backend = resolve_backend(backend)

    measured_circuits: list[QuantumCircuit] = []
    term_metadata: list[list[tuple[CutTermCircuit, list[int]]]] = []
    paulis = []
    for circuit, location in zip(circuits, locations):
        pauli = _as_pauli(observable, circuit.num_qubits)
        paulis.append(pauli)
        per_circuit = []
        for term_circuit in build_cut_circuits(circuit, location, protocol):
            measured, observable_clbits = _measured_term_circuit(term_circuit, pauli)
            measured_circuits.append(measured)
            per_circuit.append(
                (term_circuit, list(observable_clbits) + list(term_circuit.sign_clbits))
            )
        term_metadata.append(per_circuit)

    distributions = exec_backend.exact_distributions(measured_circuits)

    models: list[CutSamplingModel] = []
    cursor = 0
    for circuit, pauli, per_circuit in zip(circuits, paulis, term_metadata):
        terms = []
        for term_circuit, selected in per_circuit:
            terms.append(
                TermSamplingModel(
                    coefficient=term_circuit.coefficient,
                    probability_plus=_probability_plus(distributions[cursor], selected),
                    label=term_circuit.term.label,
                    consumes_entangled_pair=term_circuit.term.consumes_entangled_pair,
                )
            )
            cursor += 1
        exact_value = exact_expectation(circuit, pauli.to_matrix())
        models.append(
            CutSamplingModel(
                terms=tuple(terms), exact_value=float(exact_value), protocol_name=protocol.name
            )
        )
    return models


def build_sampling_model(
    circuit: QuantumCircuit,
    location: CutLocation,
    protocol: WireCutProtocol,
    observable: str | PauliString = "Z",
    backend: SimulatorBackend | str | None = None,
) -> CutSamplingModel:
    """Compute the exact per-term outcome distributions for a cut.

    One exact simulation is performed per term circuit (batched and cached
    when the vectorized backend is selected); the resulting classical
    distributions give the exact probability of a +1 signed outcome per term.
    """
    return build_sampling_models([circuit], location, protocol, observable, backend=backend)[0]


def sampling_models_from_instances(table, backend=None) -> list[TermSamplingModel]:
    """Bridge an instance table into the per-term sampling-model machinery.

    The table (a :class:`repro.cutting.instances.InstanceTable`; accepted
    structurally to keep this module import-light) is evaluated once through
    ``backend``, then every QPD product term's exact ``p₊`` is chained from
    the shared fragment tensors — so a full multi-cut term set becomes a
    list of :class:`TermSamplingModel` objects without ever materialising
    the monolithic term circuits.

    Parameters
    ----------
    table:
        An :class:`~repro.cutting.instances.InstanceTable` (evaluated or
        not; evaluation is idempotent).
    backend:
        Execution backend (name or instance) for the instance evaluation;
        ``None`` selects the serial backend.

    Returns
    -------
    list[TermSamplingModel]
        One exact sampling model per QPD product term, in the monolithic
        product order.
    """
    table.evaluate(backend)
    return [
        TermSamplingModel(
            coefficient=table.term_coefficient(assignment),
            probability_plus=table.term_probability_plus(assignment),
            label=table.term_label(assignment),
            consumes_entangled_pair=table.term_entangled_pairs(assignment) > 0,
        )
        for assignment in table.term_assignments()
    ]


def exact_cut_expectation(
    circuit: QuantumCircuit,
    location: CutLocation,
    protocol: WireCutProtocol,
    observable: str | PauliString = "Z",
    backend: SimulatorBackend | str | None = None,
) -> float:
    """Return the cut estimator's exact (infinite-shot) value.

    For a valid protocol this equals the uncut expectation value; tests use
    the agreement of the two as an end-to-end correctness check of the
    circuit-level gadgets.
    """
    model = build_sampling_model(circuit, location, protocol, observable, backend=backend)
    return model.exact_cut_value()


# ---------------------------------------------------------------------------
# Single-qubit convenience entry point (the paper's Section IV workload)
# ---------------------------------------------------------------------------


def _state_preparation_circuit(state: Statevector | np.ndarray) -> QuantumCircuit:
    vector = state.data if isinstance(state, Statevector) else np.asarray(state, dtype=complex)
    if vector.shape != (2,):
        raise CuttingError(
            f"cut_expectation_value expects a single-qubit state, got dimension {vector.shape}"
        )
    circuit = QuantumCircuit(1, 0, name="state_prep")
    circuit.initialize(vector, 0)
    return circuit


def cut_expectation_value(
    state: Statevector | np.ndarray,
    protocol: WireCutProtocol,
    shots: int,
    observable: str | PauliString = "Z",
    allocation: str = "proportional",
    seed: SeedLike = None,
    method: str = "exact",
    backend: SimulatorBackend | str | None = None,
) -> CutExpectationResult:
    """Estimate ``⟨O⟩`` of a single-qubit ``state`` transmitted through a cut wire.

    This is the exact workload of the paper's numerical experiments: the
    state is prepared on the sender, the wire is cut with ``protocol``, and
    the observable (default Pauli Z) is measured on the receiver.
    """
    circuit = _state_preparation_circuit(state)
    location = CutLocation(qubit=0, position=len(circuit))
    return estimate_cut_expectation(
        circuit,
        location,
        protocol,
        observable=observable,
        shots=shots,
        allocation=allocation,
        seed=seed,
        method=method,
        backend=backend,
    )
