"""Wire-cutting protocols, cutter, planner, executors and extensions.

The central class is :class:`NMEWireCut` (the paper's Theorem 2); the
baselines are :class:`HaradaWireCut` (optimal entanglement-free cut, κ=3),
:class:`PengWireCut` (original Pauli-basis cut, κ=4) and
:class:`TeleportationWireCut` (maximally entangled resource, κ=1).

Cut *planning* (:func:`plan_cuts` / :func:`find_time_slice_cuts`) and the
multi-wire tensor-product builder (:mod:`repro.cutting.multi_wire`) are the
stages :class:`repro.pipeline.CutPipeline` composes; the single-cut
executor (:mod:`repro.cutting.executor`) remains the fast path for the
paper's one-wire workloads.
"""

from repro.cutting.base import GadgetWiring, WireCutProtocol, WireCutTerm
from repro.cutting.cutter import CutLocation, CutTermCircuit, build_cut_circuits, cut_wire
from repro.cutting.executor import (
    ESTIMATION_MODES,
    CutExpectationResult,
    CutSamplingModel,
    TermSamplingModel,
    build_sampling_model,
    build_sampling_models,
    cut_expectation_value,
    estimate_cut_expectation,
    exact_cut_expectation,
    sampling_models_from_instances,
)
from repro.cutting.instances import (
    FragmentInstance,
    InstanceStats,
    InstanceTable,
    SplitGadget,
    build_instance_table,
    execute_instances,
    execute_instances_adaptive,
    instance_support_reason,
    split_wire_cut_term,
    supports_instance_dedup,
)
from repro.cutting.gate_cutting import (
    CZGateCut,
    GateCutProtocol,
    GateCutTerm,
    ZZGateCut,
    build_gate_cut_circuits,
    estimate_gate_cut_expectation,
)
from repro.cutting.multi_wire import (
    MultiCutTermCircuit,
    build_multi_cut_circuits,
    estimate_multi_cut_expectation,
    execute_term_circuits,
    execute_term_circuits_adaptive,
    independent_cuts_decomposition,
    measured_multi_cut_circuit,
)
from repro.cutting.nme_cut import NMEWireCut, nme_coefficients
from repro.cutting.noise import (
    effective_cut_superoperator,
    noisy_phi_k,
    noisy_resource_overhead,
    reconstruction_bias,
    validate_noise_strength,
    worst_case_z_bias,
)
from repro.cutting.overhead import (
    expected_pairs_per_shot,
    harada_overhead,
    k_for_target_overhead,
    multi_wire_independent_overhead,
    multi_wire_joint_overhead,
    nme_overhead,
    optimal_overhead,
    optimal_overhead_for_state,
    overhead_reduction_factor,
    overlap_for_target_overhead,
    pairs_proportionality_constant,
    peng_overhead,
    shots_multiplier,
    teleportation_overhead,
)
from repro.cutting.cut_finding import (
    CutPlan,
    Fragment,
    MultiCutPlan,
    find_time_slice_cuts,
    fragment_widths,
    plan_cuts,
    plan_from_locations,
    plan_from_positions,
)
from repro.cutting.peng_cut import PengWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.cutting.virtual_distillation import DistilledTeleportWireCut, virtual_bell_decomposition

__all__ = [
    # protocol classes
    "WireCutProtocol",
    "WireCutTerm",
    "GadgetWiring",
    "NMEWireCut",
    "HaradaWireCut",
    "PengWireCut",
    "TeleportationWireCut",
    "nme_coefficients",
    # cutter / executor
    "CutLocation",
    "CutTermCircuit",
    "build_cut_circuits",
    "cut_wire",
    "CutExpectationResult",
    "ESTIMATION_MODES",
    "estimate_cut_expectation",
    "cut_expectation_value",
    "exact_cut_expectation",
    "build_sampling_model",
    "build_sampling_models",
    "CutSamplingModel",
    "TermSamplingModel",
    # overheads
    "optimal_overhead",
    "optimal_overhead_for_state",
    "nme_overhead",
    "harada_overhead",
    "peng_overhead",
    "teleportation_overhead",
    "shots_multiplier",
    "expected_pairs_per_shot",
    "pairs_proportionality_constant",
    "overhead_reduction_factor",
    "k_for_target_overhead",
    "overlap_for_target_overhead",
    "multi_wire_joint_overhead",
    "multi_wire_independent_overhead",
    # gate cutting
    "GateCutProtocol",
    "GateCutTerm",
    "ZZGateCut",
    "CZGateCut",
    "build_gate_cut_circuits",
    "estimate_gate_cut_expectation",
    # multi-wire
    "MultiCutTermCircuit",
    "build_multi_cut_circuits",
    "estimate_multi_cut_expectation",
    "execute_term_circuits",
    "execute_term_circuits_adaptive",
    "independent_cuts_decomposition",
    "measured_multi_cut_circuit",
    # instance dedup
    "SplitGadget",
    "split_wire_cut_term",
    "instance_support_reason",
    "supports_instance_dedup",
    "FragmentInstance",
    "InstanceStats",
    "InstanceTable",
    "build_instance_table",
    "execute_instances",
    "execute_instances_adaptive",
    "sampling_models_from_instances",
    # virtual distillation (Appendix B construction)
    "virtual_bell_decomposition",
    "DistilledTeleportWireCut",
    # automatic cut finding
    "CutPlan",
    "Fragment",
    "MultiCutPlan",
    "find_time_slice_cuts",
    "fragment_widths",
    "plan_cuts",
    "plan_from_locations",
    "plan_from_positions",
    # noise extension
    "validate_noise_strength",
    "noisy_phi_k",
    "noisy_resource_overhead",
    "effective_cut_superoperator",
    "reconstruction_bias",
    "worst_case_z_bias",
]
