"""Wire "cut" by plain quantum teleportation (the κ = 1 endpoint).

With a maximally entangled resource pair the wire can simply be teleported:
a single QPD term with coefficient 1 and no sampling overhead.  This is the
``f(Φ_k) = 1`` series of Figure 6 — the error floor set purely by finite-shot
statistics of the final measurement.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.cutting.base import GadgetWiring, WireCutProtocol, WireCutTerm
from repro.cutting.overhead import teleportation_overhead
from repro.quantum.channels import identity_channel
from repro.teleport.protocol import bell_measurement, prepare_phi_k, teleportation_corrections

__all__ = ["TeleportationWireCut"]


def _teleport_gadget(circuit: QuantumCircuit, wiring: GadgetWiring) -> None:
    """Teleport the sender qubit onto the receiver through a maximally entangled pair."""
    sender = wiring.sender_qubit
    ancilla = wiring.ancilla_qubits[0]
    receiver = wiring.receiver_qubit
    clbit_a = wiring.clbit(0)
    clbit_b = wiring.clbit(1)
    prepare_phi_k(circuit, 1.0, ancilla, receiver)
    bell_measurement(circuit, sender, ancilla, clbit_a, clbit_b)
    teleportation_corrections(circuit, receiver, clbit_a, clbit_b)


class TeleportationWireCut(WireCutProtocol):
    """Single-term protocol: transmit the wire with standard teleportation (κ = 1)."""

    name = "teleportation"

    def build_terms(self) -> tuple[WireCutTerm, ...]:
        """Construct the single maximally-entangled teleportation term."""
        return (
            WireCutTerm(
                coefficient=1.0,
                channel=identity_channel(1),
                label="teleport-maximally-entangled",
                gadget_builder=_teleport_gadget,
                num_ancilla_qubits=1,
                num_gadget_clbits=2,
                consumes_entangled_pair=True,
                metadata={"k": 1.0},
            ),
        )

    def theoretical_overhead(self) -> float:
        """Return the teleportation κ = 1."""
        return teleportation_overhead()
