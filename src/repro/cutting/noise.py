"""Noisy / mixed NME resource states (the paper's future-work direction).

The paper's Theorem 2 assumes *pure* NME resource states ``|Φ_k⟩``.  On real
hardware a distributed pair is noisy, i.e. a mixed state ρ.  This module
quantifies what happens then:

* Theorem 1 still gives the optimal overhead ``2/f(ρ) − 1`` for the *actual*
  resource (``f`` computed by :func:`repro.quantum.entanglement.maximal_overlap`).
* If the pure-state QPD of Theorem 2 is applied while the physically shared
  pair is a noisy version of ``|Φ_k⟩``, the reconstructed map is no longer
  the identity; :func:`effective_cut_channel` builds the resulting channel
  and :func:`reconstruction_bias` bounds the systematic error it introduces
  on a Pauli-Z expectation value.

These functions back the noise-robustness ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CuttingError
from repro.cutting.nme_cut import nme_coefficients
from repro.cutting.overhead import optimal_overhead
from repro.quantum.bell import phi_k_density
from repro.quantum.channels import QuantumChannel, depolarizing_channel
from repro.quantum.entanglement import maximal_overlap
from repro.quantum.gates import H, S, X, Z
from repro.quantum.states import DensityMatrix
from repro.teleport.channel import teleportation_error_probabilities

__all__ = [
    "validate_noise_strength",
    "noisy_phi_k",
    "noisy_resource_overhead",
    "effective_cut_superoperator",
    "effective_cut_channel",
    "reconstruction_bias",
    "worst_case_z_bias",
]


def validate_noise_strength(value, name: str = "depolarizing_p") -> float:
    """Normalise and validate a noise strength, raising a clear :class:`CuttingError`.

    This is the single boundary check shared by :func:`noisy_phi_k`, the
    noisy-resource ablation and the CLI / fleet sweep entry points, so a bad
    sweep value fails immediately with the offending value named instead of
    surfacing deep inside a channel constructor.

    Parameters
    ----------
    value:
        Candidate noise strength; anything convertible to ``float``.
    name:
        Parameter name used in the error message.

    Returns
    -------
    float
        The validated strength in ``[0, 1]``.

    Raises
    ------
    CuttingError
        When ``value`` is not a finite number in ``[0, 1]``.
    """
    try:
        strength = float(value)
    except (TypeError, ValueError):
        raise CuttingError(f"{name} must be a number in [0, 1], got {value!r}") from None
    if not np.isfinite(strength) or not 0.0 <= strength <= 1.0:
        raise CuttingError(f"{name} must be in [0, 1], got {value!r}")
    return strength


def noisy_phi_k(k: float, depolarizing_p: float) -> DensityMatrix:
    """Return ``|Φ_k⟩`` after two-qubit depolarising noise of strength ``p``.

    ``p = 0`` returns the pure state; ``p = 1`` the maximally mixed state.
    """
    depolarizing_p = validate_noise_strength(depolarizing_p)
    pure = phi_k_density(k)
    noise = depolarizing_channel(depolarizing_p, num_qubits=2)
    return noise.apply(pure)


def noisy_resource_overhead(resource: DensityMatrix) -> float:
    """Theorem-1 optimal overhead for an arbitrary (possibly mixed) resource state."""
    return optimal_overhead(maximal_overlap(resource))


def _teleport_term_superop(resource: DensityMatrix, basis_unitary: np.ndarray) -> np.ndarray:
    """Superoperator of ``U_i E_tel^ρ(U_i† · U_i) U_i†`` for an arbitrary resource ρ."""
    probabilities = teleportation_error_probabilities(resource)
    paulis = {"I": np.eye(2, dtype=complex), "X": X, "Y": 1j * X @ Z, "Z": Z}
    superop = np.zeros((4, 4), dtype=complex)
    for label, probability in probabilities.items():
        if probability <= 1e-15:
            continue
        kraus = basis_unitary @ paulis[label] @ basis_unitary.conj().T
        superop += probability * np.kron(kraus, kraus.conj())
    return superop


def effective_cut_superoperator(k: float, actual_resource: DensityMatrix) -> np.ndarray:
    """Superoperator of the map actually implemented by the Theorem-2 QPD.

    The coefficients ``a, b`` are those of the *intended* pure state ``Φ_k``;
    the teleportation channels are those of the *actual* shared resource.
    With ``actual_resource = |Φ_k⟩⟨Φ_k|`` the result is exactly the identity.
    """
    a, b = nme_coefficients(k)
    u2 = S @ H
    superop = a * _teleport_term_superop(actual_resource, H)
    superop += a * _teleport_term_superop(actual_resource, u2)
    # The measure-and-flip-prepare correction term (exact regardless of the resource).
    flip_kraus = [
        np.array([[0, 0], [1, 0]], dtype=complex),
        np.array([[0, 1], [0, 0]], dtype=complex),
    ]
    flip_superop = sum(np.kron(kraus, kraus.conj()) for kraus in flip_kraus)
    superop -= b * flip_superop
    return superop


def effective_cut_channel(k: float, actual_resource: DensityMatrix) -> QuantumChannel:
    """Return the effective map as a channel when it is completely positive.

    Raises
    ------
    CuttingError
        If the effective map is not completely positive (possible for strong
        noise, because the QPD coefficients were tuned for the pure state).
    """
    superop = effective_cut_superoperator(k, actual_resource)
    # Convert the natural superoperator to a Choi matrix to extract Kraus operators.
    choi = np.zeros((4, 4), dtype=complex)
    for i in range(2):
        for j in range(2):
            unit = np.zeros((2, 2), dtype=complex)
            unit[i, j] = 1.0
            out = (superop @ unit.reshape(-1)).reshape(2, 2)
            choi += np.kron(unit, out)
    try:
        return QuantumChannel.from_choi(choi, dim_in=2)
    except Exception as error:  # noqa: BLE001 - re-raise with domain context
        raise CuttingError(
            "the effective cut map is not completely positive for this noise level"
        ) from error


def reconstruction_bias(k: float, actual_resource: DensityMatrix) -> float:
    """Return the operator-norm deviation of the effective map from the identity.

    This bounds the systematic (shot-independent) error introduced by running
    the pure-state QPD with a noisy resource.
    """
    superop = effective_cut_superoperator(k, actual_resource)
    deviation = superop - np.eye(4, dtype=complex)
    return float(np.linalg.norm(deviation, ord=2))


def worst_case_z_bias(k: float, actual_resource: DensityMatrix, samples: int = 200, seed: int = 0) -> float:
    """Estimate the worst-case bias of ``⟨Z⟩`` over random pure input states.

    A direct, interpretable companion to :func:`reconstruction_bias`: the
    maximum over sampled inputs of ``|Tr[Z·(E_eff(ρ) − ρ)]|``.
    """
    from repro.quantum.random import random_statevector

    superop = effective_cut_superoperator(k, actual_resource)
    z = np.diag([1.0, -1.0]).astype(complex)
    worst = 0.0
    for index in range(samples):
        state = random_statevector(1, seed=seed + index)
        rho = np.outer(state.data, state.data.conj())
        effective = (superop @ rho.reshape(-1)).reshape(2, 2)
        bias = abs(float(np.real(np.trace(z @ (effective - rho)))))
        worst = max(worst, bias)
    return worst
