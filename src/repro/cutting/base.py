"""Protocol-level abstractions for single-wire cuts.

A wire-cut *protocol* is a quasiprobability decomposition of the one-qubit
identity channel whose terms can each be realised by a small circuit gadget:
local operations on the sender side of the cut, classical communication, and
local operations on the receiver side (plus, for the NME protocols, a
pre-shared resource pair).

Two views of every term are maintained and kept consistent:

* **analytic** — a Kraus channel or raw superoperator, used for exact
  verification (does the weighted sum equal the identity map?) and exact
  expectation values;
* **operational** — a gadget builder that appends the term's circuit
  fragment (measurements, classically conditioned preparations,
  teleportation) to a larger circuit, used by the cutter/executor to run the
  protocol on the shot simulator exactly as a distributed device pair would.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.qpd.decomposition import QuasiProbDecomposition
from repro.qpd.terms import QPDTerm

__all__ = ["GadgetWiring", "WireCutTerm", "WireCutProtocol", "superoperator_from_map"]


@dataclass(frozen=True)
class GadgetWiring:
    """Physical wiring of one cut gadget inside a larger circuit.

    Attributes
    ----------
    sender_qubit:
        The qubit carrying the state to be transferred (the cut wire, on the
        sender's side).
    receiver_qubit:
        The fresh qubit that carries the wire after the cut (receiver side).
    ancilla_qubits:
        Additional qubits the gadget may use (e.g. the sender-side half of a
        pre-shared resource pair).
    clbit_offset:
        Index of the first classical bit reserved for the gadget; the gadget
        uses ``clbit_offset, clbit_offset+1, ...``.
    """

    sender_qubit: int
    receiver_qubit: int
    ancilla_qubits: tuple[int, ...] = ()
    clbit_offset: int = 0

    def clbit(self, relative_index: int) -> int:
        """Return the absolute classical-bit index for a gadget-relative index."""
        return self.clbit_offset + relative_index


#: Signature of a gadget builder: appends instructions to ``circuit`` in place.
GadgetBuilder = Callable[[QuantumCircuit, GadgetWiring], None]


@dataclass(frozen=True)
class WireCutTerm(QPDTerm):
    """One QPD term of a wire-cut protocol, with its circuit gadget.

    Extends :class:`~repro.qpd.terms.QPDTerm` with the operational data the
    cutter and executor need.

    Attributes
    ----------
    gadget_builder:
        Callable appending the term's circuit fragment.
    num_ancilla_qubits:
        Extra qubits (beyond sender and receiver) the gadget needs.
    num_gadget_clbits:
        Classical bits the gadget writes.
    sign_clbits:
        Gadget-relative classical bit indices whose measured parity multiplies
        the observable outcome during post-processing (used by
        observable-weighted terms such as the Peng cut's Pauli measurements).
    consumes_entangled_pair:
        True when the gadget consumes one pre-shared entangled pair
        (resource accounting for the pairs-per-shot benchmark).
    """

    gadget_builder: GadgetBuilder | None = field(default=None, compare=False)
    num_ancilla_qubits: int = 0
    num_gadget_clbits: int = 0
    sign_clbits: tuple[int, ...] = ()
    consumes_entangled_pair: bool = False

    def build_gadget(self, circuit: QuantumCircuit, wiring: GadgetWiring) -> None:
        """Append the term's gadget to ``circuit`` using ``wiring``."""
        if self.gadget_builder is None:
            raise CuttingError(f"term {self.label!r} has no gadget builder")
        if len(wiring.ancilla_qubits) != self.num_ancilla_qubits:
            raise CuttingError(
                f"term {self.label!r} needs {self.num_ancilla_qubits} ancilla qubits, "
                f"wiring provides {len(wiring.ancilla_qubits)}"
            )
        self.gadget_builder(circuit, wiring)


class WireCutProtocol(ABC):
    """Base class of single-wire-cut protocols (a QPD of the one-qubit identity)."""

    #: Human-readable protocol name (set by subclasses).
    name: str = "wire-cut"

    def __init__(self) -> None:
        self._terms: tuple[WireCutTerm, ...] | None = None

    # -- abstract surface ---------------------------------------------------------

    @abstractmethod
    def build_terms(self) -> tuple[WireCutTerm, ...]:
        """Construct the protocol's QPD terms (called once and cached)."""

    @abstractmethod
    def theoretical_overhead(self) -> float:
        """Return the analytic κ this protocol is supposed to attain."""

    # -- cached views ----------------------------------------------------------------

    @property
    def terms(self) -> tuple[WireCutTerm, ...]:
        """The protocol's terms (built lazily, cached)."""
        if self._terms is None:
            self._terms = tuple(self.build_terms())
            if not self._terms:
                raise CuttingError(f"protocol {self.name!r} produced no terms")
        return self._terms

    def decomposition(self) -> QuasiProbDecomposition:
        """Return the protocol as a :class:`QuasiProbDecomposition`."""
        return QuasiProbDecomposition(self.terms, name=self.name)

    @property
    def kappa(self) -> float:
        """The 1-norm of the protocol's coefficients."""
        return float(sum(abs(term.coefficient) for term in self.terms))

    @property
    def num_terms(self) -> int:
        """Number of QPD terms."""
        return len(self.terms)

    # -- verification -----------------------------------------------------------------

    def is_exact(self, atol: float = 1e-9) -> bool:
        """Return True when the weighted terms sum exactly to the identity channel."""
        return self.decomposition().matches_identity(atol=atol)

    def verify(self, atol: float = 1e-9) -> None:
        """Raise :class:`CuttingError` unless the protocol is a valid identity QPD.

        Checks (i) the superoperator sum equals the identity, (ii) the
        coefficients sum to 1, and (iii) κ matches the protocol's analytic
        overhead.
        """
        decomposition = self.decomposition()
        if not decomposition.matches_identity(atol=atol):
            raise CuttingError(f"protocol {self.name!r} does not reproduce the identity channel")
        if abs(decomposition.coefficient_sum() - 1.0) > 1e-8:
            raise CuttingError(
                f"protocol {self.name!r} coefficients sum to {decomposition.coefficient_sum():.6g}"
            )
        if abs(self.kappa - self.theoretical_overhead()) > 1e-8:
            raise CuttingError(
                f"protocol {self.name!r} has κ={self.kappa:.6g}, expected "
                f"{self.theoretical_overhead():.6g}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(kappa={self.kappa:.4f}, terms={self.num_terms})"


def superoperator_from_map(
    apply_map: Callable[[np.ndarray], np.ndarray], dim: int = 2
) -> np.ndarray:
    """Build the dense superoperator of an arbitrary linear map on ``dim × dim`` matrices.

    The map is probed with every matrix unit; this is exact for linear maps
    and is only used on single-qubit maps, so cost is negligible.
    """
    superop = np.zeros((dim * dim, dim * dim), dtype=complex)
    for row in range(dim):
        for col in range(dim):
            unit = np.zeros((dim, dim), dtype=complex)
            unit[row, col] = 1.0
            superop[:, row * dim + col] = apply_map(unit).reshape(-1)
    return superop
