"""Gate cutting (the related-work alternative to wire cutting).

Instead of cutting a wire, a non-local two-qubit *gate* can be decomposed
into sampled local operations (Mitarai & Fujii [12]; Piveteau & Sutter [14]).
For the ZZ-interaction family — which covers CZ up to local gates — the
channel of ``exp(iθ Z⊗Z)`` admits the six-term local decomposition

.. math::

    \\mathcal{E}_\\theta = \\cos^2\\theta\\,[\\mathrm{id}]
      + \\sin^2\\theta\\,[Z\\!\\otimes\\!Z]
      + \\cos\\theta\\sin\\theta\\,
        (W\\!\\otimes\\!R_+ - W\\!\\otimes\\!R_- + R_+\\!\\otimes\\!W - R_-\\!\\otimes\\!W),

where ``R_± σ = e^{±iπ/4 Z} σ e^{∓iπ/4 Z}`` are local Z rotations and
``W(σ) = Π_+σΠ_+ − Π_-σΠ_-`` is the outcome-weighted Z measurement (the ±1
outcome is folded into post-processing, exactly like the Peng wire-cut
terms).  The identity follows from
``i[Z⊗Z, ρ] = ½({Z₁, i[Z₂, ρ]} + {Z₂, i[Z₁, ρ]})`` together with
``{Z, σ} = 2W(σ)`` and ``i[Z, σ] = (R_+ − R_-)(σ)``.

The overhead is ``κ = 1 + 2|sin 2θ|``, i.e. κ = 3 for CZ — the known optimal
value, matching the entanglement-free wire cut.  The decomposition is
verified numerically at construction time, and the gadget builders realise
each term with mid-circuit measurements and local rotations so gate cuts can
be executed end-to-end on the shot simulator and compared against wire cuts
in the ablation benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import _BASIS_CHANGE, exact_expectation
from repro.circuits.shot_simulator import ShotSimulator
from repro.qpd.allocation import allocate_shots
from repro.qpd.decomposition import QuasiProbDecomposition
from repro.qpd.estimator import TermEstimate, combine_term_estimates
from repro.qpd.terms import QPDTerm
from repro.quantum.paulis import PauliString
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "GateCutTerm",
    "GateCutProtocol",
    "ZZGateCut",
    "CZGateCut",
    "build_gate_cut_circuits",
    "estimate_gate_cut_expectation",
    "GateCutTermCircuit",
]

# Local building blocks.
_Z = np.array([[1, 0], [0, -1]], dtype=complex)
_ROT_PLUS = np.diag([np.exp(1j * np.pi / 4), np.exp(-1j * np.pi / 4)])  # e^{+iπ/4 Z}
_ROT_MINUS = _ROT_PLUS.conj()
_S = np.diag([1.0, 1j]).astype(complex)


def _weighted_measurement_superop() -> np.ndarray:
    """Superoperator of the single-qubit map ``W(σ) = Π₊σΠ₊ − Π₋σΠ₋``."""
    pi_plus = np.diag([1.0, 0.0]).astype(complex)
    pi_minus = np.diag([0.0, 1.0]).astype(complex)
    return np.kron(pi_plus, pi_plus.conj()) - np.kron(pi_minus, pi_minus.conj())


def _unitary_superop(unitary: np.ndarray) -> np.ndarray:
    """Superoperator of the unitary conjugation map for a single qubit."""
    return np.kron(unitary, unitary.conj())


def _tensor_single_qubit_superops(superop_1: np.ndarray, superop_2: np.ndarray) -> np.ndarray:
    """Superoperator of ``F₁ ⊗ F₂`` for two single-qubit maps (explicit basis construction)."""
    from repro.qpd.superop import tensor_superoperators

    return tensor_superoperators(superop_1, superop_2)


@dataclass(frozen=True)
class GateCutTerm(QPDTerm):
    """A QPD term of a gate cut.

    The gadget acts in place on the two qubits of the cut gate (no new qubits
    are introduced, unlike a wire cut).  ``sign_clbits`` lists the
    gadget-relative classical bits whose measured parity multiplies the
    observable during post-processing.
    """

    gadget_builder: Callable[[QuantumCircuit, int, int, int], None] | None = field(
        default=None, compare=False
    )
    num_gadget_clbits: int = 0
    sign_clbits: tuple[int, ...] = ()


def _rotation_gadget(angle_sign: int, rotate_qubit: int, measure_qubit: int):
    """Gadget: weighted Z measurement on one qubit, ``e^{±iπ/4 Z}`` rotation on the other.

    ``rotate_qubit``/``measure_qubit`` select which of the two gate qubits
    (0 or 1, gate-relative) gets which role.
    """

    def gadget(circuit: QuantumCircuit, qubit_a: int, qubit_b: int, clbit_offset: int) -> None:
        """Append the rotation/measurement pair at the wired qubits."""
        qubits = (qubit_a, qubit_b)
        # rz(θ) = e^{-iθZ/2} up to global phase, so e^{+iπ/4 Z} ≙ rz(-π/2).
        circuit.rz(-angle_sign * np.pi / 2.0, qubits[rotate_qubit])
        circuit.measure(qubits[measure_qubit], clbit_offset)

    return gadget


def _identity_gadget(circuit: QuantumCircuit, qubit_a: int, qubit_b: int, clbit_offset: int) -> None:
    """Gadget for the identity term: nothing to apply."""


def _zz_gadget(circuit: QuantumCircuit, qubit_a: int, qubit_b: int, clbit_offset: int) -> None:
    """Gadget for the Z⊗Z unitary term."""
    circuit.z(qubit_a)
    circuit.z(qubit_b)


class GateCutProtocol:
    """Base class for two-qubit gate cuts (QPDs of a two-qubit unitary channel)."""

    name = "gate-cut"

    def __init__(self) -> None:
        self._terms: tuple[GateCutTerm, ...] | None = None

    def build_terms(self) -> tuple[GateCutTerm, ...]:  # pragma: no cover - abstract
        """Construct the protocol's QPD terms (overridden by subclasses)."""
        raise NotImplementedError

    def target_unitary(self) -> np.ndarray:  # pragma: no cover - abstract
        """Return the two-qubit unitary this QPD reproduces (overridden by subclasses)."""
        raise NotImplementedError

    @property
    def terms(self) -> tuple[GateCutTerm, ...]:
        """The protocol's terms (built lazily and verified once)."""
        if self._terms is None:
            self._terms = tuple(self.build_terms())
            self._verify()
        return self._terms

    def decomposition(self) -> QuasiProbDecomposition:
        """Return the protocol as a :class:`QuasiProbDecomposition`."""
        return QuasiProbDecomposition(self.terms, name=self.name)

    @property
    def kappa(self) -> float:
        """Sampling-overhead factor."""
        return float(sum(abs(t.coefficient) for t in self.terms))

    def _verify(self) -> None:
        target = self.target_unitary()
        target_superop = np.kron(target, target.conj())
        total = sum(t.coefficient * t.superoperator() for t in self._terms)
        if not np.allclose(total, target_superop, atol=1e-9):
            raise CuttingError(
                f"gate-cut protocol {self.name!r} does not reproduce its target unitary channel"
            )


class ZZGateCut(GateCutProtocol):
    """Six-term local decomposition of the ``exp(iθ Z⊗Z)`` channel (κ = 1 + 2|sin 2θ|)."""

    name = "zz-gate-cut"

    def __init__(self, theta: float):
        super().__init__()
        self.theta = float(theta)

    def target_unitary(self) -> np.ndarray:
        """Return the ``e^{iθ Z⊗Z}`` unitary the decomposition reproduces."""
        zz = np.kron(_Z, _Z)
        return np.cos(self.theta) * np.eye(4, dtype=complex) + 1j * np.sin(self.theta) * zz

    def theoretical_overhead(self) -> float:
        """Analytic κ of the decomposition."""
        return float(1.0 + 2.0 * abs(np.sin(2.0 * self.theta)))

    def build_terms(self) -> tuple[GateCutTerm, ...]:
        """Construct the six ZZ-cut terms (identity, Z⊗Z and four weighted rotations)."""
        cos2 = float(np.cos(self.theta) ** 2)
        sin2 = float(np.sin(self.theta) ** 2)
        cross = float(np.cos(self.theta) * np.sin(self.theta))

        identity_superop = _unitary_superop(np.eye(2, dtype=complex))
        z_superop = _unitary_superop(_Z)
        rot_plus = _unitary_superop(_ROT_PLUS)
        rot_minus = _unitary_superop(_ROT_MINUS)
        weighted = _weighted_measurement_superop()

        terms = [
            GateCutTerm(
                coefficient=cos2,
                superoperator_matrix=_tensor_single_qubit_superops(identity_superop, identity_superop),
                label="identity",
                gadget_builder=_identity_gadget,
            ),
            GateCutTerm(
                coefficient=sin2,
                superoperator_matrix=_tensor_single_qubit_superops(z_superop, z_superop),
                label="z⊗z",
                gadget_builder=_zz_gadget,
            ),
        ]
        # The four cross terms: weighted measurement on one qubit, ±π/4 Z
        # rotation on the other.
        cross_specs = [
            (cross, weighted, rot_plus, "W⊗R+", 1, 0, +1),
            (-cross, weighted, rot_minus, "W⊗R-", 1, 0, -1),
            (cross, rot_plus, weighted, "R+⊗W", 0, 1, +1),
            (-cross, rot_minus, weighted, "R-⊗W", 0, 1, -1),
        ]
        for coefficient, superop_1, superop_2, label, rotate_qubit, measure_qubit, sign in cross_specs:
            if abs(coefficient) < 1e-15:
                continue
            terms.append(
                GateCutTerm(
                    coefficient=coefficient,
                    superoperator_matrix=_tensor_single_qubit_superops(superop_1, superop_2),
                    label=label,
                    gadget_builder=_rotation_gadget(sign, rotate_qubit, measure_qubit),
                    num_gadget_clbits=1,
                    sign_clbits=(0,),
                )
            )
        return tuple(terms)


class CZGateCut(GateCutProtocol):
    """Gate cut of the controlled-Z gate (κ = 3).

    Uses ``CZ = e^{-iπ/4}(S ⊗ S)·exp(iπ/4 Z⊗Z)``: every ZZ(π/4) term is
    post-composed with the local ``S ⊗ S`` rotation.
    """

    name = "cz-gate-cut"

    def __init__(self) -> None:
        super().__init__()
        self._zz = ZZGateCut(np.pi / 4.0)

    def target_unitary(self) -> np.ndarray:
        """Return the CZ unitary the decomposition reproduces."""
        return np.diag([1.0, 1.0, 1.0, -1.0]).astype(complex)

    def theoretical_overhead(self) -> float:
        """Analytic κ (3 for CZ)."""
        return 3.0

    def build_terms(self) -> tuple[GateCutTerm, ...]:
        """Construct the CZ terms: the ZZ(π/4) terms with S⊗S appended."""
        s_superop = _unitary_superop(_S)
        ss_superop = _tensor_single_qubit_superops(s_superop, s_superop)
        terms = []
        for term in self._zz.build_terms():

            def make_gadget(inner_builder):
                """Wrap a ZZ-term gadget so it also applies the trailing S gates."""
                def gadget(circuit: QuantumCircuit, qubit_a: int, qubit_b: int, clbit_offset: int) -> None:
                    """Append the inner gadget followed by S on both gate qubits."""
                    inner_builder(circuit, qubit_a, qubit_b, clbit_offset)
                    circuit.s(qubit_a)
                    circuit.s(qubit_b)

                return gadget

            terms.append(
                GateCutTerm(
                    coefficient=term.coefficient,
                    superoperator_matrix=ss_superop @ term.superoperator(),
                    label=f"{term.label}+S⊗S",
                    gadget_builder=make_gadget(term.gadget_builder),
                    num_gadget_clbits=term.num_gadget_clbits,
                    sign_clbits=term.sign_clbits,
                )
            )
        return tuple(terms)


# ---------------------------------------------------------------------------
# Applying a gate cut to a circuit
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GateCutTermCircuit:
    """One executable circuit realising a single term of a gate cut."""

    circuit: QuantumCircuit
    term: GateCutTerm
    term_index: int
    sign_clbits: tuple[int, ...]

    @property
    def coefficient(self) -> float:
        """The term's quasiprobability coefficient."""
        return self.term.coefficient


def build_gate_cut_circuits(
    circuit: QuantumCircuit,
    gate_index: int,
    protocol: GateCutProtocol,
) -> list[GateCutTermCircuit]:
    """Replace the two-qubit gate at ``gate_index`` by each QPD term's gadget.

    The gate at ``gate_index`` must act on exactly two qubits; its unitary is
    not inspected — the caller chooses a protocol matching the gate (use
    :class:`CZGateCut` for ``cz``, :class:`ZZGateCut` for ``rzz``).
    """
    if not 0 <= gate_index < len(circuit):
        raise CuttingError(f"gate_index {gate_index} out of range")
    target = circuit.instructions[gate_index]
    if len(target.qubits) != 2:
        raise CuttingError("gate cutting requires a two-qubit gate at the cut position")
    qubit_a, qubit_b = target.qubits
    results = []
    for index, term in enumerate(protocol.terms):
        clbit_offset = circuit.num_clbits
        new_circuit = QuantumCircuit(
            circuit.num_qubits,
            circuit.num_clbits + term.num_gadget_clbits,
            name=f"{circuit.name}_{protocol.name}_term{index}",
        )
        for position, instruction in enumerate(circuit.instructions):
            if position == gate_index:
                term.gadget_builder(new_circuit, qubit_a, qubit_b, clbit_offset)
            else:
                new_circuit.append(instruction)
        sign_clbits = tuple(clbit_offset + rel for rel in term.sign_clbits)
        results.append(
            GateCutTermCircuit(
                circuit=new_circuit, term=term, term_index=index, sign_clbits=sign_clbits
            )
        )
    return results


def estimate_gate_cut_expectation(
    circuit: QuantumCircuit,
    gate_index: int,
    protocol: GateCutProtocol,
    observable: str | PauliString,
    shots: int,
    allocation: str = "proportional",
    seed: SeedLike = None,
    method: str = "exact",
    compute_exact: bool = True,
):
    """Estimate a Pauli observable of ``circuit`` with the gate at ``gate_index`` cut.

    Returns a :class:`~repro.cutting.executor.CutExpectationResult`.
    """
    from repro.cutting.executor import CutExpectationResult

    rng = as_generator(seed)
    pauli = observable if isinstance(observable, PauliString) else PauliString(observable)
    if pauli.num_qubits != circuit.num_qubits:
        raise CuttingError(
            f"observable acts on {pauli.num_qubits} qubits, circuit has {circuit.num_qubits}"
        )
    decomposition = protocol.decomposition()
    shots_per_term = allocate_shots(decomposition.probabilities, shots, strategy=allocation, seed=rng)
    term_circuits = build_gate_cut_circuits(circuit, gate_index, protocol)
    simulator = ShotSimulator(method=method)

    term_estimates = []
    for term_circuit, term_shots in zip(term_circuits, shots_per_term):
        if term_shots == 0:
            term_estimates.append(
                TermEstimate(
                    coefficient=term_circuit.coefficient, mean=0.0, shots=0, label=term_circuit.term.label
                )
            )
            continue
        base = term_circuit.circuit
        active = [(q, p) for q, p in enumerate(pauli.labels) if p != "I"]
        measured = QuantumCircuit(base.num_qubits, base.num_clbits + len(active))
        measured.compose(base, inplace=True)
        observable_clbits = []
        for offset, (qubit, label) in enumerate(active):
            for gate_name, params in _BASIS_CHANGE[label]:
                measured.gate(gate_name, qubit, params)
            clbit = base.num_clbits + offset
            measured.measure(qubit, clbit)
            observable_clbits.append(clbit)
        counts = simulator.run(measured, shots=int(term_shots), seed=rng)
        selected = observable_clbits + list(term_circuit.sign_clbits)
        mean = counts.expectation_z(selected) if selected else 1.0
        term_estimates.append(
            TermEstimate(
                coefficient=term_circuit.coefficient,
                mean=mean,
                shots=int(term_shots),
                label=term_circuit.term.label,
            )
        )
    estimate = combine_term_estimates(term_estimates)
    exact_value = exact_expectation(circuit, pauli.to_matrix()) if compute_exact else None
    return CutExpectationResult(
        value=estimate.value,
        standard_error=estimate.standard_error,
        total_shots=estimate.total_shots,
        kappa=estimate.kappa,
        shots_per_term=tuple(int(s) for s in shots_per_term),
        term_estimates=estimate.term_estimates,
        protocol_name=protocol.name,
        exact_value=exact_value,
    )
