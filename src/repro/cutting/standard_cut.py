"""The optimal entanglement-free wire cut (Harada et al., Eq. 20 / Figure 2).

The one-qubit identity is decomposed into three trace-preserving
measure-and-prepare channels,

.. math::

    I(\\cdot) = \\sum_{i\\in\\{1,2\\}} \\sum_{j\\in\\{0,1\\}}
        \\mathrm{Tr}\\!\\left[U_i|j\\rangle\\langle j|U_i^\\dagger (\\cdot)\\right]
        U_i|j\\rangle\\langle j|U_i^\\dagger
    \\;-\\; \\sum_{j} \\mathrm{Tr}\\!\\left[|j\\rangle\\langle j|(\\cdot)\\right]
        X|j\\rangle\\langle j|X ,

with ``U_1 = H`` and ``U_2 = SH``, achieving the optimal entanglement-free
overhead ``κ = 3``.  This is the ``f = 1/2`` endpoint of the paper's NME
family and the baseline of Figure 6.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.cutting.base import GadgetWiring, WireCutProtocol, WireCutTerm
from repro.cutting.overhead import harada_overhead
from repro.quantum.channels import QuantumChannel
from repro.quantum.gates import H, S

__all__ = ["HaradaWireCut"]


def _measure_prepare_channel(basis_unitary: np.ndarray) -> QuantumChannel:
    """Channel that measures in the ``U|j⟩`` basis and re-prepares the outcome state."""
    kraus = []
    for j in range(2):
        ket_j = np.zeros(2, dtype=complex)
        ket_j[j] = 1.0
        basis_state = basis_unitary @ ket_j
        kraus.append(np.outer(basis_state, basis_state.conj()))
    return QuantumChannel(kraus)


def _flip_prepare_channel() -> QuantumChannel:
    """Channel measuring in Z and preparing the *flipped* outcome, ``Σ_j X|j⟩⟨j| · |j⟩⟨j| X``."""
    kraus = [
        np.array([[0, 0], [1, 0]], dtype=complex),  # |1><0|
        np.array([[0, 1], [0, 0]], dtype=complex),  # |0><1|
    ]
    return QuantumChannel(kraus)


def _basis_1_gadget(circuit: QuantumCircuit, wiring: GadgetWiring) -> None:
    """Term 1 (U₁ = H): measure sender in the X basis, prepare the same state on the receiver."""
    clbit = wiring.clbit(0)
    circuit.h(wiring.sender_qubit)
    circuit.measure(wiring.sender_qubit, clbit)
    circuit.x(wiring.receiver_qubit, condition=(clbit, 1))
    circuit.h(wiring.receiver_qubit)


def _basis_2_gadget(circuit: QuantumCircuit, wiring: GadgetWiring) -> None:
    """Term 2 (U₂ = SH): measure sender in the Y basis, prepare the same state on the receiver."""
    clbit = wiring.clbit(0)
    circuit.sdg(wiring.sender_qubit)
    circuit.h(wiring.sender_qubit)
    circuit.measure(wiring.sender_qubit, clbit)
    circuit.x(wiring.receiver_qubit, condition=(clbit, 1))
    circuit.h(wiring.receiver_qubit)
    circuit.s(wiring.receiver_qubit)


def _flip_gadget(circuit: QuantumCircuit, wiring: GadgetWiring) -> None:
    """Term 3: measure sender in Z, prepare the flipped outcome on the receiver."""
    clbit = wiring.clbit(0)
    circuit.measure(wiring.sender_qubit, clbit)
    circuit.x(wiring.receiver_qubit)
    circuit.x(wiring.receiver_qubit, condition=(clbit, 1))


class HaradaWireCut(WireCutProtocol):
    """Optimal entanglement-free single-wire cut (κ = 3)."""

    name = "harada"

    def build_terms(self) -> tuple[WireCutTerm, ...]:
        """Construct the three optimal entanglement-free terms."""
        u2 = S @ H
        return (
            WireCutTerm(
                coefficient=1.0,
                channel=_measure_prepare_channel(H),
                label="measure-prepare-X(U1=H)",
                gadget_builder=_basis_1_gadget,
                num_gadget_clbits=1,
                metadata={"basis": "X"},
            ),
            WireCutTerm(
                coefficient=1.0,
                channel=_measure_prepare_channel(u2),
                label="measure-prepare-Y(U2=SH)",
                gadget_builder=_basis_2_gadget,
                num_gadget_clbits=1,
                metadata={"basis": "Y"},
            ),
            WireCutTerm(
                coefficient=-1.0,
                channel=_flip_prepare_channel(),
                label="measure-flip-prepare-Z",
                gadget_builder=_flip_gadget,
                num_gadget_clbits=1,
                metadata={"basis": "Z", "flip": True},
            ),
        )

    def theoretical_overhead(self) -> float:
        """Return the Harada cut's κ = 3."""
        return harada_overhead()
