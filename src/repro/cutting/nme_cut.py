"""The paper's NME wire cut (Theorem 2 / Figure 5) — the core contribution.

For a pure non-maximally entangled resource ``|Φ_k⟩`` the one-qubit identity
decomposes as

.. math::

    I(\\cdot) = \\frac{k^2+1}{(k+1)^2} \\sum_{i\\in\\{1,2\\}}
        U_i\\, E^{\\Phi_k}_{tel}\\!\\left(U_i^\\dagger (\\cdot) U_i\\right) U_i^\\dagger
    \\;-\\; \\frac{(k-1)^2}{(k+1)^2} \\sum_{j\\in\\{0,1\\}}
        \\mathrm{Tr}\\!\\left[|j\\rangle\\langle j|(\\cdot)\\right] X|j\\rangle\\langle j|X,

with ``U_1 = H``, ``U_2 = SH`` and the teleportation channel
``E^{Φ_k}_{tel}`` of Eq. 22.  The overhead is
``κ = 2a + b = 4(k²+1)/(k+1)² − 1`` (Corollary 1), interpolating between the
optimal entanglement-free cut (κ = 3 at k = 0) and plain teleportation
(κ = 1 at k = 1).

Each teleportation term's gadget is the literal circuit of Figure 5: the
basis change ``U_i†`` on the sender, an in-line preparation of ``|Φ_k⟩`` on
(ancilla, receiver), the Bell measurement with classical feed-forward, and
the inverse basis change ``U_i`` on the receiver.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CuttingError
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.base import GadgetWiring, WireCutProtocol, WireCutTerm
from repro.cutting.overhead import nme_overhead
from repro.cutting.standard_cut import _flip_gadget, _flip_prepare_channel
from repro.quantum.bell import k_from_overlap, overlap_from_k
from repro.quantum.channels import QuantumChannel
from repro.quantum.gates import H, S
from repro.teleport.protocol import bell_measurement, prepare_phi_k, teleportation_corrections

__all__ = ["NMEWireCut", "nme_coefficients"]


def nme_coefficients(k: float) -> tuple[float, float]:
    """Return the Theorem-2 coefficients ``(a, b)`` for resource parameter ``k``.

    ``a = (k²+1)/(k+1)²`` weights each teleportation term, ``b = (k−1)²/(k+1)²``
    weights the (subtracted) measure-and-flip-prepare term.
    """
    if k < 0:
        raise CuttingError(f"k must be non-negative, got {k}")
    denominator = (k + 1.0) ** 2
    if denominator == 0.0:
        raise CuttingError("k = -1 is not a valid resource parameter")
    a = (k * k + 1.0) / denominator
    b = (k - 1.0) ** 2 / denominator
    return float(a), float(b)


def _teleport_term_channel(k: float, basis_unitary: np.ndarray) -> QuantumChannel:
    """Analytic channel ``U_i E_tel^{Φ_k}(U_i† · U_i) U_i†`` of a teleportation term."""
    p_identity = overlap_from_k(k)
    p_z = 1.0 - p_identity
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    kraus = [np.sqrt(p_identity) * np.eye(2, dtype=complex)]
    if p_z > 1e-15:
        kraus.append(np.sqrt(p_z) * (basis_unitary @ z @ basis_unitary.conj().T))
    return QuantumChannel(kraus)


def _make_teleport_gadget(k: float, basis_label: str):
    """Return the gadget builder for one teleportation term of Theorem 2.

    ``basis_label`` is ``"U1"`` (H) or ``"U2"`` (SH).
    """

    def gadget(circuit: QuantumCircuit, wiring: GadgetWiring) -> None:
        """Append the Theorem-2 teleportation gadget at the wired qubits."""
        if len(wiring.ancilla_qubits) != 1:
            raise CuttingError("the NME teleportation gadget needs exactly one ancilla qubit")
        sender = wiring.sender_qubit
        ancilla = wiring.ancilla_qubits[0]
        receiver = wiring.receiver_qubit
        clbit_a = wiring.clbit(0)
        clbit_b = wiring.clbit(1)

        # Basis change U_i† on the sender (Figure 5, left of each teleport box).
        if basis_label == "U1":
            circuit.h(sender)
        else:
            circuit.sdg(sender)
            circuit.h(sender)

        # Pre-shared NME pair |Φ_k> on (ancilla, receiver), then teleport.
        prepare_phi_k(circuit, k, ancilla, receiver)
        bell_measurement(circuit, sender, ancilla, clbit_a, clbit_b)
        teleportation_corrections(circuit, receiver, clbit_a, clbit_b)

        # Inverse basis change U_i on the receiver.
        if basis_label == "U1":
            circuit.h(receiver)
        else:
            circuit.h(receiver)
            circuit.s(receiver)

    return gadget


class NMEWireCut(WireCutProtocol):
    """Theorem-2 wire cut using pure NME resource states ``|Φ_k⟩``.

    Parameters
    ----------
    k:
        Schmidt-ratio parameter of the resource state, ``k ∈ [0, ∞)``.
        ``k = 0`` reduces to an entanglement-free cut with κ = 3; ``k = 1``
        is plain teleportation with κ = 1.
    """

    name = "nme"

    def __init__(self, k: float):
        super().__init__()
        if k < 0:
            raise CuttingError(f"k must be non-negative, got {k}")
        self.k = float(k)

    @classmethod
    def from_overlap(cls, f: float, branch: str = "lower") -> "NMEWireCut":
        """Construct the protocol from a target entanglement level ``f(Φ_k) = f``."""
        return cls(k_from_overlap(f, branch=branch))

    @property
    def overlap(self) -> float:
        """The resource state's entanglement ``f(Φ_k)``."""
        return overlap_from_k(self.k)

    @property
    def coefficients_ab(self) -> tuple[float, float]:
        """The Theorem-2 coefficients ``(a, b)``."""
        return nme_coefficients(self.k)

    def build_terms(self) -> tuple[WireCutTerm, ...]:
        """Construct the four Theorem-2 terms (two teleport, two measure-prepare)."""
        a, b = nme_coefficients(self.k)
        u2 = S @ H
        terms = [
            WireCutTerm(
                coefficient=a,
                channel=_teleport_term_channel(self.k, H),
                label="teleport-U1(H)",
                gadget_builder=_make_teleport_gadget(self.k, "U1"),
                num_ancilla_qubits=1,
                num_gadget_clbits=2,
                consumes_entangled_pair=True,
                metadata={"k": self.k, "basis": "U1"},
            ),
            WireCutTerm(
                coefficient=a,
                channel=_teleport_term_channel(self.k, u2),
                label="teleport-U2(SH)",
                gadget_builder=_make_teleport_gadget(self.k, "U2"),
                num_ancilla_qubits=1,
                num_gadget_clbits=2,
                consumes_entangled_pair=True,
                metadata={"k": self.k, "basis": "U2"},
            ),
        ]
        # The correction term vanishes identically at k = 1 (b = 0); keep it
        # out of the decomposition there so sampling never wastes shots on a
        # zero-weight term.
        if b > 1e-15:
            terms.append(
                WireCutTerm(
                    coefficient=-b,
                    channel=_flip_prepare_channel(),
                    label="measure-flip-prepare-Z",
                    gadget_builder=_flip_gadget,
                    num_gadget_clbits=1,
                    metadata={"k": self.k, "basis": "Z", "flip": True},
                )
            )
        return tuple(terms)

    def theoretical_overhead(self) -> float:
        """Return Corollary 1's κ = (3k² − 2k + 3)/(1 + k)²."""
        return nme_overhead(self.k)

    def expected_pairs_per_shot(self) -> float:
        """Expected entangled pairs consumed per sampled shot (coefficient-proportional sampling)."""
        a, _ = nme_coefficients(self.k)
        return float(2.0 * a / self.kappa)
