"""Sampling-overhead formulas (Theorem 1, Corollary 1 and the baselines).

These closed forms are the paper's headline analytic results.  They are used
by the protocol classes to cross-check the κ of their explicit QPDs, by the
benchmarks that regenerate the overhead-versus-entanglement relation, and by
tests that pin the endpoints (3 for no entanglement, 1 for maximal
entanglement).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CuttingError
from repro.quantum.bell import overlap_from_k
from repro.quantum.entanglement import maximal_overlap
from repro.quantum.states import DensityMatrix, Statevector

__all__ = [
    "optimal_overhead",
    "optimal_overhead_for_state",
    "nme_overhead",
    "harada_overhead",
    "peng_overhead",
    "teleportation_overhead",
    "shots_multiplier",
    "expected_pairs_per_shot",
    "pairs_proportionality_constant",
    "multi_wire_joint_overhead",
    "multi_wire_independent_overhead",
]


def optimal_overhead(f: float) -> float:
    """Theorem 1: optimal single-wire-cut overhead ``γ^ρ(I) = 2/f(ρ) − 1``.

    Parameters
    ----------
    f:
        The maximal LOCC overlap of the resource state with the maximally
        entangled state, in ``[1/2, 1]``.
    """
    if not 0.5 <= f <= 1.0 + 1e-12:
        raise CuttingError(f"overlap f must be in [0.5, 1.0], got {f}")
    return float(2.0 / f - 1.0)


def optimal_overhead_for_state(resource: DensityMatrix | Statevector | np.ndarray) -> float:
    """Theorem 1 evaluated on an explicit two-qubit resource state."""
    return optimal_overhead(maximal_overlap(resource))


def nme_overhead(k: float) -> float:
    """Corollary 1: ``γ^{Φ_k}(I) = 4(k²+1)/(k+1)² − 1`` for the pure NME state ``Φ_k``."""
    if k < 0:
        raise CuttingError(f"k must be non-negative, got {k}")
    if k == 0:
        return 3.0
    return float(4.0 * (k * k + 1.0) / (k + 1.0) ** 2 - 1.0)


def harada_overhead() -> float:
    """Optimal entanglement-free single-wire-cut overhead, ``γ(I) = 3`` [11, 26]."""
    return 3.0


def peng_overhead() -> float:
    """Overhead of the original Peng et al. wire cut (Pauli-basis measure-and-prepare), κ = 4."""
    return 4.0


def teleportation_overhead() -> float:
    """Overhead of plain teleportation with a maximally entangled pair, κ = 1 (no overhead)."""
    return 1.0


def shots_multiplier(kappa: float) -> float:
    """Return the multiplicative shot overhead ``κ²`` for a fixed target accuracy ε.

    Estimating an expectation value to additive error ε needs
    ``O(κ²/ε²)`` shots (Eq. 12 discussion / [25]).
    """
    if kappa < 1.0 - 1e-12:
        raise CuttingError(f"kappa must be >= 1 for a TP target channel, got {kappa}")
    return float(kappa * kappa)


def pairs_proportionality_constant(k: float) -> float:
    """Return ``2(k²+1)/(k+1)² = ⟨Φ|Φ_k|Φ⟩⁻¹`` (end of Section III).

    The paper states that the number of entangled pairs consumed when
    sampling the Theorem-2 QPD is proportional to this quantity: it is twice
    the coefficient ``a`` of the two teleportation terms, and decreases
    towards 1 as the resource approaches maximal entanglement.
    """
    if k < 0:
        raise CuttingError(f"k must be non-negative, got {k}")
    return float(2.0 * (k * k + 1.0) / (k + 1.0) ** 2)


def expected_pairs_per_shot(k: float) -> float:
    """Return the expected number of entangled pairs consumed per sampled shot.

    With coefficient-proportional sampling, a shot lands on one of the two
    teleportation terms with probability ``2a/κ`` and consumes exactly one
    pair there (the measure-and-prepare term consumes none), so the
    expectation is ``2a/κ`` with ``a = (k²+1)/(k+1)²`` and ``κ`` from
    Corollary 1.
    """
    two_a = pairs_proportionality_constant(k)
    return float(two_a / nme_overhead(k))


def multi_wire_joint_overhead(num_wires: int) -> float:
    """Optimal overhead for cutting ``n`` wires *jointly* without entanglement: ``2^{n+1} − 1`` [11]."""
    if num_wires < 1:
        raise CuttingError(f"num_wires must be >= 1, got {num_wires}")
    return float(2 ** (num_wires + 1) - 1)


def multi_wire_independent_overhead(num_wires: int, single_wire_kappa: float = 3.0) -> float:
    """Overhead of cutting ``n`` wires independently: ``κ_single^n`` (3ⁿ without entanglement)."""
    if num_wires < 1:
        raise CuttingError(f"num_wires must be >= 1, got {num_wires}")
    return float(single_wire_kappa**num_wires)


def overhead_reduction_factor(k: float) -> float:
    """Return the shot-count reduction ``(γ(I)/γ^{Φ_k}(I))²`` of the NME cut over the plain cut."""
    return float((harada_overhead() / nme_overhead(k)) ** 2)


def k_for_target_overhead(target_kappa: float) -> float:
    """Invert Corollary 1: return the ``k ≤ 1`` whose NME cut attains ``target_kappa``.

    Only overheads in ``[1, 3]`` are attainable with pure NME states.
    """
    if not 1.0 <= target_kappa <= 3.0:
        raise CuttingError(f"target overhead must be in [1, 3], got {target_kappa}")
    # κ = 2/f − 1  ⇒  f = 2/(κ+1); then invert f(Φ_k).
    f = 2.0 / (target_kappa + 1.0)
    from repro.quantum.bell import k_from_overlap

    return float(k_from_overlap(f, branch="lower"))


def overlap_for_target_overhead(target_kappa: float) -> float:
    """Return the entanglement ``f`` required for a target overhead (inverse of Theorem 1)."""
    if target_kappa < 1.0:
        raise CuttingError(f"target overhead must be >= 1, got {target_kappa}")
    f = 2.0 / (target_kappa + 1.0)
    if f > 1.0 or f < 0.5 - 1e-12:
        raise CuttingError(
            f"target overhead {target_kappa} is outside the attainable range [1, 3]"
        )
    return float(min(f, 1.0))


# The full public surface, including the inverses defined below their forward
# counterparts, is re-exported here for `from repro.cutting.overhead import *`.
__all__ += ["overhead_reduction_factor", "k_for_target_overhead", "overlap_for_target_overhead"]

# `overlap_from_k` is re-exported for convenience of benchmark scripts.
__all__ += ["overlap_from_k"]
