"""Command-line entry point: ``python -m repro.cli <command>``.

Exposes the experiment harness without writing any Python:

* ``figure6`` — regenerate the paper's Figure 6 sweep (optionally at full
  paper scale) and write the table to CSV.
* ``overhead`` — print the Theorem-1 / Corollary-1 overhead table.
* ``protocols`` — print the κ comparison of all implemented protocols.
* ``resources`` — print the entangled-pair consumption table.
* ``ablations`` — run the allocation / gate-vs-wire / multi-cut /
  noisy-resource ablations.
* ``cut run`` — plan and execute a multi-cut :class:`~repro.pipeline.CutPipeline`
  on a chosen workload under a device-width constraint (``--devices spec.json``
  runs the term circuits on a noisy :class:`~repro.devices.DeviceFleet`;
  ``--store DIR`` persists/reuses stage artifacts through a
  :class:`~repro.service.RunStore`; ``--mode adaptive --target-error ε``
  switches to round-structured execution with early stopping).
* ``cut demo`` — cut a demo GHZ circuit and report the estimate per protocol.
* ``devices list`` — show a fleet spec's devices, noise rates and shot shares.
* ``serve`` — run the HTTP/JSON job service (:mod:`repro.service.server`).
* ``jobs submit|status|result|list`` — fire-and-forget job submission against
  a running ``repro serve`` endpoint.
* ``trace show`` — render a stored run's span tree (and, with ``--profile``,
  its per-stage cProfile summary) from a run-store directory.

Global flags: ``--log-level`` / ``--json-logs`` configure the shared
``repro`` logger (progress goes to stderr; data output stays on stdout).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.utils.logging import LOG_LEVELS, configure_logging, get_logger

__all__ = ["main", "build_parser"]

#: Progress/diagnostic channel for every CLI command (stderr, never stdout).
_LOG = get_logger("cli")

#: Names accepted by ``--backend`` (kept in sync with repro.circuits.backends).
_BACKEND_CHOICES = ("serial", "vectorized", "process-pool")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Cutting a Wire with Non-Maximally Entangled States'",
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the progress/diagnostic log on stderr",
    )
    parser.add_argument(
        "--json-logs",
        action="store_true",
        help="emit one JSON object per log record instead of human-readable lines",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure6 = subparsers.add_parser("figure6", help="run the Figure-6 error-vs-shots sweep")
    figure6.add_argument("--paper", action="store_true", help="full paper-scale configuration")
    figure6.add_argument("--states", type=int, default=None, help="override the number of random states")
    figure6.add_argument("--seed", type=int, default=2024)
    figure6.add_argument("--csv", type=str, default=None, help="write the result table to this CSV path")
    figure6.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default="vectorized",
        help="execution backend for the term-circuit simulations",
    )
    figure6.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="run-store directory; a previously stored sweep with the same "
        "configuration is served from the store instead of re-running",
    )

    overhead = subparsers.add_parser("overhead", help="print the overhead-vs-entanglement table")
    overhead.add_argument("--csv", type=str, default=None)

    subparsers.add_parser("protocols", help="print the protocol κ comparison table")

    subparsers.add_parser("resources", help="print the entangled-pair consumption table")

    ablations = subparsers.add_parser("ablations", help="run the ablation experiments")
    ablations.add_argument("--states", type=int, default=20)
    ablations.add_argument("--shots", type=int, default=2000)
    ablations.add_argument("--seed", type=int, default=11)
    ablations.add_argument(
        "--noise-levels",
        type=float,
        nargs="+",
        default=None,
        help="depolarising strengths for the noisy-resource ablation (each in [0, 1])",
    )
    ablations.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="run-store directory; ablation tables already stored for this "
        "configuration are reused instead of re-running",
    )

    cut = subparsers.add_parser("cut", help="cut circuits (pipeline runner and demo)")
    cut_commands = cut.add_subparsers(dest="cut_command", required=True)

    cut_run = cut_commands.add_parser(
        "run", help="plan and execute a multi-cut pipeline on a workload circuit"
    )
    cut_run.add_argument(
        "--workload",
        choices=("ghz", "random"),
        default="ghz",
        help="circuit family: GHZ preparation or a random layered circuit",
    )
    cut_run.add_argument("--qubits", type=int, default=4)
    cut_run.add_argument("--depth", type=int, default=2, help="depth of the random workload")
    cut_run.add_argument(
        "--width", type=int, default=3, help="maximum fragment width (device size)"
    )
    cut_run.add_argument("--shots", type=int, default=4000)
    cut_run.add_argument(
        "--mode",
        choices=("static", "adaptive"),
        default="static",
        help="shot execution: one up-front allocation (static) or the "
        "round-structured engine with early stopping (adaptive)",
    )
    cut_run.add_argument(
        "--target-error",
        type=float,
        default=None,
        help="adaptive mode: stop when the pooled standard error reaches this value",
    )
    cut_run.add_argument(
        "--max-shots",
        type=int,
        default=None,
        help="adaptive mode: hard shot ceiling (defaults to --shots)",
    )
    cut_run.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="adaptive mode: execution-round limit (default 12)",
    )
    cut_run.add_argument(
        "--overlap",
        type=float,
        default=None,
        help="entanglement f(Φ_k); omit for the entanglement-free κ=3 cut",
    )
    cut_run.add_argument(
        "--allocation",
        choices=("proportional", "multinomial", "uniform"),
        default=None,
        help="static mode's shot-allocation strategy (default proportional); "
        "adaptive mode plans rounds instead and rejects this flag",
    )
    cut_run.add_argument("--max-cuts", type=int, default=None)
    cut_run.add_argument("--seed", type=int, default=7)
    cut_run.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default="vectorized",
        help="execution backend for the term-circuit batches "
        "(with --devices: the ideal backend each virtual device wraps)",
    )
    cut_run.add_argument(
        "--devices",
        type=str,
        default=None,
        metavar="SPEC.json",
        help="run the term circuits on the noisy device fleet described by this JSON spec",
    )
    cut_run.add_argument(
        "--split",
        choices=("uniform", "capacity", "fidelity"),
        default=None,
        help="override the fleet spec's shot-split policy (requires --devices)",
    )
    cut_run.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="run-store directory: persist every stage artifact and serve "
        "repeated identical runs from the store (resuming interrupted ones)",
    )
    cut_run.add_argument(
        "--dedup",
        action="store_true",
        help="evaluate each unique (fragment, basis-config) subcircuit instance "
        "once and share it across all QPD terms (falls back to the per-term "
        "path when the plan does not factorise; incompatible with --devices)",
    )
    cut_run.add_argument(
        "--execution",
        choices=("inprocess", "distributed"),
        default="inprocess",
        help="adaptive mode's round execution: in the CLI process, or fanned "
        "out over the multi-process work-stealing pool (bitwise identical "
        "results either way)",
    )
    cut_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-process count for --execution distributed (default 2)",
    )
    cut_run.add_argument(
        "--profile",
        action="store_true",
        help="capture a per-stage cProfile summary and print it after the run "
        "(with --store: also persisted as a telemetry artifact next to the trace)",
    )

    cut_demo = cut_commands.add_parser(
        "demo", help="cut a GHZ demo circuit and compare protocols"
    )
    cut_demo.add_argument("--qubits", type=int, default=4)
    cut_demo.add_argument("--shots", type=int, default=4000)
    cut_demo.add_argument(
        "--overlap", type=float, default=0.9, help="entanglement f(Φ_k) of the NME protocol"
    )
    cut_demo.add_argument("--seed", type=int, default=7)
    cut_demo.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default="serial",
        help="execution backend for the term-circuit sampling",
    )

    devices = subparsers.add_parser(
        "devices", help="inspect noisy virtual-device fleets"
    )
    devices_commands = devices.add_subparsers(dest="devices_command", required=True)
    devices_list = devices_commands.add_parser(
        "list", help="show a fleet spec's devices, noise rates and shot shares"
    )
    devices_list.add_argument(
        "--devices",
        type=str,
        default=None,
        metavar="SPEC.json",
        help="fleet spec to show; omit for the built-in 3-device example",
    )
    devices_list.add_argument(
        "--split",
        choices=("uniform", "capacity", "fidelity"),
        default=None,
        help="override the spec's shot-split policy",
    )
    devices_list.add_argument(
        "--shots", type=int, default=1000, help="budget used for the example shot shares"
    )
    devices_list.add_argument(
        "--qubits", type=int, default=4, help="circuit width used for the example shot shares"
    )

    serve = subparsers.add_parser(
        "serve", help="run the HTTP/JSON job service (persistent store + worker pool)"
    )
    serve.add_argument("--host", type=str, default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--workers", type=int, default=2, help="worker-pool size (must be positive)"
    )
    serve.add_argument(
        "--mode",
        choices=("thread", "process"),
        default="thread",
        help="worker-pool mode: threads share the distribution cache, processes "
        "maximise CPU-bound throughput",
    )
    serve.add_argument(
        "--store",
        type=str,
        default=None,
        metavar="DIR",
        help="run-store directory for durable artifacts and result reuse",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-tenant submission rate limit in jobs/second (default: unlimited)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=None,
        help="per-tenant burst capacity of the rate limiter (default: max(rate, 1))",
    )
    serve.add_argument(
        "--max-active",
        type=int,
        default=None,
        help="per-tenant cap on queued+running jobs (default: unlimited)",
    )

    jobs = subparsers.add_parser(
        "jobs", help="submit and inspect jobs on a running `repro serve` endpoint"
    )
    jobs_commands = jobs.add_subparsers(dest="jobs_command", required=True)

    jobs_submit = jobs_commands.add_parser(
        "submit", help="submit a cut-estimation job (fire-and-forget unless --wait)"
    )
    jobs_submit.add_argument("--url", type=str, default="http://127.0.0.1:8765")
    jobs_submit.add_argument("--workload", choices=("ghz", "random"), default="ghz")
    jobs_submit.add_argument("--qubits", type=int, default=4)
    jobs_submit.add_argument("--depth", type=int, default=2, help="depth of the random workload")
    jobs_submit.add_argument(
        "--width", type=int, default=3, help="maximum fragment width (device size)"
    )
    jobs_submit.add_argument("--shots", type=int, default=4000)
    jobs_submit.add_argument(
        "--mode",
        choices=("static", "adaptive"),
        default="static",
        help="shot execution mode of the submitted job",
    )
    jobs_submit.add_argument(
        "--target-error",
        type=float,
        default=None,
        help="adaptive mode: stop when the pooled standard error reaches this value",
    )
    jobs_submit.add_argument(
        "--max-shots",
        type=int,
        default=None,
        help="adaptive mode: hard shot ceiling (defaults to --shots)",
    )
    jobs_submit.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="adaptive mode: execution-round limit (default 12)",
    )
    jobs_submit.add_argument("--overlap", type=float, default=None)
    jobs_submit.add_argument(
        "--allocation",
        choices=("proportional", "multinomial", "uniform"),
        default=None,
        help="static mode's shot-allocation strategy (default proportional); "
        "adaptive mode plans rounds instead and rejects this flag",
    )
    jobs_submit.add_argument("--max-cuts", type=int, default=None)
    jobs_submit.add_argument("--seed", type=int, default=7)
    jobs_submit.add_argument("--backend", choices=_BACKEND_CHOICES, default="vectorized")
    jobs_submit.add_argument(
        "--devices",
        type=str,
        default=None,
        metavar="SPEC.json",
        help="run the job's term circuits on this noisy device fleet",
    )
    jobs_submit.add_argument(
        "--split",
        choices=("uniform", "capacity", "fidelity"),
        default=None,
        help="override the fleet spec's shot-split policy (requires --devices)",
    )
    jobs_submit.add_argument(
        "--dedup",
        action="store_true",
        help="request instance-dedup execution (shared subcircuit instances; "
        "incompatible with --devices)",
    )
    jobs_submit.add_argument(
        "--wait", action="store_true", help="poll until the job finishes and print the result"
    )
    jobs_submit.add_argument(
        "--timeout", type=float, default=300.0, help="--wait polling timeout in seconds"
    )
    jobs_submit.add_argument(
        "--tenant",
        type=str,
        default=None,
        help="tenant identity for per-tenant rate limits and quotas",
    )

    jobs_status = jobs_commands.add_parser("status", help="print one job's state")
    jobs_status.add_argument("job_id", type=str)
    jobs_status.add_argument("--url", type=str, default="http://127.0.0.1:8765")

    jobs_result = jobs_commands.add_parser(
        "result", help="wait for one job and print its result"
    )
    jobs_result.add_argument("job_id", type=str)
    jobs_result.add_argument("--url", type=str, default="http://127.0.0.1:8765")
    jobs_result.add_argument("--timeout", type=float, default=300.0)

    jobs_list = jobs_commands.add_parser("list", help="list jobs the service knows about")
    jobs_list.add_argument("--url", type=str, default="http://127.0.0.1:8765")
    jobs_list.add_argument("--limit", type=int, default=None, help="page size (default: all)")
    jobs_list.add_argument("--offset", type=int, default=0, help="rows to skip")
    jobs_list.add_argument(
        "--state",
        choices=("queued", "running", "done", "failed"),
        default=None,
        help="only jobs in this state",
    )

    jobs_watch = jobs_commands.add_parser(
        "watch", help="stream a job's adaptive rounds live (SSE) until it settles"
    )
    jobs_watch.add_argument("job_id", type=str)
    jobs_watch.add_argument("--url", type=str, default="http://127.0.0.1:8765")
    jobs_watch.add_argument(
        "--after",
        type=int,
        default=-1,
        help="resume past this round index (default: stream from the start)",
    )

    store_parser = subparsers.add_parser(
        "store", help="inspect and migrate a run-store directory"
    )
    store_commands = store_parser.add_subparsers(dest="store_command", required=True)

    store_list = store_commands.add_parser("list", help="list the runs persisted in a store")
    store_list.add_argument("path", type=str, metavar="DIR")
    store_list.add_argument("--limit", type=int, default=None, help="page size (default: all)")
    store_list.add_argument("--offset", type=int, default=0, help="rows to skip")
    store_list.add_argument(
        "--stage",
        choices=("plan", "rounds", "execution", "result"),
        default=None,
        help="only runs that completed this stage",
    )

    store_migrate = store_commands.add_parser(
        "migrate", help="ingest a legacy per-file store layout into the SQLite index"
    )
    store_migrate.add_argument("path", type=str, metavar="DIR")
    store_migrate.add_argument(
        "--remove",
        action="store_true",
        help="delete the legacy files after a successful migration",
    )

    trace = subparsers.add_parser(
        "trace", help="inspect telemetry persisted in a run store"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_show = trace_commands.add_parser(
        "show", help="render one run's span tree with per-span wall and self times"
    )
    trace_show.add_argument(
        "fingerprint",
        type=str,
        help="run fingerprint (or job ID, for traces persisted by the service scheduler)",
    )
    trace_show.add_argument(
        "--store", type=str, required=True, metavar="DIR", help="run-store directory"
    )
    trace_show.add_argument(
        "--profile",
        action="store_true",
        help="also render the stored per-stage cProfile summary, when present",
    )

    return parser


def _open_store(path: str | None):
    """Return a :class:`~repro.service.RunStore` for ``path`` (``None`` passes through)."""
    if path is None:
        return None
    from repro.service import RunStore

    return RunStore(path)


def _command_figure6(args: argparse.Namespace) -> int:
    from repro.experiments import (
        Figure6Config,
        run_figure6,
        table_from_payload,
        table_to_payload,
        write_csv,
    )

    config = Figure6Config.paper() if args.paper else Figure6Config(seed=args.seed)
    config = Figure6Config(
        num_states=args.states if args.states is not None else config.num_states,
        shot_grid=config.shot_grid,
        overlaps=config.overlaps,
        allocation=config.allocation,
        seed=args.seed,
        backend=args.backend,
    )
    store = _open_store(args.store)
    table = None
    if store is not None:
        cached = store.get_artifact(config.fingerprint())
        if cached is not None:
            table = table_from_payload(cached)
            _LOG.info("served from store %s, key %s", args.store, config.fingerprint())
    if table is None:
        result = run_figure6(config)
        table = result.to_table()
        if store is not None:
            store.put_artifact(config.fingerprint(), table_to_payload(table))
    print(table.to_text())
    if args.csv:
        print(f"wrote {write_csv(table, Path(args.csv))}")
    return 0


def _command_overhead(args: argparse.Namespace) -> int:
    from repro.experiments import overhead_vs_entanglement, write_csv

    table = overhead_vs_entanglement()
    print(table.to_text())
    if getattr(args, "csv", None):
        print(f"wrote {write_csv(table, Path(args.csv))}")
    return 0


def _command_protocols(_: argparse.Namespace) -> int:
    from repro.experiments import protocol_comparison

    print(protocol_comparison().to_text())
    return 0


def _command_resources(_: argparse.Namespace) -> int:
    from repro.experiments import resource_consumption

    print(resource_consumption().to_text())
    return 0


def _command_ablations(args: argparse.Namespace) -> int:
    from repro.exceptions import CuttingError
    from repro.cutting.noise import validate_noise_strength
    from repro.experiments import (
        allocation_strategy_ablation,
        gate_vs_wire_cut,
        multi_cut_pipeline_ablation,
        noisy_resource_ablation,
        table_from_payload,
        table_to_payload,
    )
    from repro.utils.serialization import payload_fingerprint
    from repro.utils.validation import validate_positive_count

    noise_kwargs = {}
    try:
        validate_positive_count(args.shots, name="--shots")
    except CuttingError as error:
        print(f"invalid --shots: {error}")
        return 1
    if args.noise_levels is not None:
        # Validate every sweep value at the CLI boundary so a bad flag fails
        # before any ablation has run.
        try:
            noise_kwargs["noise_levels"] = tuple(
                validate_noise_strength(p, name="--noise-levels entry")
                for p in args.noise_levels
            )
        except CuttingError as error:
            print(f"invalid --noise-levels: {error}")
            return 1

    store = _open_store(args.store)
    ablation_runs = (
        (
            "allocation",
            lambda: allocation_strategy_ablation(
                num_states=args.states, shots=args.shots, seed=args.seed
            ),
            {"states": args.states, "shots": args.shots, "seed": args.seed},
        ),
        (
            "gate_vs_wire",
            lambda: gate_vs_wire_cut(shots=max(args.shots, 1000), seed=args.seed),
            {"shots": max(args.shots, 1000), "seed": args.seed},
        ),
        (
            "multi_cut",
            lambda: multi_cut_pipeline_ablation(shots=max(args.shots, 1000), seed=args.seed),
            {"shots": max(args.shots, 1000), "seed": args.seed},
        ),
        (
            "noisy_resource",
            lambda: noisy_resource_ablation(**noise_kwargs),
            # Order matters: the table rows follow the argument order, so
            # the cache key must too.
            {"noise_levels": list(noise_kwargs.get("noise_levels", ()))},
        ),
    )
    blocks = []
    for name, run, parameters in ablation_runs:
        table = None
        key = payload_fingerprint({"experiment": "ablations", "table": name, **parameters})
        if store is not None:
            cached = store.get_artifact(key)
            if cached is not None:
                table = table_from_payload(cached)
        if table is None:
            table = run()
            if store is not None:
                store.put_artifact(key, table_to_payload(table))
        blocks.append(table.to_text())
    print("\n\n".join(blocks))
    return 0


def _load_fleet_backend(spec_path: str, inner: str, split: str | None):
    """Build the ``--devices`` fleet, honouring an optional ``--split`` override."""
    from repro.devices import load_fleet

    return load_fleet(spec_path, inner=inner, split=split)


def _command_cut(args: argparse.Namespace) -> int:
    if args.cut_command == "run":
        return _command_cut_run(args)
    return _command_cut_demo(args)


def _workload_circuit(args: argparse.Namespace):
    """Build the workload circuit shared by ``cut run`` and ``jobs submit``."""
    from repro.experiments import ghz_circuit, random_layered_circuit

    if args.workload == "ghz":
        return ghz_circuit(args.qubits)
    return random_layered_circuit(args.qubits, args.depth, seed=args.seed)


def _load_fleet_spec(spec_path: str, split: str | None) -> dict:
    """Load a fleet spec document for embedding into a job payload."""
    import json

    from repro.exceptions import DeviceError

    try:
        spec = json.loads(Path(spec_path).read_text())
    except FileNotFoundError:
        raise DeviceError(f"device spec file not found: {spec_path}") from None
    except json.JSONDecodeError as error:
        raise DeviceError(f"device spec {spec_path} is not valid JSON: {error}") from error
    if split is not None and isinstance(spec, dict):
        spec = {**spec, "split": split}
    return spec


def _validate_mode_arguments(args: argparse.Namespace) -> tuple[int, dict]:
    """Boundary-validate the execution-mode flags; return (budget, execute kwargs).

    Raises :class:`~repro.exceptions.CuttingError` on a bad combination so
    both ``cut run`` and ``jobs submit`` fail before any work happens.
    """
    from repro.exceptions import CuttingError
    from repro.qpd.adaptive import DEFAULT_MAX_ROUNDS
    from repro.utils.validation import validate_positive_count, validate_positive_float

    execution = getattr(args, "execution", "inprocess")
    workers = getattr(args, "workers", None)
    if args.mode == "adaptive":
        if args.target_error is None:
            raise CuttingError("--mode adaptive requires --target-error")
        if args.allocation is not None:
            raise CuttingError(
                "--allocation applies to static mode; adaptive rounds are "
                "planned from the running statistics"
            )
        validate_positive_float(args.target_error, name="--target-error")
        rounds = DEFAULT_MAX_ROUNDS if args.rounds is None else args.rounds
        validate_positive_count(rounds, name="--rounds")
        budget = args.shots if args.max_shots is None else args.max_shots
        validate_positive_count(budget, name="--max-shots")
        mode_kwargs = {
            "mode": "adaptive",
            "target_error": args.target_error,
            "rounds": rounds,
        }
        if execution == "distributed":
            if getattr(args, "dedup", False):
                raise CuttingError(
                    "--dedup cannot distribute (the instance fast path draws "
                    "terms from one sequential stream); drop one of the flags"
                )
            mode_kwargs["execution"] = "distributed"
            if workers is not None:
                validate_positive_count(workers, name="--workers")
                mode_kwargs["workers"] = workers
        elif workers is not None:
            raise CuttingError("--workers requires --execution distributed")
        return budget, mode_kwargs
    if args.target_error is not None:
        raise CuttingError("--target-error requires --mode adaptive")
    if args.max_shots is not None:
        raise CuttingError("--max-shots requires --mode adaptive")
    if args.rounds is not None:
        raise CuttingError("--rounds requires --mode adaptive")
    if execution == "distributed":
        raise CuttingError("--execution distributed requires --mode adaptive")
    if workers is not None:
        raise CuttingError("--workers requires --execution distributed")
    return args.shots, {}


def _command_cut_run(args: argparse.Namespace) -> int:
    from repro.exceptions import CuttingError
    from repro.utils.validation import validate_positive_count

    try:
        validate_positive_count(args.shots, name="--shots")
        budget, mode_kwargs = _validate_mode_arguments(args)
    except CuttingError as error:
        print(f"invalid arguments: {error}")
        return 1
    circuit = _workload_circuit(args)
    observable = "Z" * args.qubits

    if args.split is not None and args.devices is None:
        print("--split requires --devices")
        return 1
    if args.dedup and args.devices is not None:
        print("--dedup requires an ideal simulator backend; drop --devices")
        return 1
    if args.store is not None:
        return _cut_run_stored(args, circuit, observable, budget, mode_kwargs)

    from repro.telemetry.profiling import StageProfiler, activate_profiler

    profiler = StageProfiler() if args.profile else None
    with activate_profiler(profiler):
        code = _cut_run_pipeline(args, circuit, observable, budget, mode_kwargs)
    if code == 0 and profiler is not None:
        print(profiler.render())
    return code


def _cut_run_pipeline(
    args: argparse.Namespace, circuit, observable: str, budget: int, mode_kwargs: dict
) -> int:
    """``cut run`` without a store: drive the pipeline stage by stage."""
    from repro.exceptions import CuttingError, DeviceError
    from repro.pipeline import CutPipeline

    backend = args.backend
    if args.devices is not None:
        try:
            backend = _load_fleet_backend(args.devices, args.backend, args.split)
        except DeviceError as error:
            print(f"invalid device spec: {error}")
            return 1

    try:
        pipeline = CutPipeline(
            max_fragment_width=args.width,
            entanglement_overlap=args.overlap,
            backend=backend,
            allocation=args.allocation or "proportional",
            max_cuts=args.max_cuts,
            dedup="auto" if args.dedup else False,
        )
        plan_result = pipeline.plan(circuit)
    except CuttingError as error:
        print(f"planning failed: {error}")
        return 1
    plan = plan_result.plan
    cuts = [(loc.qubit, loc.position) for loc in plan.locations]
    widths = [fragment.width for fragment in plan.fragments]
    print(
        f"workload: {args.workload}({args.qubits}) — {len(circuit)} instructions, "
        f"device width {args.width}"
    )
    print(
        f"plan: slices={list(plan.positions)} cuts={cuts} fragment widths={widths} "
        f"({len(plan_result.alternatives)} valid plans considered)"
    )
    decomposition = pipeline.decompose(plan_result)
    print(
        f"decomposition: {decomposition.num_terms} product terms, "
        f"kappa={decomposition.kappa:.3f} (shot overhead kappa^2={decomposition.kappa**2:.2f})"
    )
    def on_round(record, summary) -> None:
        stderr = summary.get("current_stderr")
        stderr_text = "inf" if stderr is None else f"{stderr:.4f}"
        _LOG.info(
            "round %d: +%d shots (total %d), stderr %s (target %.4f)",
            record.index + 1,
            record.total_shots,
            summary["shots_spent"],
            stderr_text,
            summary["target_error"],
        )

    try:
        execution = pipeline.execute(
            decomposition,
            observable,
            shots=budget,
            seed=args.seed,
            on_round=on_round,
            **mode_kwargs,
        )
    except DeviceError as error:
        # Term circuits grow wider than the original (cut gadgets add a
        # receiver + ancilla qubit per cut), so a fleet can reject them even
        # though planning succeeded.
        print(f"fleet execution failed: {error}")
        return 1
    result = pipeline.reconstruct(execution)
    pairs = f", consuming {execution.entangled_pairs} entangled pairs" if args.overlap else ""
    adaptive_note = ""
    if execution.mode == "adaptive":
        outcome = "converged" if execution.converged else "budget exhausted"
        adaptive_note = f" in {len(execution.rounds)} adaptive rounds ({outcome})"
        if getattr(args, "execution", "inprocess") == "distributed":
            adaptive_note += f", distributed over {args.workers or 2} workers"
    print(
        f"execute: {result.total_shots} shots over {len(execution.shots_per_term)} terms "
        f"on the {execution.backend_name} backend{adaptive_note}{pairs}"
    )
    if execution.instance_stats is not None:
        stats = execution.instance_stats
        print(
            f"dedup: {stats.num_instances} unique subcircuit instances served "
            f"{stats.num_references} fragment evaluations "
            f"({stats.dedup_ratio:.1f}x reuse across {stats.num_terms} terms)"
        )
    elif args.dedup:
        print("dedup: requested but the plan does not factorise; per-term path used")
    print(
        f"reconstruct: <{observable}> = {result.value:.4f} ± {result.standard_error:.4f} "
        f"(exact {result.exact_value:.4f}, error {result.error:.4f})"
    )
    return 0


def _cut_run_stored(
    args: argparse.Namespace, circuit, observable: str, budget: int, mode_kwargs: dict
) -> int:
    """``cut run --store``: run through the run store (cache / resume / persist)."""
    from repro.exceptions import ReproError
    from repro.service import JobSpec, run_job

    try:
        fleet = None
        if args.devices is not None:
            fleet = _load_fleet_spec(args.devices, args.split)
        spec = JobSpec(
            circuit=circuit,
            observable=observable,
            shots=budget,
            seed=args.seed,
            max_fragment_width=args.width,
            entanglement_overlap=args.overlap,
            allocation=args.allocation or "proportional",
            max_cuts=args.max_cuts,
            backend=args.backend,
            fleet=fleet,
            dedup=args.dedup,
            **mode_kwargs,
        )
        store = _open_store(args.store)
        outcome = run_job(spec, store=store, profile=args.profile)
    except ReproError as error:
        print(f"stored run failed: {error}")
        return 1
    provenance = "cache hit (no re-execution)" if outcome.cached else (
        f"resumed from stored {outcome.resumed_from} stage"
        if outcome.resumed_from
        else "fresh run (artifacts persisted)"
    )
    print(f"run {outcome.fingerprint} in store {args.store}: {provenance}")
    _LOG.info(
        "trace persisted: repro trace show %s --store %s", outcome.fingerprint, args.store
    )
    if args.profile:
        from repro.telemetry.profiling import render_profile

        profile_payload = store.get_profile(outcome.fingerprint)
        if profile_payload is None:
            _LOG.warning("no stored profile for this run (cache hits never re-profile)")
        else:
            print(render_profile(profile_payload))
    adaptive_note = ""
    if outcome.mode == "adaptive":
        state = "converged" if outcome.converged else "budget exhausted"
        adaptive_note = f", {outcome.rounds_completed} rounds ({state})"
    print(
        f"<{observable}> = {outcome.value:.4f} ± {outcome.standard_error:.4f} "
        f"({outcome.total_shots} shots, kappa={outcome.kappa:.3f}, "
        f"exact {outcome.exact_value:.4f}, error {outcome.error:.4f}{adaptive_note})"
    )
    return 0


def _command_cut_demo(args: argparse.Namespace) -> int:
    from repro.cutting import (
        CutLocation,
        HaradaWireCut,
        NMEWireCut,
        PengWireCut,
        TeleportationWireCut,
    )
    from repro.experiments import ghz_circuit
    from repro.pipeline import CutPipeline
    from repro.quantum import PauliString

    from repro.exceptions import CuttingError
    from repro.utils.validation import validate_positive_count

    try:
        validate_positive_count(args.shots, name="--shots")
    except CuttingError as error:
        print(f"invalid arguments: {error}")
        return 1
    circuit = ghz_circuit(args.qubits)
    observable = PauliString("Z" * args.qubits)
    location = CutLocation(qubit=1, position=2)
    print(f"GHZ({args.qubits}) circuit, observable <{'Z' * args.qubits}>, {args.shots} shots")
    print(f"{'protocol':<18}{'kappa':>8}{'estimate':>12}{'error':>10}")
    for name, protocol in (
        ("peng", PengWireCut()),
        ("harada", HaradaWireCut()),
        (f"nme f={args.overlap}", NMEWireCut.from_overlap(args.overlap)),
        ("teleportation", TeleportationWireCut()),
    ):
        pipeline = CutPipeline(protocol=protocol, backend=args.backend)
        result = pipeline.run(
            circuit, observable, shots=args.shots, seed=args.seed, locations=[location]
        )
        print(f"{name:<18}{result.kappa:>8.3f}{result.value:>12.4f}{result.error:>10.4f}")
    return 0


def _command_devices(args: argparse.Namespace) -> int:
    return _command_devices_list(args)


def _command_devices_list(args: argparse.Namespace) -> int:
    from repro.exceptions import DeviceError
    from repro.devices import example_fleet_spec, fleet_from_spec
    from repro.experiments import ghz_circuit

    try:
        if args.devices is not None:
            fleet = _load_fleet_backend(args.devices, "vectorized", args.split)
            source = args.devices
        else:
            spec = example_fleet_spec()
            if args.split is not None:
                spec["split"] = args.split
            fleet = fleet_from_spec(spec)
            source = "built-in example fleet (see repro.devices.example_fleet_spec)"
    except DeviceError as error:
        print(f"invalid device spec: {error}")
        return 1

    rows = fleet.describe()
    print(f"fleet: {fleet.name} — {source}")
    header = (
        f"{'device':<12}{'capacity':>9}{'max_q':>7}{'dep_1q':>8}{'dep_2q':>8}"
        f"{'amp_damp':>10}{'ro_p01':>8}{'ro_p10':>8}{'fidelity':>10}{'share':>8}"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        max_q = "-" if row["max_qubits"] is None else str(row["max_qubits"])
        print(
            f"{row['name']:<12}{row['capacity']:>9.2f}{max_q:>7}"
            f"{row['depolarizing_1q']:>8.4f}{row['depolarizing_2q']:>8.4f}"
            f"{row['amplitude_damping']:>10.4f}{row['readout_p01']:>8.4f}"
            f"{row['readout_p10']:>8.4f}{row['fidelity_weight']:>10.4f}"
            f"{row['shot_share']:>8.3f}"
        )
    try:
        shares = fleet.plan_shares(ghz_circuit(args.qubits), args.shots)
    except DeviceError as error:
        print(f"\nno schedule for a {args.qubits}-qubit circuit: {error}")
        return 0
    schedule = ", ".join(f"{name}={count}" for name, count in shares.items())
    print(f"\n{args.shots} shots of a {args.qubits}-qubit circuit -> {schedule}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.exceptions import CuttingError, ServiceError
    from repro.service import serve
    from repro.utils.validation import validate_positive_count

    try:
        validate_positive_count(args.workers, name="--workers")
    except CuttingError as error:
        print(f"invalid arguments: {error}")
        return 1
    store_note = f", store {args.store}" if args.store else ", in-memory (no store)"
    limits = []
    if args.rate is not None:
        limits.append(f"rate {args.rate:g}/s")
    if args.max_active is not None:
        limits.append(f"max-active {args.max_active}")
    limit_note = f", {', '.join(limits)}" if limits else ""

    def ready(address) -> None:
        """Print the banner once the socket is listening (reports port 0 binds)."""
        host, port = address
        print(
            f"repro serve listening on http://{host}:{port} "
            f"({args.workers} {args.mode} workers{store_note}{limit_note}) — Ctrl-C to stop",
            flush=True,
        )

    try:
        serve(
            host=args.host,
            port=args.port,
            store=args.store,
            workers=args.workers,
            mode=args.mode,
            rate=args.rate,
            burst=args.burst,
            max_active=args.max_active,
            ready=ready,
        )
    except ServiceError as error:
        print(f"invalid arguments: {error}")
        return 1
    return 0


def _print_job_row(row: dict) -> None:
    """Print one job-status row in the fixed-width ``jobs list`` format."""
    state = row.get("state", "?")
    value = row.get("value")
    summary = "" if value is None else f"  value={value:.4f} ± {row.get('standard_error', 0.0):.4f}"
    cached = "  (cached)" if row.get("cached") else ""
    error = f"  {row['error']}" if row.get("error") else ""
    progress = ""
    if row.get("progress"):
        live = row["progress"]
        stderr = live.get("current_stderr")
        stderr_text = "" if stderr is None else f" stderr={stderr:.4f}"
        target = live.get("target_error")
        target_text = "" if target is None else f"/{target:.4f}"
        rounds = live.get("rounds_completed")
        rounds_text = "" if rounds is None else f" round={rounds}"
        progress = f"  [shots={live.get('shots_spent', 0)}{rounds_text}{stderr_text}{target_text}]"
    print(f"{row.get('job_id', '?'):<34}{state:<9}{summary}{progress}{cached}{error}")


def _command_jobs(args: argparse.Namespace) -> int:
    from repro.exceptions import ServiceError

    try:
        if args.jobs_command == "submit":
            return _command_jobs_submit(args)
        if args.jobs_command == "status":
            return _command_jobs_status(args)
        if args.jobs_command == "result":
            return _command_jobs_result(args)
        if args.jobs_command == "watch":
            return _command_jobs_watch(args)
        return _command_jobs_list(args)
    except ServiceError as error:
        print(f"service error: {error}")
        return 1


def _command_jobs_submit(args: argparse.Namespace) -> int:
    from repro.exceptions import CuttingError, DeviceError, ServiceError
    from repro.service import JobSpec, ServiceClient
    from repro.utils.validation import validate_positive_count

    try:
        validate_positive_count(args.shots, name="--shots")
        budget, mode_kwargs = _validate_mode_arguments(args)
        fleet = None
        if args.devices is not None:
            fleet = _load_fleet_spec(args.devices, args.split)
        elif args.split is not None:
            print("--split requires --devices")
            return 1
        spec = JobSpec(
            circuit=_workload_circuit(args),
            observable="Z" * args.qubits,
            shots=budget,
            seed=args.seed,
            max_fragment_width=args.width,
            entanglement_overlap=args.overlap,
            allocation=args.allocation or "proportional",
            max_cuts=args.max_cuts,
            backend=args.backend,
            fleet=fleet,
            dedup=args.dedup,
            **mode_kwargs,
        )
    except (CuttingError, DeviceError, ServiceError) as error:
        print(f"invalid job: {error}")
        return 1
    client = ServiceClient(args.url, tenant=args.tenant)
    row = client.submit(spec)
    print(f"submitted job {row['job_id']} ({row['state']})")
    if args.wait:
        payload = client.wait(row["job_id"], timeout=args.timeout)
        _print_result_payload(payload)
    return 0


def _print_result_payload(payload: dict) -> None:
    """Print one job-outcome payload in the shared result format."""
    exact = payload.get("exact_value")
    suffix = "" if exact is None else f", exact {exact:.4f}"
    if payload.get("mode") == "adaptive":
        state = "converged" if payload.get("converged") else "budget exhausted"
        suffix += f", {payload.get('rounds_completed')} rounds ({state})"
    provenance = " [served from store]" if payload.get("cached") else (
        f" [resumed from {payload['resumed_from']}]" if payload.get("resumed_from") else ""
    )
    print(
        f"result {payload['fingerprint']}: {payload['value']:.4f} ± "
        f"{payload['standard_error']:.4f} ({payload['total_shots']} shots, "
        f"kappa={payload['kappa']:.3f}{suffix}){provenance}"
    )


def _command_jobs_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    _print_job_row(ServiceClient(args.url).status(args.job_id))
    return 0


def _command_jobs_result(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    payload = ServiceClient(args.url).wait(args.job_id, timeout=args.timeout)
    _print_result_payload(payload)
    return 0


def _command_jobs_list(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    rows = ServiceClient(args.url).jobs(limit=args.limit, offset=args.offset, state=args.state)
    if not rows:
        print("no jobs matched")
        return 0
    for row in rows:
        _print_job_row(row)
    return 0


def _command_jobs_watch(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient

    client = ServiceClient(args.url)
    for event in client.events(args.job_id, after=args.after):
        name = event.get("event")
        data = event.get("data", {})
        if name == "round":
            payload = data.get("round", {})
            progress = data.get("progress") or {}
            stderr = progress.get("current_stderr")
            stderr_text = "" if stderr is None else f"  stderr={stderr:.5f}"
            print(
                f"round {payload.get('index')}: "
                f"{sum(payload.get('shots_per_term', ()))} shots{stderr_text}"
            )
        elif name == "result":
            _print_result_payload(data)
        elif name == "failed":
            print(f"job failed: {data.get('error')}")
            return 1
        elif name == "end":
            print("stream ended (job is not live on the server)")
    return 0


def _command_store(args: argparse.Namespace) -> int:
    from repro.exceptions import ServiceError
    from repro.service import RunStore

    try:
        store = RunStore(args.path)
        if args.store_command == "migrate":
            counters = store.migrate_legacy(remove=args.remove)
            removed = " (legacy files removed)" if args.remove else ""
            print(
                f"migrated {counters['runs']} runs ({counters['stages']} stages, "
                f"{counters['artifacts']} artifacts, {counters['skipped']} skipped)"
                f"{removed}"
            )
            stats = store.stats()
            print(
                f"index: {stats['stage_rows']} stage rows over {stats['blobs']} blobs "
                f"(dedup ratio {stats['dedup_ratio']:.2f})"
            )
            return 0
        rows = store.list_runs(limit=args.limit, offset=args.offset, stage=args.stage)
        total = store.count_runs(stage=args.stage)
        if not rows:
            print("no runs matched")
            return 0
        for row in rows:
            stages = ",".join(row["stages"]) if row.get("stages") else "-"
            print(f"{row['fingerprint']:<34}{stages}")
        shown_from = args.offset + 1
        print(f"({shown_from}..{args.offset + len(rows)} of {total} runs)")
        return 0
    except ServiceError as error:
        print(f"store error: {error}")
        return 1


def _command_trace(args: argparse.Namespace) -> int:
    return _command_trace_show(args)


def _command_trace_show(args: argparse.Namespace) -> int:
    from repro.exceptions import ServiceError
    from repro.service import RunStore
    from repro.telemetry.profiling import render_profile
    from repro.telemetry.tracing import render_trace

    try:
        store = RunStore(args.store)
        trace_payload = store.get_trace(args.fingerprint)
    except ServiceError as error:
        print(f"store error: {error}")
        return 1
    if trace_payload is None:
        print(f"no trace stored for {args.fingerprint!r} in {args.store}")
        return 1
    print(render_trace(trace_payload))
    if args.profile:
        profile_payload = store.get_profile(args.fingerprint)
        if profile_payload is None:
            print("(no profile stored for this run; execute it with --profile)")
        else:
            print()
            print(render_profile(profile_payload))
    return 0


_COMMANDS = {
    "figure6": _command_figure6,
    "overhead": _command_overhead,
    "protocols": _command_protocols,
    "resources": _command_resources,
    "ablations": _command_ablations,
    "cut": _command_cut,
    "devices": _command_devices,
    "serve": _command_serve,
    "jobs": _command_jobs,
    "store": _command_store,
    "trace": _command_trace,
}


def main(argv: list[str] | None = None) -> int:
    """Run the CLI and return the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(level=args.log_level, json_logs=args.json_logs)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
