"""Command-line entry point: ``python -m repro.cli <command>``.

Exposes the experiment harness without writing any Python:

* ``figure6`` — regenerate the paper's Figure 6 sweep (optionally at full
  paper scale) and write the table to CSV.
* ``overhead`` — print the Theorem-1 / Corollary-1 overhead table.
* ``protocols`` — print the κ comparison of all implemented protocols.
* ``resources`` — print the entangled-pair consumption table.
* ``ablations`` — run the allocation / gate-vs-wire / noisy-resource ablations.
* ``cut`` — cut a demo GHZ circuit and report the estimate per protocol.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]

#: Names accepted by ``--backend`` (kept in sync with repro.circuits.backends).
_BACKEND_CHOICES = ("serial", "vectorized", "process-pool")


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Cutting a Wire with Non-Maximally Entangled States'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    figure6 = subparsers.add_parser("figure6", help="run the Figure-6 error-vs-shots sweep")
    figure6.add_argument("--paper", action="store_true", help="full paper-scale configuration")
    figure6.add_argument("--states", type=int, default=None, help="override the number of random states")
    figure6.add_argument("--seed", type=int, default=2024)
    figure6.add_argument("--csv", type=str, default=None, help="write the result table to this CSV path")
    figure6.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default="vectorized",
        help="execution backend for the term-circuit simulations",
    )

    overhead = subparsers.add_parser("overhead", help="print the overhead-vs-entanglement table")
    overhead.add_argument("--csv", type=str, default=None)

    subparsers.add_parser("protocols", help="print the protocol κ comparison table")

    subparsers.add_parser("resources", help="print the entangled-pair consumption table")

    ablations = subparsers.add_parser("ablations", help="run the ablation experiments")
    ablations.add_argument("--states", type=int, default=20)
    ablations.add_argument("--shots", type=int, default=2000)
    ablations.add_argument("--seed", type=int, default=11)

    cut = subparsers.add_parser("cut", help="cut a GHZ demo circuit and compare protocols")
    cut.add_argument("--qubits", type=int, default=4)
    cut.add_argument("--shots", type=int, default=4000)
    cut.add_argument("--overlap", type=float, default=0.9, help="entanglement f(Φ_k) of the NME protocol")
    cut.add_argument("--seed", type=int, default=7)
    cut.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default="serial",
        help="execution backend for the term-circuit sampling",
    )

    return parser


def _command_figure6(args: argparse.Namespace) -> int:
    from repro.experiments import Figure6Config, run_figure6, write_csv

    config = Figure6Config.paper() if args.paper else Figure6Config(seed=args.seed)
    config = Figure6Config(
        num_states=args.states if args.states is not None else config.num_states,
        shot_grid=config.shot_grid,
        overlaps=config.overlaps,
        allocation=config.allocation,
        seed=args.seed,
        backend=args.backend,
    )
    result = run_figure6(config)
    table = result.to_table()
    print(table.to_text())
    if args.csv:
        print(f"wrote {write_csv(table, Path(args.csv))}")
    return 0


def _command_overhead(args: argparse.Namespace) -> int:
    from repro.experiments import overhead_vs_entanglement, write_csv

    table = overhead_vs_entanglement()
    print(table.to_text())
    if getattr(args, "csv", None):
        print(f"wrote {write_csv(table, Path(args.csv))}")
    return 0


def _command_protocols(_: argparse.Namespace) -> int:
    from repro.experiments import protocol_comparison

    print(protocol_comparison().to_text())
    return 0


def _command_resources(_: argparse.Namespace) -> int:
    from repro.experiments import resource_consumption

    print(resource_consumption().to_text())
    return 0


def _command_ablations(args: argparse.Namespace) -> int:
    from repro.experiments import (
        allocation_strategy_ablation,
        gate_vs_wire_cut,
        noisy_resource_ablation,
    )

    print(allocation_strategy_ablation(num_states=args.states, shots=args.shots, seed=args.seed).to_text())
    print()
    print(gate_vs_wire_cut(shots=max(args.shots, 1000), seed=args.seed).to_text())
    print()
    print(noisy_resource_ablation().to_text())
    return 0


def _command_cut(args: argparse.Namespace) -> int:
    from repro.cutting import (
        CutLocation,
        HaradaWireCut,
        NMEWireCut,
        PengWireCut,
        TeleportationWireCut,
        estimate_cut_expectation,
    )
    from repro.experiments import ghz_circuit
    from repro.quantum import PauliString

    circuit = ghz_circuit(args.qubits)
    observable = PauliString("Z" * args.qubits)
    location = CutLocation(qubit=1, position=2)
    print(f"GHZ({args.qubits}) circuit, observable <{'Z' * args.qubits}>, {args.shots} shots")
    print(f"{'protocol':<18}{'kappa':>8}{'estimate':>12}{'error':>10}")
    for name, protocol in (
        ("peng", PengWireCut()),
        ("harada", HaradaWireCut()),
        (f"nme f={args.overlap}", NMEWireCut.from_overlap(args.overlap)),
        ("teleportation", TeleportationWireCut()),
    ):
        result = estimate_cut_expectation(
            circuit,
            location,
            protocol,
            observable,
            shots=args.shots,
            seed=args.seed,
            backend=args.backend,
        )
        print(f"{name:<18}{result.kappa:>8.3f}{result.value:>12.4f}{result.error:>10.4f}")
    return 0


_COMMANDS = {
    "figure6": _command_figure6,
    "overhead": _command_overhead,
    "protocols": _command_protocols,
    "resources": _command_resources,
    "ablations": _command_ablations,
    "cut": _command_cut,
}


def main(argv: list[str] | None = None) -> int:
    """Run the CLI and return the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
