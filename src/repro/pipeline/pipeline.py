"""The :class:`CutPipeline`: plan → decompose → execute → reconstruct.

The pipeline is the orchestration layer that turns *any*
:class:`~repro.circuits.circuit.QuantumCircuit` plus device constraints into
a cut-circuit expectation-value estimate:

1. **plan** — find where to cut (:func:`~repro.cutting.cut_finding.plan_cuts`,
   or an explicit plan / slice positions supplied by the caller).  Plans may
   contain several time slices, splitting the circuit into more than two
   fragments.
2. **decompose** — apply one single-wire protocol per cut and build the full
   tensor-product QPD term set
   (:func:`~repro.cutting.multi_wire.build_multi_cut_circuits`): n cuts with
   m-term protocols yield mⁿ term circuits whose coefficients multiply, so
   the total overhead is κⁿ.
3. **execute** — allocate the shot budget across the product term set and
   run every measured term circuit as one batch through a
   :class:`~repro.circuits.backends.SimulatorBackend`, inheriting the
   vectorized / process-pool execution paths and the per-circuit seed
   streams (identical results on every backend for the same seed).
4. **reconstruct** — recombine the per-term means with the signed
   coefficient products (Eq. 12) and propagate the standard error.

With ``dedup=True`` (or ``"auto"``) the execute stage routes full-slice
plans through the instance-dedup layer of :mod:`repro.cutting.instances`:
every unique (fragment, basis-config) subcircuit instance is simulated
exactly once, the QPD product terms index into the shared table, and the
execution artifact carries the dedup accounting.
:meth:`CutPipeline.exact_reconstruction` can likewise fold the full κⁿ
summation into one fragment-chain contraction (``method="contraction"``).

Each stage returns a frozen artifact (:mod:`repro.pipeline.stages`), so the
stages can be run separately for inspection, or all at once with
:meth:`CutPipeline.run`.

Example
-------
>>> from repro.experiments import ghz_circuit
>>> from repro.pipeline import CutPipeline
>>> pipeline = CutPipeline(max_fragment_width=3, backend="vectorized")
>>> result = pipeline.run(ghz_circuit(4), observable="ZZZZ", shots=8000, seed=7)
>>> result.plan.num_cuts
1
"""

from __future__ import annotations

from collections.abc import Sequence

import repro.telemetry as telemetry
from repro.exceptions import CuttingError
from repro.telemetry.metrics import REGISTRY
from repro.circuits.backends import BACKEND_NAMES, SimulatorBackend, resolve_backend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.expectation import exact_expectation
from repro.cutting.base import WireCutProtocol
from repro.cutting.cut_finding import (
    MultiCutPlan,
    plan_cuts,
    plan_from_locations,
    plan_from_positions,
)
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import ESTIMATION_MODES, _as_pauli, _probability_plus
from repro.cutting.instances import (
    build_instance_table,
    execute_instances,
    execute_instances_adaptive,
    instance_support_reason,
)
from repro.cutting.multi_wire import (
    MultiCutTermCircuit,
    build_multi_cut_circuits,
    execute_term_circuits,
    execute_term_circuits_adaptive,
    measured_multi_cut_circuit,
)
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.pipeline.stages import Decomposition, Execution, PipelineResult, PlanResult
from repro.qpd.adaptive import (
    DEFAULT_MAX_ROUNDS,
    EXECUTION_MODES as ROUND_EXECUTION_MODES,
    AdaptiveConfig,
    RoundRecord,
)
from repro.qpd.allocation import resolve_planner
from repro.qpd.estimator import combine_term_estimates
from repro.quantum.paulis import PauliString
from repro.utils.rng import SeedLike

__all__ = ["CutPipeline", "DEDUP_MODES", "RECONSTRUCTION_METHODS"]

#: Accepted values of the pipeline's ``dedup`` configuration: ``False`` keeps
#: the monolithic per-term path (bitwise identical to earlier releases),
#: ``True`` requires the instance-dedup path (raising when the plan or
#: protocols cannot be factorised), ``"auto"`` uses dedup whenever it is
#: supported and silently falls back otherwise.
DEDUP_MODES = (False, True, "auto")

#: Accepted values of :meth:`CutPipeline.exact_reconstruction`'s ``method``:
#: ``"summation"`` materialises every product term (the κⁿ reference),
#: ``"contraction"`` folds the whole summation into one fragment-chain
#: contraction through the instance table.
RECONSTRUCTION_METHODS = ("summation", "contraction")

#: κ and κ² of every decomposition built, the paper's central cost quantity
#: (conf_ipps_BechtoldBLM24): κⁿ total sampling overhead per plan.
_KAPPA_HISTOGRAM = REGISTRY.histogram(
    "repro_plan_kappa",
    "Total kappa (QPD 1-norm) of each built decomposition.",
    buckets=(1.0, 2.0, 3.0, 4.0, 6.0, 9.0, 16.0, 27.0, 81.0, 243.0),
)
_OVERHEAD_HISTOGRAM = REGISTRY.histogram(
    "repro_plan_sampling_overhead",
    "Sampling overhead kappa^2 of each built decomposition.",
    buckets=(1.0, 4.0, 9.0, 16.0, 36.0, 81.0, 256.0, 729.0, 6561.0, 59049.0),
)


class CutPipeline:
    """Composable plan → decompose → execute → reconstruct cut estimation.

    The pipeline holds the *configuration* (device constraints, protocol
    choice, execution backend, allocation strategy); the circuit, observable
    and shot budget are supplied per call, so one pipeline instance serves a
    whole workload.

    Parameters
    ----------
    max_fragment_width:
        Maximum number of qubits any device can hold; drives the planner.
        May be ``None`` when every call supplies an explicit plan or slice
        positions.
    protocol:
        The single-wire protocol applied at every cut, or a sequence with
        one protocol per cut location.  Defaults to the optimal
        entanglement-free cut (κ = 3) — or the paper's NME cut when
        ``entanglement_overlap`` is given.
    entanglement_overlap:
        Entanglement level ``f(Φ_k)`` shared between the devices.  Sets the
        default protocol to ``NMEWireCut.from_overlap(...)`` and informs the
        planner's overhead ranking.
    backend:
        Execution backend (name or instance); ``None`` selects the serial
        backend.  All backends yield identical results for the same seed.
        A :class:`~repro.devices.DeviceFleet` instance runs every term
        circuit shot-wise distributed across its noisy virtual devices.
    allocation:
        Shot-allocation strategy over the product term set
        (``proportional``, ``multinomial``, ``uniform``).
    max_cuts:
        Optional planner bound on the total number of wire cuts.
    max_fragments:
        Optional planner bound on the number of fragments (devices).
    dedup:
        Instance-dedup execution (:mod:`repro.cutting.instances`):
        ``False`` (default) keeps the monolithic per-term path, ``True``
        requires the shared instance table (raising when the plan or
        protocols cannot be factorised), ``"auto"`` uses it whenever
        supported and falls back silently otherwise.  Per-call override via
        :meth:`execute`'s ``dedup`` argument.

    Examples
    --------
    Run everything at once:

    >>> from repro.experiments import ghz_circuit
    >>> pipeline = CutPipeline(max_fragment_width=3)
    >>> result = pipeline.run(ghz_circuit(4), "ZZZZ", shots=4000, seed=11)

    Or stage by stage:

    >>> plan = pipeline.plan(ghz_circuit(4))
    >>> decomposition = pipeline.decompose(plan)
    >>> execution = pipeline.execute(decomposition, "ZZZZ", shots=4000, seed=11)
    >>> result = pipeline.reconstruct(execution)
    """

    def __init__(
        self,
        max_fragment_width: int | None = None,
        protocol: WireCutProtocol | Sequence[WireCutProtocol] | None = None,
        entanglement_overlap: float | None = None,
        backend: SimulatorBackend | str | None = None,
        allocation: str = "proportional",
        max_cuts: int | None = None,
        max_fragments: int | None = None,
        dedup: bool | str = False,
    ):
        if max_fragment_width is not None and max_fragment_width < 1:
            raise CuttingError("max_fragment_width must be at least 1")
        if dedup not in DEDUP_MODES:
            raise CuttingError(f"unknown dedup mode {dedup!r}; expected one of {DEDUP_MODES}")
        self.max_fragment_width = max_fragment_width
        self.protocol = protocol
        self.entanglement_overlap = entanglement_overlap
        self.backend = resolve_backend(backend)
        self.allocation = allocation
        self.max_cuts = max_cuts
        self.max_fragments = max_fragments
        self.dedup = dedup

    # -- stage 1: plan -----------------------------------------------------------------

    def plan(
        self,
        circuit: QuantumCircuit,
        plan: MultiCutPlan | None = None,
        positions: Sequence[int] | None = None,
        locations: Sequence[CutLocation] | None = None,
    ) -> PlanResult:
        """Choose where to cut ``circuit``.

        Parameters
        ----------
        circuit:
            The circuit to split.
        plan:
            Use this explicit plan instead of searching.
        positions:
            Build an explicit plan cutting at these time-slice positions
            (every wire crossing a slice is cut there).
        locations:
            Build an explicit plan from these exact wire-cut locations
            (including end-of-circuit cuts the slice model cannot express).

        Returns
        -------
        PlanResult
            The selected plan plus the ranked alternatives when the planner
            searched.

        Raises
        ------
        CuttingError
            When more than one of ``plan`` / ``positions`` / ``locations``
            is given, when no constraint is available to search with, or
            when no valid plan exists under the constraints.
        """
        with telemetry.stage("plan", circuit=str(circuit.name)) as span_record:
            result = self._plan_impl(circuit, plan, positions, locations)
            span_record.set(num_cuts=result.plan.num_cuts)
            return result

    def _plan_impl(
        self,
        circuit: QuantumCircuit,
        plan: MultiCutPlan | None,
        positions: Sequence[int] | None,
        locations: Sequence[CutLocation] | None,
    ) -> PlanResult:
        """Stage body of :meth:`plan` (runs inside the stage span)."""
        explicit_args = [arg for arg in (plan, positions, locations) if arg is not None]
        if len(explicit_args) > 1:
            raise CuttingError(
                "pass at most one of an explicit plan, positions or locations"
            )
        if plan is not None:
            return PlanResult(circuit=circuit, plan=plan)
        if positions is not None:
            explicit = plan_from_positions(
                circuit, tuple(positions), entanglement_overlap=self.entanglement_overlap
            )
            return PlanResult(circuit=circuit, plan=explicit)
        if locations is not None:
            explicit = plan_from_locations(
                circuit, tuple(locations), entanglement_overlap=self.entanglement_overlap
            )
            return PlanResult(circuit=circuit, plan=explicit)
        if self.max_fragment_width is None:
            raise CuttingError(
                "CutPipeline needs max_fragment_width to plan automatically "
                "(or pass an explicit plan / positions)"
            )
        candidates = plan_cuts(
            circuit,
            self.max_fragment_width,
            entanglement_overlap=self.entanglement_overlap,
            max_cuts=self.max_cuts,
            max_fragments=self.max_fragments,
        )
        if not candidates:
            raise CuttingError(
                f"no valid cut plan splits {circuit.name!r} into fragments of width "
                f"<= {self.max_fragment_width}"
            )
        return PlanResult(
            circuit=circuit,
            plan=candidates[0],
            alternatives=tuple(candidates),
            max_fragment_width=self.max_fragment_width,
        )

    # -- stage 2: decompose ------------------------------------------------------------

    def decompose(self, plan_result: PlanResult) -> Decomposition:
        """Build the tensor-product QPD term set for a plan.

        One protocol is applied per cut location (the configured protocol is
        replicated when a single instance was given); the term set is the
        Cartesian product of the per-cut term sets with multiplied
        coefficients, so its κ is the product of the per-cut κ values.  A
        zero-cut plan (the circuit factorises into fitting fragments at
        free slices) decomposes into the single identity term with κ = 1.

        Parameters
        ----------
        plan_result:
            The plan-stage artifact.

        Returns
        -------
        Decomposition
            The executable term circuits with coefficients and κ.
        """
        with telemetry.stage("decompose") as span_record:
            decomposition = self._decompose_impl(plan_result)
            kappa = float(decomposition.kappa)
            _KAPPA_HISTOGRAM.observe(kappa)
            _OVERHEAD_HISTOGRAM.observe(kappa * kappa)
            span_record.set(kappa=kappa, num_terms=len(decomposition.term_circuits))
            return decomposition

    def _decompose_impl(self, plan_result: PlanResult) -> Decomposition:
        """Stage body of :meth:`decompose` (runs inside the stage span)."""
        protocols = self._protocols_for(plan_result.plan)
        if plan_result.plan.num_cuts == 0:
            circuit = plan_result.circuit
            identity_term = MultiCutTermCircuit(
                circuit=circuit,
                coefficient=1.0,
                term_indices=(),
                qubit_map={q: q for q in range(circuit.num_qubits)},
                sign_clbits=(),
                labels=(),
            )
            return Decomposition(
                plan_result=plan_result,
                protocols=(),
                term_circuits=(identity_term,),
            )
        term_circuits = build_multi_cut_circuits(
            plan_result.circuit, list(plan_result.plan.locations), list(protocols)
        )
        return Decomposition(
            plan_result=plan_result,
            protocols=protocols,
            term_circuits=tuple(term_circuits),
        )

    # -- stage 3: execute --------------------------------------------------------------

    def execute(
        self,
        decomposition: Decomposition,
        observable: str | PauliString,
        shots: int,
        seed: SeedLike = None,
        mode: str = "static",
        target_error: float | None = None,
        rounds: int = DEFAULT_MAX_ROUNDS,
        planner: str | None = None,
        completed_rounds: Sequence[RoundRecord] = (),
        on_round=None,
        dedup: bool | str | None = None,
        execution: str = "inprocess",
        workers: int | None = None,
    ) -> Execution:
        """Spend the shot budget on the term set through the execution backend.

        In the default **static** mode the budget is split across the
        product terms by the configured allocation strategy, every term
        circuit is measured in the observable's basis, and the whole batch
        is submitted to the backend in one call — so the vectorized backend
        simulates structurally identical terms as stacked NumPy
        computations and every backend draws circuit ``i`` from seed stream
        ``i`` (bitwise identical results across backends).

        In **adaptive** mode execution is round-structured: after each
        round the per-term running statistics feed a variance-aware planner
        that allocates the next round, stopping as soon as the pooled
        standard error reaches ``target_error`` or ``shots`` is exhausted.
        Each round runs through the same backend batch call (one spawned
        seed stream per round), so cross-backend identity holds per round.

        Parameters
        ----------
        decomposition:
            The decompose-stage artifact.
        observable:
            Pauli observable over the original circuit's logical qubits (a
            single letter refers to qubit 0).
        shots:
            Total shot budget across all term circuits (the hard ceiling in
            adaptive mode).
        seed:
            Seed or generator for allocation and sampling.
        mode:
            ``"static"`` (default) or ``"adaptive"``.
        target_error:
            Adaptive stopping threshold on the pooled standard error
            (required in adaptive mode).
        rounds:
            Adaptive round limit.
        planner:
            Adaptive per-round planner name (``"neyman"`` by default).
        completed_rounds:
            Round records persisted by an interrupted adaptive run; they
            are replayed without re-execution so the resumed execution is
            bitwise identical to an uninterrupted one.
        on_round:
            Optional progress hook called after every live adaptive round
            with the :class:`~repro.qpd.adaptive.RoundRecord` and a
            progress summary dict.
        dedup:
            Per-call override of the pipeline's dedup configuration
            (``False`` / ``True`` / ``"auto"``); ``None`` uses the
            configured default.  When dedup engages, the unique fragment
            instances are simulated once through the backend and every
            term's outcomes are drawn from its chained exact distribution
            — statistically identical to the monolithic path and bitwise
            identical across backends — and the returned execution carries
            the table's accounting in ``instance_stats``.
        execution:
            Round execution: ``"inprocess"`` (default) or ``"distributed"``
            (adaptive mode only; each round fans out over the
            multi-process work-stealing pool of :mod:`repro.distributed`).
            Distributed execution is bitwise identical to in-process for
            the same seed, so the stage artifact does not record it — a
            stored run resumes interchangeably under either.  The dedup
            path consumes one sequential RNG across terms and therefore
            cannot distribute: an explicit ``dedup=True`` conflicts, and
            ``"auto"`` falls back to the monolithic term path.
        workers:
            Distributed execution's worker-process count.

        Returns
        -------
        Execution
            Raw per-term empirical summaries (plus round records in
            adaptive mode, plus dedup accounting when the instance table
            served the execution).
        """
        with telemetry.stage(
            "execute",
            mode=str(mode),
            backend=str(self.backend.name),
            execution=str(execution),
            shots=int(shots),
        ) as span_record:
            result = self._execute_impl(
                decomposition,
                observable,
                shots,
                seed=seed,
                mode=mode,
                target_error=target_error,
                rounds=rounds,
                planner=planner,
                completed_rounds=completed_rounds,
                on_round=on_round,
                dedup=dedup,
                execution=execution,
                workers=workers,
            )
            span_record.set(
                num_terms=len(result.term_estimates),
                total_shots=int(sum(result.shots_per_term)),
            )
            return result

    def _execute_impl(
        self,
        decomposition: Decomposition,
        observable: str | PauliString,
        shots: int,
        seed: SeedLike,
        mode: str,
        target_error: float | None,
        rounds: int,
        planner: str | None,
        completed_rounds: Sequence[RoundRecord],
        on_round,
        dedup: bool | str | None,
        execution: str,
        workers: int | None,
    ) -> Execution:
        """Stage body of :meth:`execute` (runs inside the stage span)."""
        if mode not in ESTIMATION_MODES:
            raise CuttingError(f"unknown mode {mode!r}; expected one of {ESTIMATION_MODES}")
        if execution not in ROUND_EXECUTION_MODES:
            raise CuttingError(
                f"unknown execution {execution!r}; expected one of {ROUND_EXECUTION_MODES}"
            )
        if execution == "distributed":
            if mode != "adaptive":
                raise CuttingError("distributed execution requires mode='adaptive'")
            requested_dedup = self.dedup if dedup is None else dedup
            if requested_dedup is True:
                raise CuttingError(
                    "dedup execution cannot distribute (the instance fast path "
                    "draws terms from one sequential stream); pass dedup=False"
                )
            # "auto" falls back to the distributable monolithic term path.
            dedup = False
        pauli = _as_pauli(observable, decomposition.circuit.num_qubits)
        if self._dedup_engages(decomposition, dedup):
            return self._execute_dedup(
                decomposition,
                pauli,
                shots,
                seed=seed,
                mode=mode,
                target_error=target_error,
                rounds=rounds,
                planner=planner,
                completed_rounds=completed_rounds,
                on_round=on_round,
            )
        if mode == "adaptive":
            if target_error is None:
                raise CuttingError("adaptive mode requires target_error")
            config = AdaptiveConfig(
                target_error=target_error,
                max_shots=int(shots),
                max_rounds=rounds,
                planner=planner,
            )
            term_estimates, shots_per_term, adaptive = execute_term_circuits_adaptive(
                decomposition.term_circuits,
                pauli,
                config,
                seed=seed,
                backend=self.backend,
                completed_rounds=completed_rounds,
                on_round=on_round,
                execution=execution,
                workers=workers,
            )
            return Execution(
                decomposition=decomposition,
                observable=pauli,
                term_estimates=tuple(term_estimates),
                shots_per_term=tuple(shots_per_term),
                backend_name=self.backend.name,
                # Adaptive rounds are planned from the running statistics,
                # not the static allocation strategy — record what actually
                # split the shots.
                allocation=resolve_planner(planner).name,
                mode="adaptive",
                target_error=float(target_error),
                converged=adaptive.converged,
                rounds=adaptive.rounds,
            )
        term_estimates, shots_per_term = execute_term_circuits(
            decomposition.term_circuits,
            pauli,
            shots,
            allocation=self.allocation,
            seed=seed,
            backend=self.backend,
        )
        return Execution(
            decomposition=decomposition,
            observable=pauli,
            term_estimates=tuple(term_estimates),
            shots_per_term=tuple(shots_per_term),
            backend_name=self.backend.name,
            allocation=self.allocation,
        )

    def _dedup_reason(self, decomposition: Decomposition) -> str | None:
        """Explain why dedup cannot serve this decomposition, or ``None``."""
        if self.backend.name not in BACKEND_NAMES:
            return (
                f"dedup requires an ideal simulator backend, got {self.backend.name!r}"
            )
        return instance_support_reason(
            decomposition.circuit,
            decomposition.plan_result.plan,
            decomposition.protocols,
        )

    def _dedup_engages(self, decomposition: Decomposition, dedup: bool | str | None) -> bool:
        """Resolve the effective dedup setting against the decomposition."""
        requested = self.dedup if dedup is None else dedup
        if requested not in DEDUP_MODES:
            raise CuttingError(
                f"unknown dedup mode {requested!r}; expected one of {DEDUP_MODES}"
            )
        if requested is False:
            return False
        reason = self._dedup_reason(decomposition)
        if reason is None:
            return True
        if requested is True:
            raise CuttingError(f"dedup execution unavailable: {reason}")
        return False

    def _execute_dedup(
        self,
        decomposition: Decomposition,
        pauli: PauliString,
        shots: int,
        seed: SeedLike,
        mode: str,
        target_error: float | None,
        rounds: int,
        planner: str | None,
        completed_rounds: Sequence[RoundRecord],
        on_round,
    ) -> Execution:
        """Execute the term set through the shared instance table."""
        table = build_instance_table(
            decomposition.circuit,
            decomposition.plan_result.plan,
            decomposition.protocols,
            pauli,
        )
        if mode == "adaptive":
            if target_error is None:
                raise CuttingError("adaptive mode requires target_error")
            config = AdaptiveConfig(
                target_error=target_error,
                max_shots=int(shots),
                max_rounds=rounds,
                planner=planner,
            )
            term_estimates, shots_per_term, adaptive, stats = execute_instances_adaptive(
                table,
                config,
                seed=seed,
                backend=self.backend,
                completed_rounds=completed_rounds,
                on_round=on_round,
            )
            return Execution(
                decomposition=decomposition,
                observable=pauli,
                term_estimates=tuple(term_estimates),
                shots_per_term=tuple(shots_per_term),
                backend_name=self.backend.name,
                allocation=resolve_planner(planner).name,
                mode="adaptive",
                target_error=float(target_error),
                converged=adaptive.converged,
                rounds=adaptive.rounds,
                instance_stats=stats,
            )
        term_estimates, shots_per_term, stats = execute_instances(
            table,
            shots,
            allocation=self.allocation,
            seed=seed,
            backend=self.backend,
        )
        return Execution(
            decomposition=decomposition,
            observable=pauli,
            term_estimates=tuple(term_estimates),
            shots_per_term=tuple(shots_per_term),
            backend_name=self.backend.name,
            allocation=self.allocation,
            instance_stats=stats,
        )

    # -- stage 4: reconstruct ----------------------------------------------------------

    def reconstruct(self, execution: Execution, compute_exact: bool = True) -> PipelineResult:
        """Recombine the per-term means into the final estimate (Eq. 12).

        Parameters
        ----------
        execution:
            The execute-stage artifact.
        compute_exact:
            Also compute the exact uncut expectation value for error
            reporting.

        Returns
        -------
        PipelineResult
            The estimate with propagated standard error and links to all
            upstream artifacts.
        """
        with telemetry.stage("reconstruct", exact=bool(compute_exact)) as span_record:
            result = self._reconstruct_impl(execution, compute_exact)
            span_record.set(total_shots=int(result.total_shots))
            return result

    def _reconstruct_impl(self, execution: Execution, compute_exact: bool) -> PipelineResult:
        """Stage body of :meth:`reconstruct` (runs inside the stage span)."""
        estimate = combine_term_estimates(list(execution.term_estimates))
        exact_value = None
        if compute_exact:
            exact_value = float(
                exact_expectation(
                    execution.decomposition.circuit, execution.observable.to_matrix()
                )
            )
        return PipelineResult(
            value=estimate.value,
            standard_error=estimate.standard_error,
            total_shots=estimate.total_shots,
            kappa=estimate.kappa,
            exact_value=exact_value,
            execution=execution,
        )

    # -- convenience -------------------------------------------------------------------

    def run(
        self,
        circuit: QuantumCircuit,
        observable: str | PauliString,
        shots: int,
        seed: SeedLike = None,
        plan: MultiCutPlan | None = None,
        positions: Sequence[int] | None = None,
        locations: Sequence[CutLocation] | None = None,
        compute_exact: bool = True,
        mode: str = "static",
        target_error: float | None = None,
        rounds: int = DEFAULT_MAX_ROUNDS,
        planner: str | None = None,
        dedup: bool | str | None = None,
        execution: str = "inprocess",
        workers: int | None = None,
    ) -> PipelineResult:
        """Run all four stages and return the final estimate.

        Parameters
        ----------
        circuit:
            The circuit to cut and estimate.
        observable:
            Pauli observable over the circuit's logical qubits.
        shots:
            Total shot budget (the hard ceiling in adaptive mode).
        seed:
            Seed or generator for all sampling.
        plan:
            Optional explicit plan (skips the planner search).
        positions:
            Optional explicit time-slice positions (skips the search).
        locations:
            Optional explicit wire-cut locations (skips the search).
        compute_exact:
            Also compute the exact uncut value for error reporting.
        mode:
            Execution mode: ``"static"`` (default) or ``"adaptive"``
            (round-structured with early stopping).
        target_error:
            Adaptive stopping threshold on the pooled standard error.
        rounds:
            Adaptive round limit.
        planner:
            Adaptive per-round planner name.
        dedup:
            Per-call override of the pipeline's instance-dedup setting
            (see :meth:`execute`).
        execution:
            Round execution, ``"inprocess"`` or ``"distributed"`` (see
            :meth:`execute`).
        workers:
            Distributed execution's worker-process count.

        Returns
        -------
        PipelineResult
            The reconstructed estimate with stage artifacts attached.
        """
        plan_result = self.plan(circuit, plan=plan, positions=positions, locations=locations)
        decomposition = self.decompose(plan_result)
        executed = self.execute(
            decomposition,
            observable,
            shots,
            seed=seed,
            mode=mode,
            target_error=target_error,
            rounds=rounds,
            planner=planner,
            dedup=dedup,
            execution=execution,
            workers=workers,
        )
        return self.reconstruct(executed, compute_exact=compute_exact)

    def exact_reconstruction(
        self,
        decomposition: Decomposition,
        observable: str | PauliString,
        method: str = "summation",
    ) -> float:
        """Return the decomposition's exact (infinite-shot) reconstructed value.

        With the default ``"summation"`` method every term circuit's exact
        outcome distribution is computed through the configured backend and
        recombined as ``Σ_i c_i (2 p⁺_i − 1)`` — the κⁿ reference, bitwise
        identical to earlier releases.  With ``"contraction"`` the unique
        fragment instances are simulated once and the whole summation is
        folded into a single tensor-network-style chain contraction
        (:meth:`repro.cutting.instances.InstanceTable.contract_exact_value`)
        — linear in the number of fragments instead of exponential in the
        number of cuts, and agreeing with the summation to float
        round-off.  For valid protocols either value equals the uncut
        expectation; tests use the agreement as the end-to-end
        unbiasedness check of the multi-cut gadget chain.

        Parameters
        ----------
        decomposition:
            The decompose-stage artifact.
        observable:
            Pauli observable over the original circuit's logical qubits.
        method:
            ``"summation"`` (default) or ``"contraction"``.

        Returns
        -------
        float
            The exactly reconstructed expectation value.

        Raises
        ------
        CuttingError
            With ``method="contraction"`` when the plan or protocols cannot
            be served by the instance table (the message names the
            obstruction).
        """
        if method not in RECONSTRUCTION_METHODS:
            raise CuttingError(
                f"unknown reconstruction method {method!r}; "
                f"expected one of {RECONSTRUCTION_METHODS}"
            )
        pauli = _as_pauli(observable, decomposition.circuit.num_qubits)
        if method == "contraction":
            reason = self._dedup_reason(decomposition)
            if reason is not None:
                raise CuttingError(f"contraction reconstruction unavailable: {reason}")
            table = build_instance_table(
                decomposition.circuit,
                decomposition.plan_result.plan,
                decomposition.protocols,
                pauli,
            )
            table.evaluate(self.backend)
            return table.contract_exact_value()
        measured = []
        selected_clbits = []
        for term_circuit in decomposition.term_circuits:
            circuit, selected = measured_multi_cut_circuit(term_circuit, pauli)
            measured.append(circuit)
            selected_clbits.append(selected)
        distributions = self.backend.exact_distributions(measured)
        value = 0.0
        for term_circuit, distribution, selected in zip(
            decomposition.term_circuits, distributions, selected_clbits
        ):
            probability_plus = _probability_plus(distribution, selected)
            value += term_circuit.coefficient * (2.0 * probability_plus - 1.0)
        return float(value)

    # -- internals ---------------------------------------------------------------------

    def _protocols_for(self, plan: MultiCutPlan) -> tuple[WireCutProtocol, ...]:
        """Resolve the configured protocol(s) into one protocol per cut location."""
        num_cuts = plan.num_cuts
        if num_cuts == 0:
            return ()
        if self.protocol is None:
            if self.entanglement_overlap is not None:
                template: WireCutProtocol = NMEWireCut.from_overlap(self.entanglement_overlap)
            else:
                template = HaradaWireCut()
            return tuple([template] * num_cuts)
        if isinstance(self.protocol, WireCutProtocol):
            return tuple([self.protocol] * num_cuts)
        protocols = tuple(self.protocol)
        if len(protocols) != num_cuts:
            raise CuttingError(
                f"pipeline was configured with {len(protocols)} protocols but the plan "
                f"has {num_cuts} cuts"
            )
        return protocols

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        """Return a short configuration summary."""
        return (
            f"CutPipeline(max_fragment_width={self.max_fragment_width}, "
            f"backend={self.backend.name!r}, allocation={self.allocation!r})"
        )
