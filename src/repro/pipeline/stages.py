"""Stage artifacts of the :class:`~repro.pipeline.CutPipeline`.

The pipeline runs **plan → decompose → execute → reconstruct** and each
stage returns a frozen artifact consumed by the next one.  Keeping the
artifacts first-class (instead of threading raw tuples) makes every
intermediate inspectable: a caller can stop after planning to compare
alternatives, after decomposition to count QPD terms, or after execution to
look at the raw per-term statistics before they are recombined.

=====================  ======================================================
:class:`PlanResult`    The chosen :class:`~repro.cutting.cut_finding.MultiCutPlan`
                       plus the ranked alternatives the planner considered.
:class:`Decomposition` The tensor-product QPD term set: one executable
                       circuit per combination of per-cut protocol terms,
                       with the product coefficients and total κ.
:class:`Execution`     Raw per-term sampling statistics after the shot
                       budget was spent through the execution backend.
:class:`PipelineResult` The reconstructed expectation value with propagated
                       standard error, plus references to every upstream
                       artifact.
=====================  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuits.backends import circuit_fingerprint
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.base import WireCutProtocol
from repro.cutting.cut_finding import MultiCutPlan
from repro.cutting.instances import InstanceStats
from repro.cutting.multi_wire import MultiCutTermCircuit
from repro.qpd.adaptive import RoundRecord
from repro.qpd.estimator import TermEstimate
from repro.quantum.paulis import PauliString
from repro.utils.serialization import payload_fingerprint

__all__ = ["PlanResult", "Decomposition", "Execution", "PipelineResult"]


@dataclass(frozen=True)
class PlanResult:
    """Output of the plan stage.

    Attributes
    ----------
    circuit:
        The (uncut) circuit the plan applies to.
    plan:
        The selected :class:`~repro.cutting.cut_finding.MultiCutPlan`.
    alternatives:
        Every valid plan the planner found, ranked best-first (the selected
        plan is ``alternatives[0]`` when planning was automatic; empty when
        an explicit plan was supplied).
    max_fragment_width:
        The device-width constraint the plan satisfies (``None`` when an
        explicit plan bypassed the search).
    """

    circuit: QuantumCircuit
    plan: MultiCutPlan
    alternatives: tuple[MultiCutPlan, ...] = ()
    max_fragment_width: int | None = None

    @property
    def num_cuts(self) -> int:
        """Number of wire cuts in the selected plan."""
        return self.plan.num_cuts

    @property
    def num_fragments(self) -> int:
        """Number of fragments the selected plan produces."""
        return self.plan.num_fragments

    def to_payload(self) -> dict:
        """Return the JSON-serializable summary of the selected plan.

        The payload records everything needed to *rebuild* the plan
        deterministically (the exact cut locations and slice positions);
        fragments and overhead are re-derived on load, so the stored form
        stays small and version-stable.
        """
        return {
            "circuit_fingerprint": circuit_fingerprint(self.circuit),
            "positions": [int(p) for p in self.plan.positions],
            "locations": [
                [int(location.qubit), int(location.position)]
                for location in self.plan.locations
            ],
            "num_fragments": self.plan.num_fragments,
            "sampling_overhead": float(self.plan.sampling_overhead),
            "max_fragment_width": self.max_fragment_width,
        }

    def fingerprint(self) -> str:
        """Return a stable content hash of the plan-stage artifact."""
        return payload_fingerprint(self.to_payload())


@dataclass(frozen=True)
class Decomposition:
    """Output of the decompose stage: the tensor-product QPD term set.

    Attributes
    ----------
    plan_result:
        The upstream plan artifact.
    protocols:
        The wire-cut protocol applied at each cut location (same order as
        ``plan_result.plan.locations``).
    term_circuits:
        One executable circuit per element of the Cartesian product of the
        per-cut term sets, with multiplied coefficients.
    """

    plan_result: PlanResult
    protocols: tuple[WireCutProtocol, ...]
    term_circuits: tuple[MultiCutTermCircuit, ...]

    @property
    def circuit(self) -> QuantumCircuit:
        """The original (uncut) circuit."""
        return self.plan_result.circuit

    @property
    def coefficients(self) -> np.ndarray:
        """Product coefficient of every QPD term."""
        return np.array([term.coefficient for term in self.term_circuits])

    @property
    def kappa(self) -> float:
        """Total sampling overhead: the 1-norm of the product coefficients."""
        return float(np.sum(np.abs(self.coefficients)))

    @property
    def probabilities(self) -> np.ndarray:
        """Coefficient-proportional sampling distribution over the terms."""
        magnitudes = np.abs(self.coefficients)
        return magnitudes / magnitudes.sum()

    @property
    def num_terms(self) -> int:
        """Size of the product term set (``Π_i num_terms(protocol_i)``)."""
        return len(self.term_circuits)


@dataclass(frozen=True)
class Execution:
    """Output of the execute stage: raw per-term sampling statistics.

    Attributes
    ----------
    decomposition:
        The upstream decomposition artifact.
    observable:
        The measured Pauli observable (over the original logical qubits).
    term_estimates:
        Per-term empirical summaries (coefficient, mean, shots).
    shots_per_term:
        Shots assigned to each product term by the allocator.
    backend_name:
        Name of the execution backend that ran the batch.
    allocation:
        What split the shots: the static allocation strategy, or the
        round planner's name for adaptive executions.
    mode:
        ``"static"`` (one up-front allocation) or ``"adaptive"``
        (round-structured execution with early stopping).
    target_error:
        Adaptive mode's stopping threshold (``None`` in static mode).
    converged:
        Adaptive mode: whether the pooled standard error reached the
        target before the budget ran out (``None`` in static mode).
    rounds:
        Adaptive mode: the executed round records, in order (empty in
        static mode).
    instance_stats:
        Dedup accounting when the execution went through the shared
        instance table of :mod:`repro.cutting.instances` (unique instances
        simulated, per-term references served, distribution-cache deltas);
        ``None`` when the monolithic per-term path ran.
    """

    decomposition: Decomposition
    observable: PauliString
    term_estimates: tuple[TermEstimate, ...]
    shots_per_term: tuple[int, ...]
    backend_name: str
    allocation: str
    mode: str = "static"
    target_error: float | None = None
    converged: bool | None = None
    rounds: tuple[RoundRecord, ...] = ()
    instance_stats: InstanceStats | None = None

    @property
    def total_shots(self) -> int:
        """Total shots spent across all term circuits."""
        return int(sum(self.shots_per_term))

    @property
    def entangled_pairs(self) -> int:
        """Total pre-shared entangled pairs the execution consumed.

        Each shot of a term consumes one pair per teleportation-based cut
        gadget in that term (resource accounting for the paper's
        pairs-per-shot relation, summed over the whole product term set).
        """
        return int(
            sum(
                term.entangled_pairs * shots
                for term, shots in zip(
                    self.decomposition.term_circuits, self.shots_per_term
                )
            )
        )

    def to_payload(self) -> dict:
        """Return the JSON-serializable record of the execution stage.

        The per-term empirical summaries (coefficient, mean, shots, variance)
        are all that reconstruction needs, so an interrupted run can resume
        from this payload alone; floats round-trip JSON exactly, making the
        resumed estimate bitwise identical to the uninterrupted one.

        Adaptive executions additionally record the mode, the target error,
        convergence and every round's (allocation, means) record; executions
        that went through the instance-dedup table additionally record its
        accounting.  Payloads without those features are byte-for-byte
        identical to the earlier layouts, so existing stored runs keep
        their fingerprints.
        """
        payload = {
            "observable": self.observable.labels,
            "backend_name": self.backend_name,
            "allocation": self.allocation,
            "shots_per_term": [int(count) for count in self.shots_per_term],
            "term_estimates": [
                {
                    "coefficient": float(estimate.coefficient),
                    "mean": float(estimate.mean),
                    "shots": int(estimate.shots),
                    "variance": None
                    if estimate.variance is None
                    else float(estimate.variance),
                    "label": estimate.label,
                    **(
                        {}
                        if estimate.m2 is None
                        else {"m2": float(estimate.m2)}
                    ),
                }
                for estimate in self.term_estimates
            ],
        }
        if self.mode != "static":
            payload["mode"] = self.mode
            payload["target_error"] = (
                None if self.target_error is None else float(self.target_error)
            )
            payload["converged"] = self.converged
            payload["rounds"] = [record.to_payload() for record in self.rounds]
        if self.instance_stats is not None:
            payload["instance_stats"] = self.instance_stats.to_payload()
        return payload

    def fingerprint(self) -> str:
        """Return a stable content hash of the execution-stage artifact.

        The distribution-cache hit/miss deltas inside ``instance_stats``
        depend on cache warmth rather than on the sampled result, so they
        are excluded: two seeded dedup runs with identical statistics hash
        identically whether or not the cache was already populated.
        """
        payload = self.to_payload()
        stats = payload.get("instance_stats")
        if stats is not None:
            stats.pop("distribution_cache_hits", None)
            stats.pop("distribution_cache_misses", None)
        return payload_fingerprint(payload)

    @classmethod
    def from_payload(cls, decomposition: Decomposition, payload: dict) -> "Execution":
        """Rebuild an execution artifact from its stored payload.

        Parameters
        ----------
        decomposition:
            The (recomputed) upstream decomposition the stored execution
            belongs to — decomposition is deterministic and cheap, so only
            the sampled statistics are persisted.
        payload:
            A payload produced by :meth:`to_payload`.

        Returns
        -------
        Execution
            An artifact equivalent to the one originally persisted.
        """
        target_error = payload.get("target_error")
        return cls(
            decomposition=decomposition,
            observable=PauliString(payload["observable"]),
            term_estimates=tuple(
                TermEstimate(
                    coefficient=float(entry["coefficient"]),
                    mean=float(entry["mean"]),
                    shots=int(entry["shots"]),
                    variance=None if entry.get("variance") is None else float(entry["variance"]),
                    label=str(entry.get("label", "")),
                    m2=None if entry.get("m2") is None else float(entry["m2"]),
                )
                for entry in payload["term_estimates"]
            ),
            shots_per_term=tuple(int(count) for count in payload["shots_per_term"]),
            backend_name=str(payload["backend_name"]),
            allocation=str(payload["allocation"]),
            mode=str(payload.get("mode", "static")),
            target_error=None if target_error is None else float(target_error),
            converged=payload.get("converged"),
            rounds=tuple(
                RoundRecord.from_payload(entry) for entry in payload.get("rounds", ())
            ),
            instance_stats=(
                None
                if payload.get("instance_stats") is None
                else InstanceStats.from_payload(payload["instance_stats"])
            ),
        )


@dataclass(frozen=True)
class PipelineResult:
    """Final output of the pipeline: the reconstructed expectation value.

    Attributes
    ----------
    value:
        The recombined expectation-value estimate (Eq. 12).
    standard_error:
        Propagated standard error of ``value``.
    total_shots:
        Shots actually spent across all term circuits.
    kappa:
        Total sampling overhead of the tensor-product decomposition.
    exact_value:
        The exact (uncut) expectation value when it was computed alongside
        the estimate; ``None`` otherwise.
    execution:
        The upstream execution artifact (which links back to the
        decomposition and the plan), kept for inspection.
    """

    value: float
    standard_error: float
    total_shots: int
    kappa: float
    exact_value: float | None = None
    execution: Execution | None = field(default=None, repr=False)

    @property
    def error(self) -> float | None:
        """Absolute deviation from the exact value, when available."""
        if self.exact_value is None:
            return None
        return abs(self.value - self.exact_value)

    @property
    def plan(self) -> MultiCutPlan | None:
        """The cut plan the estimate was produced with, when available."""
        if self.execution is None:
            return None
        return self.execution.decomposition.plan_result.plan

    def to_payload(self) -> dict:
        """Return the JSON-serializable summary of the final estimate.

        Results of adaptive executions additionally record the mode, the
        number of executed rounds and convergence; static payloads keep the
        pre-adaptive layout (and fingerprints) unchanged.
        """
        payload = {
            "value": float(self.value),
            "standard_error": float(self.standard_error),
            "total_shots": int(self.total_shots),
            "kappa": float(self.kappa),
            "exact_value": None if self.exact_value is None else float(self.exact_value),
        }
        if self.execution is not None and self.execution.mode != "static":
            payload["mode"] = self.execution.mode
            payload["rounds_completed"] = len(self.execution.rounds)
            payload["converged"] = self.execution.converged
        return payload

    def fingerprint(self) -> str:
        """Return a stable content hash of the result artifact."""
        return payload_fingerprint(self.to_payload())

    @classmethod
    def from_payload(cls, payload: dict, execution: Execution | None = None) -> "PipelineResult":
        """Rebuild a result artifact from its stored payload.

        Parameters
        ----------
        payload:
            A payload produced by :meth:`to_payload`.
        execution:
            Optional upstream execution artifact to re-attach.

        Returns
        -------
        PipelineResult
            The reconstructed result.
        """
        exact = payload.get("exact_value")
        return cls(
            value=float(payload["value"]),
            standard_error=float(payload["standard_error"]),
            total_shots=int(payload["total_shots"]),
            kappa=float(payload["kappa"]),
            exact_value=None if exact is None else float(exact),
            execution=execution,
        )
