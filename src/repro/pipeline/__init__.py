"""Multi-cut orchestration: plan → decompose → execute → reconstruct.

:class:`CutPipeline` composes the cut planner
(:mod:`repro.cutting.cut_finding`), the tensor-product QPD builder
(:mod:`repro.cutting.multi_wire`), the batched execution backends
(:mod:`repro.circuits.backends`) and Eq.-12 recombination
(:mod:`repro.qpd.estimator`) into one inspectable pipeline, so any circuit
plus device constraints turns into an expectation-value estimate — with one
wire cut or many, two fragments or a chain of them.
"""

from repro.pipeline.pipeline import DEDUP_MODES, RECONSTRUCTION_METHODS, CutPipeline
from repro.pipeline.stages import Decomposition, Execution, PipelineResult, PlanResult

__all__ = [
    "CutPipeline",
    "DEDUP_MODES",
    "RECONSTRUCTION_METHODS",
    "PlanResult",
    "Decomposition",
    "Execution",
    "PipelineResult",
]
