"""The :class:`JobScheduler`: bounded-pool asynchronous job execution.

Jobs are submitted fire-and-forget and executed on a bounded worker pool
(threads by default; processes for CPU-bound throughput).  Three properties
make the scheduler safe to put in front of the pipeline:

**Determinism.**  Every job carries its own seed, and
:meth:`~repro.pipeline.CutPipeline.execute` derives one independent child
stream per QPD term circuit from it — no RNG state is shared between jobs,
so N concurrent submissions return estimates bitwise-identical to running
the same specs serially (in any order, on any worker count).

**Deduplication.**  The job id *is* the spec's content fingerprint: while a
job is queued or running, re-submitting the same spec returns the existing
id instead of enqueueing twice, and with a
:class:`~repro.service.store.RunStore` attached a finished job's re-submission
is served from the store without re-execution.

**Boundedness.**  The pool size is validated up front
(:func:`~repro.utils.validation.validate_positive_count`), and excess jobs
queue inside the executor rather than spawning unbounded work.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    ALL_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field

from repro.exceptions import ReproError, ServiceError
from repro.service.runner import JobOutcome, run_job
from repro.service.spec import JobSpec
from repro.service.store import RunStore
from repro.telemetry import tracing
from repro.telemetry.tracing import TraceContext, Tracer
from repro.utils.validation import validate_positive_count

__all__ = ["JobScheduler"]

#: Worker-pool modes accepted by :class:`JobScheduler`.
SCHEDULER_MODES = ("thread", "process")


def _process_run_job(payload: dict, store_root: str | None, profile: bool = False) -> dict:
    """Worker-process entry point: run one job from its payload form.

    The worker runs in its own interpreter, so the runner creates (and,
    with a store, persists) the job's own tracer there; process-mode traces
    therefore root at the ``job`` span without the coordinator's ``submit``
    span.
    """
    spec = JobSpec.from_payload(payload)
    store = None if store_root is None else RunStore(store_root)
    return run_job(spec, store=store, profile=profile).to_payload()


@dataclass
class _JobRecord:
    """Book-keeping for one submitted job."""

    job_id: str
    spec: JobSpec
    future: Future | None = None
    started: bool = False
    attempts: int = field(default=1)
    progress: dict | None = None
    tenant: str | None = None
    events: list = field(default_factory=list)
    tracer: Tracer | None = None
    submit_span: object | None = None


class JobScheduler:
    """Asynchronous, deduplicating executor of :class:`~repro.service.spec.JobSpec` jobs.

    Parameters
    ----------
    store:
        Optional :class:`~repro.service.store.RunStore`; when given, every
        job run persists its stage artifacts and repeated submissions are
        served from the store.
    workers:
        Worker-pool size (strictly positive).
    mode:
        ``"thread"`` (default; shares the in-process distribution cache) or
        ``"process"`` (one interpreter per worker, for CPU-bound
        throughput).
    profile:
        Run every job with opt-in per-stage :mod:`cProfile` capture,
        persisted as a store artifact next to the trace (see
        :func:`~repro.service.runner.run_job`).

    Examples
    --------
    >>> from repro.experiments import ghz_circuit
    >>> from repro.service import JobScheduler, JobSpec
    >>> with JobScheduler(workers=2) as scheduler:
    ...     spec = JobSpec(ghz_circuit(4), "ZZZZ", shots=1000, seed=3, max_fragment_width=3)
    ...     job_id = scheduler.submit(spec)
    ...     outcome = scheduler.result(job_id)
    >>> outcome.total_shots
    1000
    """

    def __init__(
        self,
        store: RunStore | None = None,
        workers: int = 2,
        mode: str = "thread",
        profile: bool = False,
    ):
        self.workers = validate_positive_count(workers, name="workers")
        if mode not in SCHEDULER_MODES:
            raise ServiceError(f"unknown scheduler mode {mode!r}; expected one of {SCHEDULER_MODES}")
        self.store = store
        self.mode = mode
        self.profile = bool(profile)
        if mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-job"
            )
        else:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self._records: dict[str, _JobRecord] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self._listeners: list = []

    # -- event plumbing ----------------------------------------------------------------

    def add_listener(self, listener) -> None:
        """Register ``listener(job_id, event)`` for live job events.

        Listeners are invoked from worker threads; each event is a dict with
        a ``type`` key — ``"round"`` (carrying the round payload and live
        progress counters) when an adaptive round lands, and ``"done"`` /
        ``"failed"`` when a job reaches a terminal state.  Asyncio consumers
        must bridge with ``loop.call_soon_threadsafe``.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        """Unregister a previously added listener (a no-op when unknown)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    def _notify(self, job_id: str, event: dict) -> None:
        """Invoke every listener, isolating the scheduler from their errors."""
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(job_id, event)
            except Exception:  # noqa: BLE001 - a bad listener must not kill a job
                pass

    def job_events(self, job_id: str) -> list[dict]:
        """Return the in-memory round events of one job, in arrival order."""
        record = self._record(job_id)
        return list(record.events)

    # -- submission --------------------------------------------------------------------

    def _run_in_thread(self, record: _JobRecord) -> dict:
        """Thread-mode worker body: mark the record started, run, return the payload.

        The runner's progress hook writes into the record, so ``status``
        can report live shots-spent / current-stderr counters while an
        adaptive job is still executing rounds.
        """
        record.started = True

        def progress(summary: dict) -> None:
            """Record the runner's latest progress snapshot on the job record.

            Round payloads (the ``"round"`` key the runner attaches on live
            adaptive rounds) are split off into the record's event log and
            published to listeners; the aggregate counters stay on
            ``record.progress`` for ``status``.
            """
            round_payload = summary.get("round")
            counters = {key: value for key, value in summary.items() if key != "round"}
            record.progress = counters
            if round_payload is not None:
                event = {"type": "round", "round": round_payload, "progress": counters}
                record.events.append(event)
                self._notify(record.job_id, event)

        tracer = record.tracer
        if tracer is None:  # pragma: no cover - defensive
            return run_job(record.spec, store=self.store, progress=progress).to_payload()
        # Re-enter the trace captured at submission: the worker thread
        # activates the tracer with the submit span as parent context, so
        # the job span (and everything under it) nests under ``submit``.
        context = TraceContext(tracer.trace_id, record.submit_span.span_id)
        with tracing.activate(tracer, context):
            payload = run_job(
                record.spec,
                store=self.store,
                progress=progress,
                tracer=tracer,
                profile=self.profile,
            ).to_payload()
        tracer.end_span(record.submit_span)
        # The scheduler owns this tracer (it carries the submit span), so it
        # persists the tree — but never on a cache hit, which would
        # overwrite the original execution's trace with a trivial one.
        if self.store is not None and not payload.get("cached"):
            self.store.put_trace(record.job_id, tracer.to_payload())
        return payload

    def _on_job_settled(self, job_id: str, future: Future) -> None:
        """Future done-callback: publish the terminal event for one job."""
        exception = future.exception()
        if exception is not None:
            self._notify(job_id, {"type": "failed", "error": str(exception)})
        else:
            self._notify(job_id, {"type": "done"})

    def submit(self, spec: JobSpec, tenant: str | None = None) -> str:
        """Enqueue a job and return its id (the spec fingerprint).

        Re-submitting a spec that is already queued, running or finished
        returns the existing id without enqueueing a duplicate; a *failed*
        job is retried.  ``tenant`` tags the job for per-tenant quota
        accounting (see :meth:`active_jobs`).
        """
        job_id = spec.fingerprint()
        with self._lock:
            record = self._records.get(job_id)
            if record is not None and record.future is not None:
                failed = record.future.done() and record.future.exception() is not None
                if not failed:
                    return job_id
                record = _JobRecord(
                    job_id=job_id, spec=spec, attempts=record.attempts + 1, tenant=tenant
                )
                self._records[job_id] = record
            elif record is None:
                record = _JobRecord(job_id=job_id, spec=spec, tenant=tenant)
                self._records[job_id] = record
                self._order.append(job_id)
            if self.mode == "thread":
                if record.tracer is None:
                    # The submit span opens *now* so the trace includes
                    # queueing delay; the worker thread closes it.
                    record.tracer = Tracer(trace_id=job_id)
                    record.submit_span = record.tracer.start_span(
                        "submit", attributes={"tenant": tenant or ""}
                    )
                record.future = self._executor.submit(self._run_in_thread, record)
            else:
                store_root = None if self.store is None else str(self.store.root)
                record.future = self._executor.submit(
                    _process_run_job, spec.to_payload(), store_root, self.profile
                )
            future = record.future
        # Outside the lock: an already-settled future runs the callback
        # inline, and _notify re-acquires the (non-reentrant) lock.
        future.add_done_callback(
            lambda future, job_id=job_id: self._on_job_settled(job_id, future)
        )
        return job_id

    def active_jobs(self, tenant: str | None = None) -> int:
        """Return the number of queued/running jobs (optionally one tenant's)."""
        with self._lock:
            records = list(self._records.values())
        count = 0
        for record in records:
            if tenant is not None and record.tenant != tenant:
                continue
            if record.future is not None and not record.future.done():
                count += 1
        return count

    # -- inspection --------------------------------------------------------------------

    def _record(self, job_id: str) -> _JobRecord:
        with self._lock:
            record = self._records.get(job_id)
        if record is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return record

    def status(self, job_id: str) -> dict:
        """Return the current state of one job.

        The returned dict always carries ``job_id`` and ``state`` (one of
        ``queued``/``running``/``done``/``failed``); a done job adds the
        outcome summary, a failed one the error message.  While an adaptive
        job is executing rounds (thread mode), ``progress`` carries the
        live ``rounds_completed`` / ``shots_spent`` / ``current_stderr`` /
        ``target_error`` / ``converged`` counters; the last snapshot stays
        attached once the job is done.
        """
        record = self._record(job_id)
        future = record.future
        entry: dict = {"job_id": job_id, "attempts": record.attempts}
        if record.progress is not None:
            entry["progress"] = dict(record.progress)
        if future is None or not future.done():
            running = record.started or (future is not None and future.running())
            entry["state"] = "running" if running else "queued"
            return entry
        exception = future.exception()
        if exception is not None:
            entry["state"] = "failed"
            entry["error"] = str(exception)
            return entry
        payload = future.result()
        entry["state"] = "done"
        entry["cached"] = payload.get("cached", False)
        entry["resumed_from"] = payload.get("resumed_from")
        entry["value"] = payload.get("value")
        entry["standard_error"] = payload.get("standard_error")
        if "mode" in payload:
            entry["mode"] = payload["mode"]
            entry["rounds_completed"] = payload.get("rounds_completed")
            entry["converged"] = payload.get("converged")
        return entry

    def result(self, job_id: str, timeout: float | None = None) -> JobOutcome:
        """Block until a job finishes and return its outcome.

        Raises
        ------
        ServiceError
            When the job id is unknown, the job failed, or ``timeout``
            elapsed first.
        """
        record = self._record(job_id)
        try:
            payload = record.future.result(timeout=timeout)
        except FuturesTimeoutError:
            raise ServiceError(f"job {job_id!r} did not finish within {timeout}s") from None
        except ReproError as error:
            raise ServiceError(f"job {job_id!r} failed: {error}") from error
        return JobOutcome.from_payload(payload)

    def list_jobs(
        self,
        limit: int | None = None,
        offset: int = 0,
        state: str | None = None,
    ) -> list[dict]:
        """Return job statuses in submission order, paginated and filtered.

        Parameters
        ----------
        limit:
            Page size; ``None`` returns every row.
        offset:
            Rows to skip (after the state filter).
        state:
            Only rows in this state (``queued``/``running``/``done``/
            ``failed``).
        """
        if offset < 0:
            raise ServiceError(f"offset must be non-negative, got {offset}")
        if limit is not None and limit < 0:
            raise ServiceError(f"limit must be non-negative, got {limit}")
        if state is not None and state not in ("queued", "running", "done", "failed"):
            raise ServiceError(f"unknown state filter {state!r}")
        with self._lock:
            order = list(self._order)
        rows = []
        selected = 0
        for job_id in order:
            row = self.status(job_id)
            if state is not None and row["state"] != state:
                continue
            selected += 1
            if selected <= offset:
                continue
            if limit is not None and len(rows) >= limit:
                break
            rows.append(row)
        return rows

    # -- lifecycle ---------------------------------------------------------------------

    def wait_all(self, timeout: float | None = None) -> None:
        """Block until every submitted job has finished (or ``timeout`` elapses)."""
        with self._lock:
            futures = [r.future for r in self._records.values() if r.future is not None]
        futures_wait(futures, timeout=timeout, return_when=ALL_COMPLETED)

    def shutdown(self, wait: bool = True) -> None:
        """Shut the worker pool down (outstanding jobs finish when ``wait``)."""
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "JobScheduler":
        """Return self (context-manager support)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Shut the pool down on context exit."""
        self.shutdown(wait=True)
