"""Execute one job against an optional :class:`~repro.service.store.RunStore`.

:func:`run_job` is the single execution path shared by the scheduler, the
HTTP service and the CLI's ``--store`` flags.  With a store attached it is a
*memoised, resumable* pipeline run:

1. a stored ``result`` artifact is returned immediately (cache hit — no
   pipeline stage runs at all);
2. a stored ``execution`` artifact skips the sampling stage: the plan and
   decomposition are recomputed (they are deterministic and cheap) and the
   final estimate is reconstructed from the stored per-term statistics,
   bitwise identical to an uninterrupted run;
3. an adaptive job killed *mid-execution* resumes from the stored
   ``rounds`` artifact: the completed rounds are replayed into the running
   statistics without re-execution and live rounds continue from the next
   spawned round seed — the resumed estimate is bitwise identical to an
   uninterrupted run;
4. otherwise the full pipeline runs, persisting every stage artifact as it
   completes (adaptive executions persist their round log atomically after
   every round), so the *next* attempt resumes wherever this one stops.

``run_job`` also accepts a ``progress`` callback, invoked after every
adaptive round (and once on completion) with the live counters the
scheduler surfaces through ``repro jobs status``:
``rounds_completed`` / ``shots_spent`` / ``current_stderr`` /
``target_error`` / ``converged``.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import repro.telemetry as telemetry
from repro.pipeline.stages import Execution
from repro.qpd.adaptive import RoundRecord
from repro.service.spec import JobSpec
from repro.service.store import RunStore
from repro.telemetry import tracing
from repro.telemetry.profiling import StageProfiler, activate_profiler
from repro.telemetry.tracing import Tracer

__all__ = ["JobOutcome", "run_job"]


@dataclass(frozen=True)
class JobOutcome:
    """The result of one job run, annotated with how it was obtained.

    Attributes
    ----------
    fingerprint:
        The job's content address.
    value:
        The reconstructed expectation-value estimate.
    standard_error:
        Propagated standard error of ``value``.
    total_shots:
        Shots actually spent across all term circuits.
    kappa:
        Total sampling overhead of the decomposition.
    exact_value:
        The exact uncut value when the job requested it; ``None`` otherwise.
    cached:
        True when the outcome was served from a stored ``result`` artifact
        without running any pipeline stage.
    resumed_from:
        Name of the deepest stored stage the run resumed from (``None`` for
        a fresh run or a pure cache hit).
    mode:
        Execution mode of the job (``"static"`` or ``"adaptive"``).
    rounds_completed:
        Adaptive mode: number of executed rounds (``None`` in static mode).
    converged:
        Adaptive mode: whether the target error was reached before the
        budget ran out (``None`` in static mode).
    """

    fingerprint: str
    value: float
    standard_error: float
    total_shots: int
    kappa: float
    exact_value: float | None = None
    cached: bool = False
    resumed_from: str | None = None
    mode: str = "static"
    rounds_completed: int | None = None
    converged: bool | None = None

    @property
    def error(self) -> float | None:
        """Absolute deviation from the exact value, when available."""
        if self.exact_value is None:
            return None
        return abs(self.value - self.exact_value)

    def to_payload(self) -> dict:
        """Return the JSON-serializable form (the HTTP result body)."""
        payload = {
            "fingerprint": self.fingerprint,
            "value": float(self.value),
            "standard_error": float(self.standard_error),
            "total_shots": int(self.total_shots),
            "kappa": float(self.kappa),
            "exact_value": None if self.exact_value is None else float(self.exact_value),
            "cached": bool(self.cached),
            "resumed_from": self.resumed_from,
        }
        if self.mode != "static":
            payload["mode"] = self.mode
            payload["rounds_completed"] = self.rounds_completed
            payload["converged"] = self.converged
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "JobOutcome":
        """Rebuild an outcome from its payload form."""
        exact = payload.get("exact_value")
        return cls(
            fingerprint=str(payload["fingerprint"]),
            value=float(payload["value"]),
            standard_error=float(payload["standard_error"]),
            total_shots=int(payload["total_shots"]),
            kappa=float(payload["kappa"]),
            exact_value=None if exact is None else float(exact),
            cached=bool(payload.get("cached", False)),
            resumed_from=payload.get("resumed_from"),
            mode=str(payload.get("mode", "static")),
            rounds_completed=payload.get("rounds_completed"),
            converged=payload.get("converged"),
        )


def _outcome_from_result(
    fingerprint: str, payload: dict, cached: bool, resumed_from: str | None
) -> JobOutcome:
    """Build a :class:`JobOutcome` from a stored/new result-stage payload."""
    return JobOutcome.from_payload(
        {**payload, "fingerprint": fingerprint, "cached": cached, "resumed_from": resumed_from}
    )


def run_job(
    spec: JobSpec,
    store: RunStore | None = None,
    progress: Callable[[dict], None] | None = None,
    tracer: Tracer | None = None,
    profile: bool = False,
) -> JobOutcome:
    """Run (or resume, or serve from cache) one job.

    Parameters
    ----------
    spec:
        The job to execute.
    store:
        Optional run store.  When given, every completed stage is persisted
        under the job fingerprint, stored results are served without
        re-execution, and interrupted runs resume from the last completed
        stage (adaptive runs resume mid-execution from the round log).
    progress:
        Optional live-progress hook.  Adaptive jobs invoke it after every
        round with ``rounds_completed`` / ``shots_spent`` /
        ``current_stderr`` / ``target_error`` / ``converged``; static jobs
        invoke it once when execution completes.
    tracer:
        Optional externally-owned :class:`~repro.telemetry.tracing.Tracer`
        (the scheduler passes the one carrying its ``submit`` span).  When
        ``None``, ``run_job`` creates a tracer whose trace ID is the job
        fingerprint and persists its span tree in the store after a run
        that actually executed (cache hits never overwrite the original
        execution's trace).  An external tracer is the caller's to persist.
    profile:
        Capture an opt-in per-stage :mod:`cProfile` summary and persist it
        as a store artifact next to the trace.

    Returns
    -------
    JobOutcome
        The estimate plus provenance flags (``cached`` / ``resumed_from``).
    """
    fingerprint = spec.fingerprint()
    owns_tracer = tracer is None
    if owns_tracer:
        tracer = Tracer(trace_id=fingerprint)
    profiler = StageProfiler() if profile else None
    # The job span parents under the caller's ambient context (the
    # scheduler's submit span), or roots the trace when there is none.
    with tracing.activate(tracer, tracing.current_context()):
        with telemetry.span("job", fingerprint=fingerprint, mode=str(spec.mode)) as job_span:
            with activate_profiler(profiler):
                outcome = _run_job_impl(spec, store, progress, fingerprint, job_span)
    if store is not None and not outcome.cached:
        if owns_tracer:
            store.put_trace(fingerprint, tracer.to_payload())
        if profiler is not None:
            store.put_profile(fingerprint, profiler.to_payload())
    return outcome


def _run_job_impl(
    spec: JobSpec,
    store: RunStore | None,
    progress: Callable[[dict], None] | None,
    fingerprint: str,
    job_span,
) -> JobOutcome:
    """Body of :func:`run_job` (runs inside the job span)."""
    if store is not None:
        store.put_job(spec)
        result_payload = store.get_stage(fingerprint, "result")
        if result_payload is not None:
            job_span.set(cached=True)
            return _outcome_from_result(
                fingerprint, result_payload, cached=True, resumed_from=None
            )

    pipeline = spec.build_pipeline()
    plan_result = pipeline.plan(spec.circuit, **spec.plan_arguments())
    if store is not None and not store.has_stage(fingerprint, "plan"):
        store.put_stage(fingerprint, "plan", plan_result.to_payload())
    decomposition = pipeline.decompose(plan_result)

    execution = None
    resumed_from = None
    progress_reported = False
    if store is not None:
        execution_payload = store.get_stage(fingerprint, "execution")
        if execution_payload is not None:
            execution = Execution.from_payload(decomposition, execution_payload)
            resumed_from = "execution"

    if execution is None:
        completed_rounds: tuple[RoundRecord, ...] = ()
        if spec.mode == "adaptive" and store is not None:
            rounds_payload = store.get_stage(fingerprint, "rounds")
            if rounds_payload is not None:
                completed_rounds = tuple(
                    RoundRecord.from_payload(entry)
                    for entry in rounds_payload.get("rounds", ())
                )
                if completed_rounds:
                    resumed_from = "rounds"
        round_log = [record.to_payload() for record in completed_rounds]

        def on_round(record, summary: dict) -> None:
            """Persist the round log atomically and forward live progress.

            The summary handed to ``progress`` is augmented with the round
            record's payload under ``"round"`` so streaming consumers (the
            SSE endpoint) see the exact :class:`RoundRecord`, not just the
            aggregate counters.
            """
            nonlocal progress_reported
            round_log.append(record.to_payload())
            if store is not None:
                store.put_stage(
                    fingerprint,
                    "rounds",
                    {"target_error": spec.target_error, "rounds": list(round_log)},
                )
            if progress is not None:
                progress_reported = True
                progress({**summary, "round": record.to_payload()})

        execution = pipeline.execute(
            decomposition,
            spec.observable,
            spec.shots,
            seed=spec.seed,
            completed_rounds=completed_rounds,
            on_round=on_round,
            **spec.execute_arguments(),
        )
        if store is not None:
            store.put_stage(fingerprint, "execution", execution.to_payload())

    result = pipeline.reconstruct(execution, compute_exact=spec.compute_exact)
    if progress is not None and not progress_reported:
        # Static executions, execution-stage resumes and adaptive resumes
        # that were already converged never fired a live round; report one
        # final snapshot so `jobs status` always carries the counters.
        adaptive = execution.mode == "adaptive"
        progress(
            {
                "rounds_completed": len(execution.rounds) if adaptive else None,
                "shots_spent": execution.total_shots,
                "current_stderr": float(result.standard_error),
                "target_error": execution.target_error,
                "converged": execution.converged,
            }
        )
    result_payload = result.to_payload()
    if store is not None:
        store.put_stage(fingerprint, "result", result_payload)
    job_span.set(cached=False, resumed_from=resumed_from)
    return _outcome_from_result(
        fingerprint, result_payload, cached=False, resumed_from=resumed_from
    )
