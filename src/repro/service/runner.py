"""Execute one job against an optional :class:`~repro.service.store.RunStore`.

:func:`run_job` is the single execution path shared by the scheduler, the
HTTP service and the CLI's ``--store`` flags.  With a store attached it is a
*memoised, resumable* pipeline run:

1. a stored ``result`` artifact is returned immediately (cache hit — no
   pipeline stage runs at all);
2. a stored ``execution`` artifact skips the sampling stage: the plan and
   decomposition are recomputed (they are deterministic and cheap) and the
   final estimate is reconstructed from the stored per-term statistics,
   bitwise identical to an uninterrupted run;
3. otherwise the full pipeline runs, persisting every stage artifact as it
   completes, so the *next* attempt resumes wherever this one stops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.stages import Execution
from repro.service.spec import JobSpec
from repro.service.store import RunStore

__all__ = ["JobOutcome", "run_job"]


@dataclass(frozen=True)
class JobOutcome:
    """The result of one job run, annotated with how it was obtained.

    Attributes
    ----------
    fingerprint:
        The job's content address.
    value:
        The reconstructed expectation-value estimate.
    standard_error:
        Propagated standard error of ``value``.
    total_shots:
        Shots actually spent across all term circuits.
    kappa:
        Total sampling overhead of the decomposition.
    exact_value:
        The exact uncut value when the job requested it; ``None`` otherwise.
    cached:
        True when the outcome was served from a stored ``result`` artifact
        without running any pipeline stage.
    resumed_from:
        Name of the deepest stored stage the run resumed from (``None`` for
        a fresh run or a pure cache hit).
    """

    fingerprint: str
    value: float
    standard_error: float
    total_shots: int
    kappa: float
    exact_value: float | None = None
    cached: bool = False
    resumed_from: str | None = None

    @property
    def error(self) -> float | None:
        """Absolute deviation from the exact value, when available."""
        if self.exact_value is None:
            return None
        return abs(self.value - self.exact_value)

    def to_payload(self) -> dict:
        """Return the JSON-serializable form (the HTTP result body)."""
        return {
            "fingerprint": self.fingerprint,
            "value": float(self.value),
            "standard_error": float(self.standard_error),
            "total_shots": int(self.total_shots),
            "kappa": float(self.kappa),
            "exact_value": None if self.exact_value is None else float(self.exact_value),
            "cached": bool(self.cached),
            "resumed_from": self.resumed_from,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobOutcome":
        """Rebuild an outcome from its payload form."""
        exact = payload.get("exact_value")
        return cls(
            fingerprint=str(payload["fingerprint"]),
            value=float(payload["value"]),
            standard_error=float(payload["standard_error"]),
            total_shots=int(payload["total_shots"]),
            kappa=float(payload["kappa"]),
            exact_value=None if exact is None else float(exact),
            cached=bool(payload.get("cached", False)),
            resumed_from=payload.get("resumed_from"),
        )


def _outcome_from_result(
    fingerprint: str, payload: dict, cached: bool, resumed_from: str | None
) -> JobOutcome:
    """Build a :class:`JobOutcome` from a stored/new result-stage payload."""
    return JobOutcome.from_payload(
        {**payload, "fingerprint": fingerprint, "cached": cached, "resumed_from": resumed_from}
    )


def run_job(spec: JobSpec, store: RunStore | None = None) -> JobOutcome:
    """Run (or resume, or serve from cache) one job.

    Parameters
    ----------
    spec:
        The job to execute.
    store:
        Optional run store.  When given, every completed stage is persisted
        under the job fingerprint, stored results are served without
        re-execution, and interrupted runs resume from the last completed
        stage.

    Returns
    -------
    JobOutcome
        The estimate plus provenance flags (``cached`` / ``resumed_from``).
    """
    fingerprint = spec.fingerprint()
    if store is not None:
        store.put_job(spec)
        result_payload = store.get_stage(fingerprint, "result")
        if result_payload is not None:
            return _outcome_from_result(
                fingerprint, result_payload, cached=True, resumed_from=None
            )

    pipeline = spec.build_pipeline()
    plan_result = pipeline.plan(spec.circuit, **spec.plan_arguments())
    if store is not None and not store.has_stage(fingerprint, "plan"):
        store.put_stage(fingerprint, "plan", plan_result.to_payload())
    decomposition = pipeline.decompose(plan_result)

    execution = None
    resumed_from = None
    if store is not None:
        execution_payload = store.get_stage(fingerprint, "execution")
        if execution_payload is not None:
            execution = Execution.from_payload(decomposition, execution_payload)
            resumed_from = "execution"
    if execution is None:
        execution = pipeline.execute(
            decomposition, spec.observable, spec.shots, seed=spec.seed
        )
        if store is not None:
            store.put_stage(fingerprint, "execution", execution.to_payload())

    result = pipeline.reconstruct(execution, compute_exact=spec.compute_exact)
    result_payload = result.to_payload()
    if store is not None:
        store.put_stage(fingerprint, "result", result_payload)
    return _outcome_from_result(
        fingerprint, result_payload, cached=False, resumed_from=resumed_from
    )
