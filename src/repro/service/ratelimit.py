"""Per-tenant token-bucket rate limiting and quotas for the job service.

The asyncio server admits each ``POST /jobs`` through a
:class:`TenantRateLimiter`: one :class:`TokenBucket` per tenant (identified
by the ``X-Tenant`` request header, ``"public"`` when absent) plus an
active-job quota.  A refused request surfaces as
:class:`~repro.exceptions.ServiceBusyError` carrying the HTTP status (429)
and a ``Retry-After`` hint, so well-behaved clients back off instead of
hammering the endpoint.

The clock is injectable, which keeps the tests deterministic — no sleeping,
no flaky timing assertions.
"""

from __future__ import annotations

import threading
import time

from repro.exceptions import ServiceBusyError, ServiceError

__all__ = ["TokenBucket", "TenantRateLimiter"]


class TokenBucket:
    """A standard token bucket: ``rate`` tokens/second, capacity ``burst``.

    Parameters
    ----------
    rate:
        Sustained refill rate in tokens per second (strictly positive).
    burst:
        Bucket capacity — the largest instantaneous burst admitted
        (strictly positive).
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if not rate > 0:
            raise ServiceError(f"rate must be strictly positive, got {rate!r}")
        if not burst > 0:
            raise ServiceError(f"burst must be strictly positive, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._updated) * self.rate)
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` from the bucket if available.

        Returns
        -------
        float
            ``0.0`` when the tokens were taken; otherwise the seconds until
            enough tokens will have refilled (the ``Retry-After`` hint) and
            the bucket is left untouched.
        """
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def available(self) -> float:
        """Current token count (after refilling to now)."""
        self._refill()
        return self._tokens


class TenantRateLimiter:
    """Admission control for job submissions: rate limits plus quotas.

    Parameters
    ----------
    rate:
        Per-tenant sustained submissions/second; ``None`` disables rate
        limiting.
    burst:
        Per-tenant burst capacity (defaults to ``max(rate, 1)`` rounded up).
    max_active:
        Per-tenant cap on queued+running jobs; ``None`` disables the quota.
    clock:
        Monotonic time source shared by all buckets.

    Examples
    --------
    >>> limiter = TenantRateLimiter(rate=100, burst=2)
    >>> limiter.admit("alice")
    >>> limiter.admit("alice")
    >>> try:
    ...     limiter.admit("alice")
    ... except Exception as error:
    ...     print(type(error).__name__)
    ServiceBusyError
    """

    def __init__(
        self,
        rate: float | None = None,
        burst: float | None = None,
        max_active: int | None = None,
        clock=time.monotonic,
    ):
        if rate is not None and not rate > 0:
            raise ServiceError(f"rate must be strictly positive, got {rate!r}")
        if burst is not None and not burst > 0:
            raise ServiceError(f"burst must be strictly positive, got {burst!r}")
        if max_active is not None and max_active < 1:
            raise ServiceError(f"max_active must be strictly positive, got {max_active!r}")
        self.rate = rate
        self.burst = burst if burst is not None else (max(rate, 1.0) if rate else None)
        self.max_active = max_active
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str, active_jobs: int = 0) -> None:
        """Admit one submission for ``tenant`` or raise.

        Parameters
        ----------
        tenant:
            The tenant identity (``X-Tenant`` header value).
        active_jobs:
            The tenant's current queued+running job count, checked against
            ``max_active``.

        Raises
        ------
        ServiceBusyError
            With HTTP status 429 when the tenant exceeded its rate limit or
            active-job quota; ``retry_after`` carries the back-off hint.
        """
        if self.max_active is not None and active_jobs >= self.max_active:
            raise ServiceBusyError(
                f"tenant {tenant!r} has {active_jobs} active jobs "
                f"(quota {self.max_active}); retry when one finishes",
                retry_after=1.0,
                status=429,
            )
        if self.rate is None:
            return
        with self._lock:
            wait = self._bucket(tenant).try_acquire()
        if wait > 0:
            raise ServiceBusyError(
                f"tenant {tenant!r} exceeded {self.rate:g} submissions/s "
                f"(burst {self.burst:g})",
                retry_after=max(wait, 0.05),
                status=429,
            )
