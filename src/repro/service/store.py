"""The :class:`RunStore`: content-addressed, durable pipeline artifacts.

Every :class:`~repro.pipeline.CutPipeline` stage artifact of a job is
persisted under the job's content fingerprint::

    <root>/runs/<fp[:2]>/<fp>/job.json        the JobSpec payload
    <root>/runs/<fp[:2]>/<fp>/plan.json       plan-stage summary
    <root>/runs/<fp[:2]>/<fp>/rounds.json     in-flight adaptive round records
                                              (rewritten atomically per round)
    <root>/runs/<fp[:2]>/<fp>/execution.json  per-term sampling statistics
    <root>/runs/<fp[:2]>/<fp>/result.json     the final estimate
    <root>/artifacts/<key>.json               free-form cached artifacts
                                              (experiment tables, benchmarks)

Writes are atomic (temp file + ``os.replace``), so a crash mid-write never
leaves a torn artifact: a stage file either exists completely or not at all.
That is what makes crash-resume safe — re-submitting an interrupted job
finds the last *completed* stage and continues from there, and because JSON
floats round-trip exactly, the resumed estimate is bitwise identical to an
uninterrupted run.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.exceptions import ServiceError
from repro.service.spec import JobSpec
from repro.utils.serialization import canonical_json

__all__ = ["RunStore", "STAGES"]

#: Stage-artifact names, in pipeline order (``rounds`` holds the in-flight
#: progress of an adaptive execution and is superseded by ``execution``).
STAGES = ("plan", "rounds", "execution", "result")

_FINGERPRINT_ALPHABET = set("0123456789abcdef")


def _check_fingerprint(fingerprint: str) -> str:
    """Validate a fingerprint before using it as a path component."""
    if (
        not isinstance(fingerprint, str)
        or len(fingerprint) < 8
        or not set(fingerprint) <= _FINGERPRINT_ALPHABET
    ):
        raise ServiceError(f"invalid run fingerprint {fingerprint!r}")
    return fingerprint


def _check_stage(stage: str) -> str:
    """Validate a stage name against :data:`STAGES`."""
    if stage not in STAGES:
        raise ServiceError(f"unknown stage {stage!r}; expected one of {STAGES}")
    return stage


class RunStore:
    """Content-addressed on-disk store of job artifacts.

    Parameters
    ----------
    root:
        Directory holding the store (created on first use).

    Examples
    --------
    >>> import tempfile
    >>> from repro.experiments import ghz_circuit
    >>> from repro.service import JobSpec, RunStore, run_job
    >>> store = RunStore(tempfile.mkdtemp())
    >>> spec = JobSpec(ghz_circuit(4), "ZZZZ", shots=2000, seed=7, max_fragment_width=3)
    >>> first = run_job(spec, store=store)
    >>> second = run_job(spec, store=store)   # served from the store
    >>> second.cached and second.value == first.value
    True
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    # -- low-level IO ------------------------------------------------------------------

    def _write_json_atomic(self, path: Path, payload) -> None:
        """Write canonical JSON to ``path`` atomically (temp file + replace)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        text = canonical_json(payload)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=f".{path.name}.", suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise

    def _read_json(self, path: Path):
        """Read a JSON artifact, translating corruption into ServiceError."""
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            raise ServiceError(f"corrupt store artifact {path}: {error}") from error

    # -- run layout --------------------------------------------------------------------

    def run_dir(self, fingerprint: str) -> Path:
        """Return the directory holding one run's artifacts."""
        fingerprint = _check_fingerprint(fingerprint)
        return self.root / "runs" / fingerprint[:2] / fingerprint

    # -- jobs --------------------------------------------------------------------------

    def put_job(self, spec: JobSpec) -> str:
        """Persist a job spec and return its fingerprint (idempotent)."""
        fingerprint = spec.fingerprint()
        path = self.run_dir(fingerprint) / "job.json"
        if not path.exists():
            self._write_json_atomic(path, spec.to_payload())
        return fingerprint

    def load_job(self, fingerprint: str) -> JobSpec:
        """Load the job spec stored under ``fingerprint``.

        Raises
        ------
        ServiceError
            When no job with that fingerprint is stored.
        """
        payload = self._read_json(self.run_dir(fingerprint) / "job.json")
        if payload is None:
            raise ServiceError(f"no stored job with fingerprint {fingerprint!r}")
        return JobSpec.from_payload(payload)

    def has_job(self, fingerprint: str) -> bool:
        """Return True when a job spec is stored under ``fingerprint``."""
        return (self.run_dir(fingerprint) / "job.json").exists()

    # -- stage artifacts ----------------------------------------------------------------

    def put_stage(self, fingerprint: str, stage: str, payload: dict) -> None:
        """Persist one stage artifact payload (atomic overwrite)."""
        _check_stage(stage)
        self._write_json_atomic(self.run_dir(fingerprint) / f"{stage}.json", payload)

    def get_stage(self, fingerprint: str, stage: str) -> dict | None:
        """Return a stage artifact payload, or ``None`` when not stored."""
        _check_stage(stage)
        return self._read_json(self.run_dir(fingerprint) / f"{stage}.json")

    def has_stage(self, fingerprint: str, stage: str) -> bool:
        """Return True when the stage artifact exists."""
        _check_stage(stage)
        return (self.run_dir(fingerprint) / f"{stage}.json").exists()

    def completed_stages(self, fingerprint: str) -> tuple[str, ...]:
        """Return the stored stage names of a run, in pipeline order."""
        return tuple(stage for stage in STAGES if self.has_stage(fingerprint, stage))

    def delete_run(self, fingerprint: str) -> bool:
        """Delete every artifact of one run; returns True when anything was removed."""
        directory = self.run_dir(fingerprint)
        if not directory.exists():
            return False
        for path in directory.iterdir():
            path.unlink()
        directory.rmdir()
        return True

    def list_runs(self) -> list[dict]:
        """Return one summary row per stored run (sorted by fingerprint).

        Each row carries the fingerprint, the completed stages, and — when
        the job spec is stored — the headline job parameters.
        """
        runs_root = self.root / "runs"
        rows: list[dict] = []
        if not runs_root.exists():
            return rows
        for directory in sorted(runs_root.glob("*/*")):
            if not directory.is_dir():
                continue
            fingerprint = directory.name
            row: dict = {
                "fingerprint": fingerprint,
                "stages": list(self.completed_stages(fingerprint)),
            }
            job = self._read_json(directory / "job.json")
            if job is not None:
                row["shots"] = job.get("shots")
                row["seed"] = job.get("seed")
                row["observable"] = job.get("observable")
                row["backend"] = job.get("backend")
                circuit = job.get("circuit") or {}
                row["circuit"] = circuit.get("name")
                row["num_qubits"] = circuit.get("num_qubits")
            rows.append(row)
        return rows

    # -- free-form artifacts -------------------------------------------------------------

    def put_artifact(self, key: str, payload) -> None:
        """Persist a free-form JSON artifact under ``key``.

        Experiments use this to cache whole result tables keyed by a config
        fingerprint (the CLI's ``--store`` flag on ``figure6``/``ablations``).
        """
        _check_fingerprint(key)
        self._write_json_atomic(self.root / "artifacts" / f"{key}.json", payload)

    def get_artifact(self, key: str):
        """Return the artifact stored under ``key``, or ``None``."""
        _check_fingerprint(key)
        return self._read_json(self.root / "artifacts" / f"{key}.json")
