"""The :class:`RunStore`: content-addressed, durable pipeline artifacts.

Since the service-hardening pass the store is backed by a **SQLite index in
WAL mode** plus a **content-addressed blob table** instead of one JSON file
per artifact::

    <root>/index.sqlite3      WAL-mode SQLite database
        blobs(key, payload)         canonical-JSON payloads keyed by their
                                    BLAKE2b content fingerprint — two runs
                                    whose plan (or execution, or result)
                                    payloads are identical share ONE row
        stages(fingerprint, stage, blob_key)
                                    the run index: which blob holds which
                                    stage of which job fingerprint
        artifacts(key, blob_key)    free-form artifacts (experiment tables)

Writes are transactional (``BEGIN IMMEDIATE`` + WAL), so a crash mid-write
never leaves a torn artifact: a stage row either exists completely or not at
all.  That is what makes crash-resume safe — re-submitting an interrupted
job finds the last *completed* stage and continues from there, and because
canonical JSON floats round-trip exactly, the resumed estimate is bitwise
identical to an uninterrupted run.  WAL mode lets any number of readers
proceed while one writer commits, and SQLite's file locking arbitrates
writers from separate processes (``busy_timeout`` retries transparently).

**Legacy layout.**  Stores written before the SQLite index used one JSON
file per artifact under ``runs/<fp[:2]>/<fp>/<stage>.json``.  Every read
falls through to that layout, so an old store keeps working unmodified;
:meth:`RunStore.migrate_legacy` ingests the legacy files into the index in
one shot (``repro store migrate``).  :meth:`RunStore.list_runs` always
returns a single de-duplicated view across both layouts.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
from pathlib import Path

from repro.exceptions import ServiceError
from repro.service.spec import JobSpec
from repro.utils.serialization import canonical_json

__all__ = ["RunStore", "STAGES"]

#: Stage-artifact names, in pipeline order (``rounds`` holds the in-flight
#: progress of an adaptive execution and is superseded by ``execution``).
STAGES = ("plan", "rounds", "execution", "result")

#: Internal stage names: the job spec itself is stored as a pseudo-stage.
_ALL_STAGES = ("job",) + STAGES

#: SQLite schema version recorded in ``PRAGMA user_version``.
_SCHEMA_VERSION = 1

#: How long a writer waits on a locked database before failing (seconds).
_BUSY_TIMEOUT = 30.0

_FINGERPRINT_ALPHABET = set("0123456789abcdef")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS blobs (
    key     TEXT PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS stages (
    fingerprint TEXT NOT NULL,
    stage       TEXT NOT NULL,
    blob_key    TEXT NOT NULL,
    PRIMARY KEY (fingerprint, stage)
);
CREATE INDEX IF NOT EXISTS idx_stages_blob ON stages(blob_key);
CREATE TABLE IF NOT EXISTS artifacts (
    key      TEXT PRIMARY KEY,
    blob_key TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_artifacts_blob ON artifacts(blob_key);
"""


def _check_fingerprint(fingerprint: str) -> str:
    """Validate a fingerprint before using it as a key or path component."""
    if (
        not isinstance(fingerprint, str)
        or len(fingerprint) < 8
        or not set(fingerprint) <= _FINGERPRINT_ALPHABET
    ):
        raise ServiceError(f"invalid run fingerprint {fingerprint!r}")
    return fingerprint


def _check_stage(stage: str) -> str:
    """Validate a stage name against :data:`STAGES`."""
    if stage not in STAGES:
        raise ServiceError(f"unknown stage {stage!r}; expected one of {STAGES}")
    return stage


class RunStore:
    """Content-addressed durable store of job artifacts (SQLite-WAL backed).

    Parameters
    ----------
    root:
        Directory holding the store (created on first use).  The SQLite
        index lives at ``<root>/index.sqlite3``; legacy per-file layouts
        under ``<root>/runs/`` are read transparently.

    Examples
    --------
    >>> import tempfile
    >>> from repro.experiments import ghz_circuit
    >>> from repro.service import JobSpec, RunStore, run_job
    >>> store = RunStore(tempfile.mkdtemp())
    >>> spec = JobSpec(ghz_circuit(4), "ZZZZ", shots=2000, seed=7, max_fragment_width=3)
    >>> first = run_job(spec, store=store)
    >>> second = run_job(spec, store=store)   # served from the store
    >>> second.cached and second.value == first.value
    True
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._local = threading.local()

    # -- connection management ----------------------------------------------------------

    @property
    def database_path(self) -> Path:
        """Path of the SQLite index database."""
        return self.root / "index.sqlite3"

    def _connection(self) -> sqlite3.Connection:
        """Return this thread's SQLite connection, creating it on first use."""
        conn = getattr(self._local, "conn", None)
        if conn is None:
            self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.database_path, timeout=_BUSY_TIMEOUT, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT * 1000)}")
            conn.executescript(_SCHEMA)
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            if version == 0:
                conn.execute(f"PRAGMA user_version={_SCHEMA_VERSION}")
            elif version != _SCHEMA_VERSION:
                raise ServiceError(
                    f"store {self.root} has schema version {version}; this build "
                    f"speaks version {_SCHEMA_VERSION}"
                )
            self._local.conn = conn
        return conn

    def close(self) -> None:
        """Close this thread's SQLite connection (a no-op when never opened)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    # -- low-level IO -------------------------------------------------------------------

    def _put_blob(self, conn: sqlite3.Connection, payload) -> str:
        """Insert a payload into the blob table; return its content key."""
        text = canonical_json(payload)
        key = hashlib.blake2b(text.encode(), digest_size=16).hexdigest()
        conn.execute("INSERT OR IGNORE INTO blobs(key, payload) VALUES(?, ?)", (key, text))
        return key

    def _get_blob(self, conn: sqlite3.Connection, key: str):
        """Return the parsed payload of one blob, or ``None``."""
        row = conn.execute("SELECT payload FROM blobs WHERE key = ?", (key,)).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def _prune_blob(self, conn: sqlite3.Connection, key: str) -> None:
        """Delete a blob when no stage or artifact references it any more."""
        referenced = conn.execute(
            "SELECT 1 FROM stages WHERE blob_key = ? LIMIT 1", (key,)
        ).fetchone()
        if referenced is None:
            referenced = conn.execute(
                "SELECT 1 FROM artifacts WHERE blob_key = ? LIMIT 1", (key,)
            ).fetchone()
        if referenced is None:
            conn.execute("DELETE FROM blobs WHERE key = ?", (key,))

    def _put_stage_row(self, fingerprint: str, stage: str, payload) -> None:
        """Transactionally upsert one stage row (and prune the replaced blob)."""
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            previous = conn.execute(
                "SELECT blob_key FROM stages WHERE fingerprint = ? AND stage = ?",
                (fingerprint, stage),
            ).fetchone()
            key = self._put_blob(conn, payload)
            conn.execute(
                "INSERT OR REPLACE INTO stages(fingerprint, stage, blob_key) VALUES(?,?,?)",
                (fingerprint, stage, key),
            )
            if previous is not None and previous[0] != key:
                self._prune_blob(conn, previous[0])
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def _get_stage_row(self, fingerprint: str, stage: str):
        """Return one stage payload from the index, or ``None``."""
        conn = self._connection()
        row = conn.execute(
            "SELECT blob_key FROM stages WHERE fingerprint = ? AND stage = ?",
            (fingerprint, stage),
        ).fetchone()
        if row is None:
            return None
        return self._get_blob(conn, row[0])

    # -- legacy per-file layout ---------------------------------------------------------

    def run_dir(self, fingerprint: str) -> Path:
        """Return the *legacy* directory of one run's per-file artifacts.

        New writes go to the SQLite index; this path exists so old stores
        keep being readable and :meth:`migrate_legacy` knows where to look.
        """
        fingerprint = _check_fingerprint(fingerprint)
        return self.root / "runs" / fingerprint[:2] / fingerprint

    def _read_legacy_json(self, path: Path):
        """Read a legacy JSON artifact, translating corruption into ServiceError."""
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except json.JSONDecodeError as error:
            raise ServiceError(f"corrupt store artifact {path}: {error}") from error

    def _legacy_stage(self, fingerprint: str, stage: str):
        """Return a stage payload from the legacy layout, or ``None``."""
        return self._read_legacy_json(self.run_dir(fingerprint) / f"{stage}.json")

    def _legacy_fingerprints(self) -> set[str]:
        """Return the fingerprints present in the legacy directory layout."""
        runs_root = self.root / "runs"
        found: set[str] = set()
        if not runs_root.exists():
            return found
        for directory in runs_root.glob("*/*"):
            if directory.is_dir():
                found.add(directory.name)
        return found

    # -- jobs ---------------------------------------------------------------------------

    def put_job(self, spec: JobSpec) -> str:
        """Persist a job spec and return its fingerprint (idempotent)."""
        fingerprint = spec.fingerprint()
        if not self.has_job(fingerprint):
            self._put_stage_row(fingerprint, "job", spec.to_payload())
        return fingerprint

    def load_job(self, fingerprint: str) -> JobSpec:
        """Load the job spec stored under ``fingerprint``.

        Raises
        ------
        ServiceError
            When no job with that fingerprint is stored.
        """
        _check_fingerprint(fingerprint)
        payload = self._get_stage_row(fingerprint, "job")
        if payload is None:
            payload = self._legacy_stage(fingerprint, "job")
        if payload is None:
            raise ServiceError(f"no stored job with fingerprint {fingerprint!r}")
        return JobSpec.from_payload(payload)

    def has_job(self, fingerprint: str) -> bool:
        """Return True when a job spec is stored under ``fingerprint``."""
        _check_fingerprint(fingerprint)
        if self._get_stage_row(fingerprint, "job") is not None:
            return True
        return (self.run_dir(fingerprint) / "job.json").exists()

    # -- stage artifacts ----------------------------------------------------------------

    def put_stage(self, fingerprint: str, stage: str, payload: dict) -> None:
        """Persist one stage artifact payload (transactional overwrite)."""
        _check_stage(stage)
        _check_fingerprint(fingerprint)
        self._put_stage_row(fingerprint, stage, payload)

    def get_stage(self, fingerprint: str, stage: str) -> dict | None:
        """Return a stage artifact payload, or ``None`` when not stored.

        The SQLite index is consulted first; a miss falls through to the
        legacy per-file layout so pre-migration stores keep working.
        """
        _check_stage(stage)
        _check_fingerprint(fingerprint)
        payload = self._get_stage_row(fingerprint, stage)
        if payload is None:
            payload = self._legacy_stage(fingerprint, stage)
        return payload

    def has_stage(self, fingerprint: str, stage: str) -> bool:
        """Return True when the stage artifact exists (either layout)."""
        _check_stage(stage)
        _check_fingerprint(fingerprint)
        if self._get_stage_row(fingerprint, stage) is not None:
            return True
        return (self.run_dir(fingerprint) / f"{stage}.json").exists()

    def delete_stage(self, fingerprint: str, stage: str) -> bool:
        """Delete one stage artifact from both layouts; True when anything was removed."""
        _check_stage(stage)
        _check_fingerprint(fingerprint)
        removed = False
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT blob_key FROM stages WHERE fingerprint = ? AND stage = ?",
                (fingerprint, stage),
            ).fetchone()
            if row is not None:
                conn.execute(
                    "DELETE FROM stages WHERE fingerprint = ? AND stage = ?",
                    (fingerprint, stage),
                )
                self._prune_blob(conn, row[0])
                removed = True
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        legacy = self.run_dir(fingerprint) / f"{stage}.json"
        if legacy.exists():
            legacy.unlink()
            removed = True
        return removed

    def completed_stages(self, fingerprint: str) -> tuple[str, ...]:
        """Return the stored stage names of a run, in pipeline order."""
        return tuple(stage for stage in STAGES if self.has_stage(fingerprint, stage))

    def delete_run(self, fingerprint: str) -> bool:
        """Delete every artifact of one run; returns True when anything was removed."""
        _check_fingerprint(fingerprint)
        removed = False
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            rows = conn.execute(
                "SELECT blob_key FROM stages WHERE fingerprint = ?", (fingerprint,)
            ).fetchall()
            if rows:
                conn.execute("DELETE FROM stages WHERE fingerprint = ?", (fingerprint,))
                for (key,) in rows:
                    self._prune_blob(conn, key)
                removed = True
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        directory = self.run_dir(fingerprint)
        if directory.exists():
            for path in directory.iterdir():
                path.unlink()
            directory.rmdir()
            removed = True
        return removed

    # -- listing ------------------------------------------------------------------------

    def _indexed_fingerprints(self) -> set[str]:
        """Return the fingerprints present in the SQLite index."""
        conn = self._connection()
        rows = conn.execute("SELECT DISTINCT fingerprint FROM stages").fetchall()
        return {fp for (fp,) in rows}

    def list_runs(
        self,
        limit: int | None = None,
        offset: int = 0,
        stage: str | None = None,
    ) -> list[dict]:
        """Return one summary row per stored run, de-duplicated across layouts.

        Parameters
        ----------
        limit:
            Page size; ``None`` returns every row.
        offset:
            Number of rows to skip (after sorting and filtering).
        stage:
            Only return runs whose ``stage`` artifact is stored (e.g.
            ``"result"`` for finished runs).

        Returns
        -------
        list of dict
            Rows sorted by fingerprint.  A run that exists in both the
            SQLite index and the legacy directory layout appears exactly
            once, its ``stages`` being the union of both layouts.
        """
        if stage is not None:
            _check_stage(stage)
        if offset < 0:
            raise ServiceError(f"offset must be non-negative, got {offset}")
        if limit is not None and limit < 0:
            raise ServiceError(f"limit must be non-negative, got {limit}")
        fingerprints = sorted(self._indexed_fingerprints() | self._legacy_fingerprints())
        rows: list[dict] = []
        selected = 0
        for fingerprint in fingerprints:
            stages = self.completed_stages(fingerprint)
            if stage is not None and stage not in stages:
                continue
            selected += 1
            if selected <= offset:
                continue
            if limit is not None and len(rows) >= limit:
                break
            row: dict = {"fingerprint": fingerprint, "stages": list(stages)}
            job = self._get_stage_row(fingerprint, "job")
            if job is None:
                job = self._legacy_stage(fingerprint, "job")
            if job is not None:
                row["shots"] = job.get("shots")
                row["seed"] = job.get("seed")
                row["observable"] = job.get("observable")
                row["backend"] = job.get("backend")
                circuit = job.get("circuit") or {}
                row["circuit"] = circuit.get("name")
                row["num_qubits"] = circuit.get("num_qubits")
            rows.append(row)
        return rows

    def count_runs(self, stage: str | None = None) -> int:
        """Return the number of stored runs (optionally with a stage filter)."""
        if stage is None:
            return len(self._indexed_fingerprints() | self._legacy_fingerprints())
        _check_stage(stage)
        return sum(
            1
            for fingerprint in self._indexed_fingerprints() | self._legacy_fingerprints()
            if stage in self.completed_stages(fingerprint)
        )

    # -- free-form artifacts ------------------------------------------------------------

    def put_artifact(self, key: str, payload) -> None:
        """Persist a free-form JSON artifact under ``key``.

        Experiments use this to cache whole result tables keyed by a config
        fingerprint (the CLI's ``--store`` flag on ``figure6``/``ablations``).
        """
        _check_fingerprint(key)
        conn = self._connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            previous = conn.execute(
                "SELECT blob_key FROM artifacts WHERE key = ?", (key,)
            ).fetchone()
            blob_key = self._put_blob(conn, payload)
            conn.execute(
                "INSERT OR REPLACE INTO artifacts(key, blob_key) VALUES(?, ?)",
                (key, blob_key),
            )
            if previous is not None and previous[0] != blob_key:
                self._prune_blob(conn, previous[0])
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def get_artifact(self, key: str):
        """Return the artifact stored under ``key``, or ``None``."""
        _check_fingerprint(key)
        conn = self._connection()
        row = conn.execute("SELECT blob_key FROM artifacts WHERE key = ?", (key,)).fetchone()
        if row is not None:
            return self._get_blob(conn, row[0])
        return self._read_legacy_json(self.root / "artifacts" / f"{key}.json")

    # -- telemetry artifacts --------------------------------------------------------------

    @staticmethod
    def artifact_key(fingerprint: str, kind: str) -> str:
        """Return the derived artifact key of one telemetry ``kind`` of a run.

        The key is a fingerprint-shaped BLAKE2b digest of
        ``"<fingerprint>:<kind>"``, so telemetry artifacts share the
        free-form artifact table without colliding with run fingerprints or
        each other.
        """
        _check_fingerprint(fingerprint)
        return hashlib.blake2b(
            f"{fingerprint}:{kind}".encode(), digest_size=16
        ).hexdigest()

    def put_trace(self, fingerprint: str, payload: dict) -> None:
        """Persist a run's span-tree payload (:meth:`.Tracer.to_payload`)."""
        self.put_artifact(self.artifact_key(fingerprint, "trace"), payload)

    def get_trace(self, fingerprint: str) -> dict | None:
        """Return a run's persisted span tree, or ``None``."""
        return self.get_artifact(self.artifact_key(fingerprint, "trace"))

    def put_profile(self, fingerprint: str, payload: dict) -> None:
        """Persist a run's per-stage profile (:meth:`.StageProfiler.to_payload`)."""
        self.put_artifact(self.artifact_key(fingerprint, "profile"), payload)

    def get_profile(self, fingerprint: str) -> dict | None:
        """Return a run's persisted per-stage profile, or ``None``."""
        return self.get_artifact(self.artifact_key(fingerprint, "profile"))

    # -- migration + accounting ---------------------------------------------------------

    def migrate_legacy(self, remove: bool = False) -> dict:
        """Ingest every legacy per-file artifact into the SQLite index.

        Parameters
        ----------
        remove:
            Delete the legacy files after a successful ingest (the default
            keeps them, so the migration is reversible by deleting
            ``index.sqlite3``).

        Returns
        -------
        dict
            Counters: ``runs`` and ``stages`` ingested, ``artifacts``
            ingested, and ``skipped`` stage files whose fingerprint+stage
            was already indexed (the index wins — it is newer).
        """
        counters = {"runs": 0, "stages": 0, "artifacts": 0, "skipped": 0}
        for fingerprint in sorted(self._legacy_fingerprints()):
            directory = self.run_dir(fingerprint)
            migrated_any = False
            for stage in _ALL_STAGES:
                path = directory / f"{stage}.json"
                if not path.exists():
                    continue
                if self._get_stage_row(fingerprint, stage) is not None:
                    counters["skipped"] += 1
                else:
                    payload = self._read_legacy_json(path)
                    if payload is None:  # pragma: no cover - racing deletion
                        continue
                    self._put_stage_row(fingerprint, stage, payload)
                    counters["stages"] += 1
                    migrated_any = True
                if remove:
                    path.unlink()
            if migrated_any:
                counters["runs"] += 1
            if remove and directory.exists() and not any(directory.iterdir()):
                directory.rmdir()
        artifacts_root = self.root / "artifacts"
        if artifacts_root.exists():
            conn = self._connection()
            for path in sorted(artifacts_root.glob("*.json")):
                key = path.stem
                row = conn.execute(
                    "SELECT 1 FROM artifacts WHERE key = ?", (key,)
                ).fetchone()
                if row is None:
                    payload = self._read_legacy_json(path)
                    if payload is None:  # pragma: no cover - racing deletion
                        continue
                    self.put_artifact(key, payload)
                    counters["artifacts"] += 1
                else:
                    counters["skipped"] += 1
                if remove:
                    path.unlink()
        return counters

    def stats(self) -> dict:
        """Return store accounting: row counts and the blob dedup ratio.

        ``dedup_ratio`` is references-per-blob: how many stage/artifact rows
        each stored payload serves on average (1.0 means no sharing).
        """
        conn = self._connection()
        blobs = conn.execute("SELECT COUNT(*) FROM blobs").fetchone()[0]
        stage_rows = conn.execute("SELECT COUNT(*) FROM stages").fetchone()[0]
        artifact_rows = conn.execute("SELECT COUNT(*) FROM artifacts").fetchone()[0]
        references = stage_rows + artifact_rows
        return {
            "blobs": blobs,
            "stage_rows": stage_rows,
            "artifact_rows": artifact_rows,
            "legacy_runs": len(self._legacy_fingerprints()),
            "dedup_ratio": round(references / blobs, 4) if blobs else 1.0,
        }
