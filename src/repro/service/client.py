"""Stdlib HTTP client for the job service (``repro jobs`` uses this).

:class:`ServiceClient` wraps :mod:`urllib.request` so neither the CLI nor
tests need a third-party HTTP library.  All errors — connection refused,
non-2xx responses, malformed bodies — surface as
:class:`~repro.exceptions.ServiceError` with the server's message attached;
a 429/503 refusal surfaces as :class:`~repro.exceptions.ServiceBusyError`
carrying the server's ``Retry-After`` hint.

:meth:`ServiceClient.events` consumes the asyncio server's SSE stream
(``GET /jobs/<id>/events``): it yields each event as a dict and transparently
reconnects with ``Last-Event-ID`` when the connection drops mid-stream, so a
consumer sees every round exactly once and in order even across a server
restart.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from collections.abc import Iterator

from repro.exceptions import ServiceBusyError, ServiceError
from repro.service.spec import JobSpec
from repro.utils.serialization import canonical_json

__all__ = ["ServiceClient"]

#: Event names that terminate an SSE stream.
_TERMINAL_EVENTS = ("result", "failed", "end")


class ServiceClient:
    """Talk to a running ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        Service root, e.g. ``"http://127.0.0.1:8765"``.
    timeout:
        Per-request socket timeout in seconds.
    tenant:
        Optional tenant identity sent as the ``X-Tenant`` header on every
        submission (rate limits and quotas are accounted per tenant).

    Examples
    --------
    >>> client = ServiceClient("http://127.0.0.1:8765")      # doctest: +SKIP
    >>> job = client.submit(spec)                            # doctest: +SKIP
    >>> client.wait(job["job_id"])["value"]                  # doctest: +SKIP
    """

    def __init__(self, base_url: str, timeout: float = 30.0, tenant: str | None = None):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.tenant = tenant

    # -- transport ---------------------------------------------------------------------

    def _request(self, path: str, body: dict | None = None, expect: tuple[int, ...] = (200,)):
        """Issue one JSON request; return ``(status, parsed_body)``."""
        url = f"{self.base_url}{path}"
        data = None if body is None else canonical_json(body).encode()
        headers = {}
        if data is not None:
            headers["Content-Type"] = "application/json"
            if self.tenant is not None:
                headers["X-Tenant"] = self.tenant
        request = urllib.request.Request(
            url,
            data=data,
            headers=headers,
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                status = response.status
                payload = json.loads(response.read() or b"null")
        except urllib.error.HTTPError as error:
            detail = error.read()
            try:
                message = json.loads(detail).get("error", detail.decode(errors="replace"))
            except (json.JSONDecodeError, AttributeError):
                message = detail.decode(errors="replace")
            if error.code in (429, 503):
                try:
                    retry_after = float(error.headers.get("Retry-After", 1.0))
                except (TypeError, ValueError):
                    retry_after = 1.0
                raise ServiceBusyError(
                    f"{url} returned {error.code}: {message}",
                    retry_after=retry_after,
                    status=error.code,
                ) from None
            raise ServiceError(f"{url} returned {error.code}: {message}") from None
        except (urllib.error.URLError, OSError) as error:
            raise ServiceError(f"cannot reach {url}: {error}") from error
        except json.JSONDecodeError as error:
            raise ServiceError(f"{url} returned a non-JSON body: {error}") from error
        if status not in expect:
            raise ServiceError(f"{url} returned unexpected status {status}")
        return status, payload

    @staticmethod
    def _paged(path: str, limit: int | None, offset: int, **filters: str | None) -> str:
        """Append pagination/filter query parameters to a path."""
        params = {}
        if limit is not None:
            params["limit"] = str(limit)
        if offset:
            params["offset"] = str(offset)
        for name, value in filters.items():
            if value is not None:
                params[name] = value
        if not params:
            return path
        return f"{path}?{urllib.parse.urlencode(params)}"

    # -- endpoints ---------------------------------------------------------------------

    def health(self) -> dict:
        """Return the service's ``/healthz`` summary."""
        return self._request("/healthz")[1]

    def submit(self, spec: JobSpec | dict) -> dict:
        """Submit a job (spec instance or raw payload); return its status row.

        Raises
        ------
        ServiceBusyError
            When the service refused the submission (rate limit, quota, or
            drain); ``retry_after`` carries the back-off hint.
        """
        payload = spec.to_payload() if isinstance(spec, JobSpec) else spec
        return self._request("/jobs", body=payload, expect=(200, 201))[1]

    def status(self, job_id: str) -> dict:
        """Return one job's status row."""
        return self._request(f"/jobs/{job_id}")[1]

    def jobs(
        self, limit: int | None = None, offset: int = 0, state: str | None = None
    ) -> list[dict]:
        """Return submitted-job statuses, paginated and state-filtered."""
        return self._request(self._paged("/jobs", limit, offset, state=state))[1]

    def runs(
        self, limit: int | None = None, offset: int = 0, stage: str | None = None
    ) -> list[dict]:
        """Return the runs persisted in the service's store, paginated."""
        return self._request(self._paged("/runs", limit, offset, stage=stage))[1]

    def result(self, job_id: str) -> dict | None:
        """Return a job's outcome payload, or ``None`` while it is pending."""
        status, payload = self._request(f"/jobs/{job_id}/result", expect=(200, 202))
        return payload if status == 200 else None

    def wait(self, job_id: str, timeout: float = 120.0, poll_interval: float = 0.05) -> dict:
        """Poll until a job finishes and return its outcome payload.

        Raises
        ------
        ServiceError
            When the job fails server-side or ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.result(job_id)
            if payload is not None:
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(f"job {job_id!r} did not finish within {timeout}s")
            time.sleep(poll_interval)

    # -- streaming ---------------------------------------------------------------------

    def _open_stream(self, job_id: str, after: int):
        """Open one SSE connection, resuming past round index ``after``."""
        url = f"{self.base_url}/jobs/{job_id}/events"
        if after >= 0:
            url += f"?after={after}"
        request = urllib.request.Request(
            url,
            headers={} if after < 0 else {"Last-Event-ID": str(after)},
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            detail = error.read()
            try:
                message = json.loads(detail).get("error", detail.decode(errors="replace"))
            except (json.JSONDecodeError, AttributeError):
                message = detail.decode(errors="replace")
            raise ServiceError(f"{url} returned {error.code}: {message}") from None
        except (urllib.error.URLError, OSError) as error:
            raise ServiceError(f"cannot reach {url}: {error}") from error

    @staticmethod
    def _parse_sse(stream) -> Iterator[dict]:
        """Yield ``{"event", "id", "data"}`` dicts from one SSE byte stream."""
        event: dict = {}
        for raw in stream:
            line = raw.decode().rstrip("\n").rstrip("\r")
            if not line:
                if "data" in event:
                    yield event
                event = {}
                continue
            name, _, value = line.partition(":")
            value = value.lstrip(" ")
            if name == "event":
                event["event"] = value
            elif name == "id":
                event["id"] = int(value)
            elif name == "data":
                event["data"] = json.loads(value)
        if "data" in event:  # stream closed without a trailing blank line
            yield event

    def events(
        self,
        job_id: str,
        after: int = -1,
        reconnect: bool = True,
        max_reconnects: int = 100,
        reconnect_delay: float = 0.2,
    ) -> Iterator[dict]:
        """Stream a job's events: every round exactly once, in order.

        Yields dicts shaped ``{"event": name, "id": index?, "data": {...}}``.
        ``round`` events carry ``data["round"]`` (one
        :class:`~repro.qpd.adaptive.RoundRecord` payload) and
        ``data["progress"]``; the stream ends after a terminal ``result`` /
        ``failed`` / ``end`` event.

        Parameters
        ----------
        job_id:
            The job fingerprint.
        after:
            Resume past this round index (``-1`` streams from the start).
        reconnect:
            Reconnect with ``Last-Event-ID`` when the connection drops
            before a terminal event (e.g. across a server restart).
        max_reconnects:
            Reconnection budget before giving up.
        reconnect_delay:
            Seconds to wait before each reconnection attempt.
        """
        last_id = after
        attempts = 0
        while True:
            try:
                stream = self._open_stream(job_id, last_id)
                with stream:
                    for event in self._parse_sse(stream):
                        if "id" in event:
                            last_id = max(last_id, event["id"])
                        yield event
                        if event.get("event") in _TERMINAL_EVENTS:
                            return
            except (ServiceError, OSError):
                if not reconnect:
                    raise
            # The stream ended without a terminal event: the server went
            # away mid-run.  Resume from the last seen round index.
            attempts += 1
            if not reconnect or attempts > max_reconnects:
                raise ServiceError(
                    f"event stream for job {job_id!r} ended without a terminal event"
                )
            time.sleep(reconnect_delay)

    def watch(self, job_id: str, after: int = -1) -> Iterator[dict]:
        """Stream only the ``round`` payloads of :meth:`events`.

        Yields each round's ``data`` dict (``{"round": ..., "progress": ...}``)
        in index order; returns when the job settles.
        """
        for event in self.events(job_id, after=after):
            if event.get("event") == "round":
                yield event["data"]
