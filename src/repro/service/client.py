"""Stdlib HTTP client for the job service (``repro jobs`` uses this).

:class:`ServiceClient` wraps :mod:`urllib.request` so neither the CLI nor
tests need a third-party HTTP library.  All errors — connection refused,
non-2xx responses, malformed bodies — surface as
:class:`~repro.exceptions.ServiceError` with the server's message attached.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.exceptions import ServiceError
from repro.service.spec import JobSpec
from repro.utils.serialization import canonical_json

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a running ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        Service root, e.g. ``"http://127.0.0.1:8765"``.
    timeout:
        Per-request socket timeout in seconds.

    Examples
    --------
    >>> client = ServiceClient("http://127.0.0.1:8765")      # doctest: +SKIP
    >>> job = client.submit(spec)                            # doctest: +SKIP
    >>> client.wait(job["job_id"])["value"]                  # doctest: +SKIP
    """

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ---------------------------------------------------------------------

    def _request(self, path: str, body: dict | None = None, expect: tuple[int, ...] = (200,)):
        """Issue one JSON request; return ``(status, parsed_body)``."""
        url = f"{self.base_url}{path}"
        data = None if body is None else canonical_json(body).encode()
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                status = response.status
                payload = json.loads(response.read() or b"null")
        except urllib.error.HTTPError as error:
            detail = error.read()
            try:
                message = json.loads(detail).get("error", detail.decode(errors="replace"))
            except (json.JSONDecodeError, AttributeError):
                message = detail.decode(errors="replace")
            raise ServiceError(f"{url} returned {error.code}: {message}") from None
        except (urllib.error.URLError, OSError) as error:
            raise ServiceError(f"cannot reach {url}: {error}") from error
        except json.JSONDecodeError as error:
            raise ServiceError(f"{url} returned a non-JSON body: {error}") from error
        if status not in expect:
            raise ServiceError(f"{url} returned unexpected status {status}")
        return status, payload

    # -- endpoints ---------------------------------------------------------------------

    def health(self) -> dict:
        """Return the service's ``/healthz`` summary."""
        return self._request("/healthz")[1]

    def submit(self, spec: JobSpec | dict) -> dict:
        """Submit a job (spec instance or raw payload); return its status row."""
        payload = spec.to_payload() if isinstance(spec, JobSpec) else spec
        return self._request("/jobs", body=payload, expect=(200, 201))[1]

    def status(self, job_id: str) -> dict:
        """Return one job's status row."""
        return self._request(f"/jobs/{job_id}")[1]

    def jobs(self) -> list[dict]:
        """Return the status of every job the service knows about."""
        return self._request("/jobs")[1]

    def runs(self) -> list[dict]:
        """Return the runs persisted in the service's store."""
        return self._request("/runs")[1]

    def result(self, job_id: str) -> dict | None:
        """Return a job's outcome payload, or ``None`` while it is pending."""
        status, payload = self._request(f"/jobs/{job_id}/result", expect=(200, 202))
        return payload if status == 200 else None

    def wait(self, job_id: str, timeout: float = 120.0, poll_interval: float = 0.05) -> dict:
        """Poll until a job finishes and return its outcome payload.

        Raises
        ------
        ServiceError
            When the job fails server-side or ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            payload = self.result(job_id)
            if payload is not None:
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(f"job {job_id!r} did not finish within {timeout}s")
            time.sleep(poll_interval)
