"""The ``repro serve`` HTTP/JSON endpoint (stdlib only).

A thin :mod:`http.server` front-end over :class:`~repro.service.scheduler.JobScheduler`
and :class:`~repro.service.store.RunStore`.  Routes:

==============================  ==============================================
``GET  /healthz``               liveness + job counters
``POST /jobs``                  submit a :class:`~repro.service.spec.JobSpec`
                                payload; returns ``{"job_id", "state"}``
``GET  /jobs``                  list every submitted job
``GET  /jobs/<id>``             one job's status
``GET  /jobs/<id>/result``      the outcome (``202`` while pending,
                                ``500`` + error when the job failed)
``GET  /runs``                  runs persisted in the store
==============================  ==============================================

The server is a :class:`~http.server.ThreadingHTTPServer`, so polling
clients never block a running submission; all heavy work happens on the
scheduler's bounded worker pool.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ReproError, ServiceError
from repro.service.scheduler import JobScheduler
from repro.service.spec import JobSpec
from repro.service.store import RunStore
from repro.utils.serialization import canonical_json

__all__ = ["RunService", "make_server", "serve"]

#: Largest accepted request body (a guard against accidental huge uploads).
MAX_BODY_BYTES = 32 * 1024 * 1024


class RunService:
    """The service facade the HTTP handler (and tests) talk to.

    Parameters
    ----------
    store:
        Optional run store for durable artifacts and result reuse.
    workers:
        Scheduler worker-pool size (validated strictly positive).
    mode:
        Scheduler pool mode (``"thread"`` or ``"process"``).
    """

    def __init__(
        self,
        store: RunStore | None = None,
        workers: int = 2,
        mode: str = "thread",
    ):
        self.store = store
        self.scheduler = JobScheduler(store=store, workers=workers, mode=mode)

    def submit_payload(self, payload: dict) -> dict:
        """Validate and enqueue a job payload; return its initial status."""
        spec = JobSpec.from_payload(payload)
        job_id = self.scheduler.submit(spec)
        return self.scheduler.status(job_id)

    def status(self, job_id: str) -> dict:
        """Return one job's scheduler status."""
        return self.scheduler.status(job_id)

    def result_payload(self, job_id: str) -> dict:
        """Return a finished job's outcome payload (the job must be done)."""
        status = self.scheduler.status(job_id)
        if status["state"] != "done":
            raise ServiceError(f"job {job_id!r} is {status['state']}, not done")
        return self.scheduler.result(job_id).to_payload()

    def jobs(self) -> list[dict]:
        """Return the status of every submitted job."""
        return self.scheduler.list_jobs()

    def runs(self) -> list[dict]:
        """Return the runs persisted in the store (empty without a store)."""
        if self.store is None:
            return []
        return self.store.list_runs()

    def health(self) -> dict:
        """Return the liveness summary reported by ``GET /healthz``."""
        jobs = self.scheduler.list_jobs()
        states: dict[str, int] = {}
        for job in jobs:
            states[job["state"]] = states.get(job["state"], 0) + 1
        return {
            "status": "ok",
            "jobs": len(jobs),
            "states": states,
            "store": None if self.store is None else str(self.store.root),
            "workers": self.scheduler.workers,
            "mode": self.scheduler.mode,
        }

    def close(self) -> None:
        """Shut the scheduler's worker pool down."""
        self.scheduler.shutdown(wait=True)


class _ServiceHandler(BaseHTTPRequestHandler):
    """Maps HTTP routes onto the owning server's :class:`RunService`."""

    server_version = "repro-serve/1"

    @property
    def service(self) -> RunService:
        """The service facade attached to the owning server."""
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress per-request stderr logging (the CLI prints its own banner)."""

    def _send_json(self, payload, status: int = 200) -> None:
        body = canonical_json(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServiceError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            return json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise ServiceError(f"request body is not valid JSON: {error}") from error

    # -- routes ------------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Serve the read-only routes."""
        path = self.path.rstrip("/")
        try:
            if path in ("", "/healthz"):
                self._send_json(self.service.health())
            elif path == "/jobs":
                self._send_json(self.service.jobs())
            elif path == "/runs":
                self._send_json(self.service.runs())
            elif path.startswith("/jobs/"):
                self._get_job(path[len("/jobs/"):])
            else:
                self._send_error_json(f"unknown path {self.path!r}", 404)
        except ServiceError as error:
            self._send_error_json(str(error), 404)
        except ReproError as error:
            self._send_error_json(str(error), 500)

    def _get_job(self, remainder: str) -> None:
        if remainder.endswith("/result"):
            job_id = remainder[: -len("/result")]
            status = self.service.status(job_id)
            if status["state"] in ("queued", "running"):
                self._send_json(status, status=202)
            elif status["state"] == "failed":
                self._send_error_json(status.get("error", "job failed"), 500)
            else:
                self._send_json(self.service.result_payload(job_id))
        else:
            self._send_json(self.service.status(remainder))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Serve job submission."""
        path = self.path.rstrip("/")
        if path != "/jobs":
            self._send_error_json(f"unknown path {self.path!r}", 404)
            return
        try:
            payload = self._read_body()
            self._send_json(self.service.submit_payload(payload), status=201)
        except ServiceError as error:
            self._send_error_json(str(error), 400)
        except ReproError as error:
            self._send_error_json(str(error), 400)


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: RunService | None = None,
) -> ThreadingHTTPServer:
    """Build (without starting) the HTTP server for a :class:`RunService`.

    Parameters
    ----------
    host:
        Interface to bind.
    port:
        TCP port; ``0`` picks a free port (read it back from
        ``server.server_address``).
    service:
        The service facade; a store-less two-worker service by default.

    Returns
    -------
    ThreadingHTTPServer
        The bound server, with the service attached as ``server.service``.
    """
    server = ThreadingHTTPServer((host, port), _ServiceHandler)
    server.service = service if service is not None else RunService()  # type: ignore[attr-defined]
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store: RunStore | str | None = None,
    workers: int = 2,
    mode: str = "thread",
) -> None:
    """Run the job service until interrupted (the ``repro serve`` entry point).

    Parameters
    ----------
    host:
        Interface to bind.
    port:
        TCP port to listen on.
    store:
        Run store (instance or directory path); ``None`` serves from memory
        only.
    workers:
        Scheduler worker-pool size.
    mode:
        Scheduler pool mode.
    """
    if isinstance(store, str):
        store = RunStore(store)
    service = RunService(store=store, workers=workers, mode=mode)
    server = make_server(host, port, service)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        server.server_close()
        service.close()
