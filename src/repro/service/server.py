"""The job-service facade and the legacy threaded HTTP endpoint.

:class:`RunService` is the facade every front-end talks to — the asyncio
server in :mod:`repro.service.aserver` (what ``repro serve`` runs), the
threaded :class:`~http.server.ThreadingHTTPServer` kept here as the
load-benchmark baseline, and the tests.  Routes served by both front-ends:

==============================  ==============================================
``GET  /healthz``               liveness + job counters + drain flag
``POST /jobs``                  submit a :class:`~repro.service.spec.JobSpec`
                                payload; returns ``{"job_id", "state"}``
``GET  /jobs``                  list submitted jobs (asyncio adds
                                ``limit``/``offset``/``state`` params)
``GET  /jobs/<id>``             one job's status
``GET  /jobs/<id>/result``      the outcome (``202`` while pending,
                                ``500`` + error when the job failed)
``GET  /runs``                  runs persisted in the store
==============================  ==============================================

The asyncio front-end additionally streams ``GET /jobs/<id>/events`` (SSE)
and honours per-tenant rate limits; see :mod:`repro.service.aserver`.
"""

from __future__ import annotations

import asyncio
import json
import signal
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.exceptions import ReproError, ServiceBusyError, ServiceError
from repro.service.scheduler import JobScheduler
from repro.service.spec import JobSpec
from repro.service.store import RunStore
from repro.telemetry.metrics import REGISTRY
from repro.utils.serialization import canonical_json

__all__ = ["RunService", "make_server", "serve"]

#: Largest accepted request body (a guard against accidental huge uploads).
MAX_BODY_BYTES = 32 * 1024 * 1024

#: ``Retry-After`` seconds sent with 503 responses while draining.
DRAIN_RETRY_AFTER = 2.0

#: Tenant identity used when a submission carries no ``X-Tenant`` header.
DEFAULT_TENANT = "public"

#: Per-tenant submission accounting, scraped at ``GET /metrics``.
_SUBMISSIONS = REGISTRY.counter(
    "repro_submissions_total",
    "Job submissions accepted, by tenant.",
    labelnames=("tenant",),
)
_RATE_LIMITED = REGISTRY.counter(
    "repro_rate_limited_total",
    "Job submissions rejected with 429 by the tenant rate limiter.",
    labelnames=("tenant",),
)
_DRAIN_REJECTED = REGISTRY.counter(
    "repro_drain_rejected_total",
    "Job submissions rejected with 503 while the service drained.",
)


class RunService:
    """The service facade the HTTP front-ends (and tests) talk to.

    Parameters
    ----------
    store:
        Optional run store for durable artifacts and result reuse.
    workers:
        Scheduler worker-pool size (validated strictly positive).
    mode:
        Scheduler pool mode (``"thread"`` or ``"process"``).
    limiter:
        Optional :class:`~repro.service.ratelimit.TenantRateLimiter`
        admitting each submission; ``None`` admits everything.
    """

    def __init__(
        self,
        store: RunStore | None = None,
        workers: int = 2,
        mode: str = "thread",
        limiter=None,
    ):
        self.store = store
        self.limiter = limiter
        self.draining = False
        self.scheduler = JobScheduler(store=store, workers=workers, mode=mode)

    def begin_drain(self) -> None:
        """Refuse new submissions from now on (graceful-shutdown mode)."""
        self.draining = True

    def submit_payload(self, payload: dict, tenant: str | None = None) -> dict:
        """Validate, admit and enqueue a job payload; return its initial status.

        Raises
        ------
        ServiceBusyError
            With status 503 while the service drains for shutdown, or 429
            when the tenant exceeded its rate limit / active-job quota.
        """
        if self.draining:
            _DRAIN_REJECTED.inc()
            raise ServiceBusyError(
                "service is draining for shutdown; retry shortly",
                retry_after=DRAIN_RETRY_AFTER,
                status=503,
            )
        tenant_id = tenant or DEFAULT_TENANT
        if self.limiter is not None:
            try:
                self.limiter.admit(tenant_id, self.scheduler.active_jobs(tenant_id))
            except ServiceBusyError:
                _RATE_LIMITED.inc(tenant=tenant_id)
                raise
        spec = JobSpec.from_payload(payload)
        job_id = self.scheduler.submit(spec, tenant=tenant_id)
        _SUBMISSIONS.inc(tenant=tenant_id)
        return self.scheduler.status(job_id)

    def status(self, job_id: str) -> dict:
        """Return one job's scheduler status."""
        return self.scheduler.status(job_id)

    def result_payload(self, job_id: str) -> dict:
        """Return a finished job's outcome payload (the job must be done)."""
        status = self.scheduler.status(job_id)
        if status["state"] != "done":
            raise ServiceError(f"job {job_id!r} is {status['state']}, not done")
        return self.scheduler.result(job_id).to_payload()

    def jobs(
        self, limit: int | None = None, offset: int = 0, state: str | None = None
    ) -> list[dict]:
        """Return submitted-job statuses, paginated and state-filtered."""
        return self.scheduler.list_jobs(limit=limit, offset=offset, state=state)

    def runs(
        self, limit: int | None = None, offset: int = 0, stage: str | None = None
    ) -> list[dict]:
        """Return the runs persisted in the store (empty without a store)."""
        if self.store is None:
            return []
        return self.store.list_runs(limit=limit, offset=offset, stage=stage)

    def health(self) -> dict:
        """Return the liveness summary reported by ``GET /healthz``."""
        jobs = self.scheduler.list_jobs()
        states: dict[str, int] = {}
        for job in jobs:
            states[job["state"]] = states.get(job["state"], 0) + 1
        return {
            "status": "draining" if self.draining else "ok",
            "draining": self.draining,
            "jobs": len(jobs),
            "states": states,
            "store": None if self.store is None else str(self.store.root),
            "workers": self.scheduler.workers,
            "mode": self.scheduler.mode,
        }

    def close(self) -> None:
        """Shut the scheduler's worker pool down."""
        self.scheduler.shutdown(wait=True)


class _ServiceHandler(BaseHTTPRequestHandler):
    """Maps HTTP routes onto the owning server's :class:`RunService`."""

    server_version = "repro-serve/1"

    @property
    def service(self) -> RunService:
        """The service facade attached to the owning server."""
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress per-request stderr logging (the CLI prints its own banner)."""

    def _send_json(self, payload, status: int = 200, headers: dict | None = None) -> None:
        body = canonical_json(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, message: str, status: int) -> None:
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            raise ServiceError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            return json.loads(self.rfile.read(length))
        except json.JSONDecodeError as error:
            raise ServiceError(f"request body is not valid JSON: {error}") from error

    # -- routes ------------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        """Serve the read-only routes."""
        path = self.path.rstrip("/")
        try:
            if path in ("", "/healthz"):
                self._send_json(self.service.health())
            elif path == "/jobs":
                self._send_json(self.service.jobs())
            elif path == "/runs":
                self._send_json(self.service.runs())
            elif path.startswith("/jobs/"):
                self._get_job(path[len("/jobs/"):])
            else:
                self._send_error_json(f"unknown path {self.path!r}", 404)
        except ServiceError as error:
            self._send_error_json(str(error), 404)
        except ReproError as error:
            self._send_error_json(str(error), 500)

    def _get_job(self, remainder: str) -> None:
        if remainder.endswith("/result"):
            job_id = remainder[: -len("/result")]
            status = self.service.status(job_id)
            if status["state"] in ("queued", "running"):
                self._send_json(status, status=202)
            elif status["state"] == "failed":
                self._send_error_json(status.get("error", "job failed"), 500)
            else:
                self._send_json(self.service.result_payload(job_id))
        else:
            self._send_json(self.service.status(remainder))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        """Serve job submission."""
        path = self.path.rstrip("/")
        if path != "/jobs":
            self._send_error_json(f"unknown path {self.path!r}", 404)
            return
        try:
            payload = self._read_body()
            tenant = self.headers.get("X-Tenant")
            self._send_json(self.service.submit_payload(payload, tenant=tenant), status=201)
        except ServiceBusyError as error:
            self._send_json(
                {"error": str(error)},
                status=error.status,
                headers={"Retry-After": f"{error.retry_after:.3f}"},
            )
        except ServiceError as error:
            self._send_error_json(str(error), 400)
        except ReproError as error:
            self._send_error_json(str(error), 400)


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    service: RunService | None = None,
) -> ThreadingHTTPServer:
    """Build (without starting) the HTTP server for a :class:`RunService`.

    Parameters
    ----------
    host:
        Interface to bind.
    port:
        TCP port; ``0`` picks a free port (read it back from
        ``server.server_address``).
    service:
        The service facade; a store-less two-worker service by default.

    Returns
    -------
    ThreadingHTTPServer
        The bound server, with the service attached as ``server.service``.
    """
    server = ThreadingHTTPServer((host, port), _ServiceHandler)
    server.service = service if service is not None else RunService()  # type: ignore[attr-defined]
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    store: RunStore | str | None = None,
    workers: int = 2,
    mode: str = "thread",
    rate: float | None = None,
    burst: float | None = None,
    max_active: int | None = None,
    ready=None,
) -> None:
    """Run the asyncio job service until interrupted (``repro serve``).

    ``SIGINT``/``SIGTERM`` trigger a graceful drain: new submissions get
    503 + ``Retry-After`` while every in-flight job finishes, then the
    server stops.

    Parameters
    ----------
    host:
        Interface to bind.
    port:
        TCP port to listen on (``0`` picks a free port; pass ``ready`` to
        learn which).
    store:
        Run store (instance or directory path); ``None`` serves from memory
        only.
    workers:
        Scheduler worker-pool size.
    mode:
        Scheduler pool mode.
    rate / burst:
        Per-tenant token-bucket rate limit (submissions/second and burst
        capacity); ``None`` disables rate limiting.
    max_active:
        Per-tenant cap on queued+running jobs; ``None`` disables the quota.
    ready:
        Optional callback invoked with the bound ``(host, port)`` once the
        socket is listening.
    """
    # Imported here: aserver imports RunService from this module.
    from repro.service.aserver import serve_async
    from repro.service.ratelimit import TenantRateLimiter

    if isinstance(store, str):
        store = RunStore(store)
    limiter = None
    if rate is not None or max_active is not None:
        limiter = TenantRateLimiter(rate=rate, burst=burst, max_active=max_active)
    service = RunService(store=store, workers=workers, mode=mode, limiter=limiter)

    async def _main() -> None:
        loop = asyncio.get_running_loop()
        shutdown = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, shutdown.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-posix
                pass
        await serve_async(service, host=host, port=port, shutdown=shutdown, ready=ready)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        service.close()
        if store is not None:
            store.close()
