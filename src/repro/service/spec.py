"""The :class:`JobSpec`: a content-addressed description of one estimation job.

A job spec captures *everything* that determines a cut-estimation result —
the circuit, the observable, the explicit cut plan or planner constraints,
the execution backend or device fleet, the shot budget, the allocation
strategy and the seed.  Its :meth:`JobSpec.fingerprint` is therefore a
content address: two submissions with the same fingerprint are guaranteed to
produce bitwise-identical results, which is what lets the
:class:`~repro.service.store.RunStore` serve repeated requests without
re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.exceptions import GateError, ServiceError
from repro.circuits.backends import BACKEND_NAMES, circuit_fingerprint, resolve_backend
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.serialization import circuit_from_payload, circuit_to_payload
from repro.cutting.executor import ESTIMATION_MODES
from repro.qpd.adaptive import DEFAULT_MAX_ROUNDS, EXECUTION_MODES
from repro.qpd.allocation import ALLOCATION_STRATEGIES
from repro.quantum.paulis import PauliString
from repro.utils.serialization import payload_fingerprint
from repro.utils.validation import validate_positive_count, validate_positive_float

__all__ = ["JobSpec"]

#: Payload schema version written by :meth:`JobSpec.to_payload`.
SPEC_VERSION = 1


@dataclass(frozen=True)
class JobSpec:
    """One cut-estimation job, fully specified and JSON-serializable.

    Parameters
    ----------
    circuit:
        The circuit to cut and estimate.
    observable:
        Pauli string over the circuit's logical qubits (e.g. ``"ZZZZ"``).
    shots:
        Total shot budget (strictly positive).
    seed:
        Integer seed for allocation and sampling.  Required — a job without
        a pinned seed would not be content-addressable.
    max_fragment_width:
        Planner constraint (device width); may be ``None`` when an explicit
        ``positions``/``locations`` plan is supplied.
    entanglement_overlap:
        Entanglement level ``f(Φ_k)`` of the NME protocol; ``None`` selects
        the entanglement-free κ = 3 cut.
    allocation:
        Shot-allocation strategy over the QPD product terms.
    max_cuts:
        Optional planner bound on the number of wire cuts.
    positions:
        Optional explicit time-slice cut positions (skips the planner).
    locations:
        Optional explicit ``(qubit, position)`` wire-cut locations (skips
        the planner).  At most one of ``positions``/``locations``.
    backend:
        Execution-backend name; with a ``fleet`` this is the ideal inner
        backend each virtual device wraps.
    fleet:
        Optional device-fleet spec document
        (see :func:`repro.devices.fleet_from_spec`); when given, term
        circuits run shot-wise distributed across the noisy fleet and the
        spec becomes part of the job fingerprint.
    compute_exact:
        Also compute the exact uncut value for error reporting.
    mode:
        Execution mode: ``"static"`` (one up-front allocation, the
        default) or ``"adaptive"`` (round-structured execution with early
        stopping; ``shots`` becomes the hard budget ceiling).
    target_error:
        Adaptive mode's stopping threshold on the pooled standard error
        (required and strictly positive when ``mode="adaptive"``).
    rounds:
        Adaptive mode's round limit (strictly positive).
    dedup:
        Execute through the instance-dedup table
        (:mod:`repro.cutting.instances`) when the plan supports it,
        falling back to the monolithic per-term path otherwise.  Requires
        an ideal simulator backend (no ``fleet``).  Becomes part of the
        fingerprint only when enabled, so existing stored runs keep their
        content addresses.
    execution:
        Round execution of adaptive jobs: ``"inprocess"`` (default) or
        ``"distributed"`` (each round fans out over the multi-process
        work-stealing pool of :mod:`repro.distributed`).  Distributed
        results are bitwise identical to in-process for the same seed, so
        the field travels in the payload but is *excluded from the
        fingerprint*: the two executions share one content address and a
        stored run resumes interchangeably under either.
    workers:
        Distributed execution's worker-process count (``None`` uses the
        distributed default); excluded from the fingerprint for the same
        reason.
    """

    circuit: QuantumCircuit
    observable: str
    shots: int
    seed: int
    max_fragment_width: int | None = None
    entanglement_overlap: float | None = None
    allocation: str = "proportional"
    max_cuts: int | None = None
    positions: tuple[int, ...] | None = None
    locations: tuple[tuple[int, int], ...] | None = None
    backend: str = "vectorized"
    fleet: dict | None = field(default=None)
    compute_exact: bool = True
    mode: str = "static"
    target_error: float | None = None
    rounds: int = DEFAULT_MAX_ROUNDS
    dedup: bool = False
    execution: str = "inprocess"
    workers: int | None = None

    def __post_init__(self) -> None:
        validate_positive_count(self.shots, name="shots")
        if self.mode not in ESTIMATION_MODES:
            raise ServiceError(
                f"unknown mode {self.mode!r}; expected one of {ESTIMATION_MODES}"
            )
        if self.mode == "adaptive":
            # Boundary validation at the service entry point: a bad tolerance
            # or round limit fails before any pipeline stage runs.
            if self.target_error is None:
                raise ServiceError("adaptive mode requires target_error")
            validate_positive_float(self.target_error, name="target_error")
            validate_positive_count(self.rounds, name="rounds")
        elif self.target_error is not None:
            raise ServiceError("target_error is only meaningful with mode='adaptive'")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ServiceError(f"seed must be an integer, got {self.seed!r}")
        try:
            pauli = PauliString(self.observable)
        except GateError as error:
            raise ServiceError(f"invalid observable: {error}") from error
        if pauli.num_qubits != self.circuit.num_qubits:
            raise ServiceError(
                f"observable {self.observable!r} acts on {pauli.num_qubits} qubits but the "
                f"circuit has {self.circuit.num_qubits}"
            )
        if self.backend not in BACKEND_NAMES:
            raise ServiceError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.allocation not in ALLOCATION_STRATEGIES:
            raise ServiceError(
                f"unknown allocation {self.allocation!r}; expected one of {ALLOCATION_STRATEGIES}"
            )
        if self.positions is not None and self.locations is not None:
            raise ServiceError("pass at most one of positions/locations")
        if (
            self.max_fragment_width is None
            and self.positions is None
            and self.locations is None
        ):
            raise ServiceError(
                "a job needs max_fragment_width (planner search) or an explicit "
                "positions/locations cut plan"
            )
        if self.fleet is not None and not isinstance(self.fleet, dict):
            raise ServiceError(
                f"fleet must be a spec document (JSON object), got {type(self.fleet).__name__}"
            )
        if not isinstance(self.dedup, bool):
            raise ServiceError(f"dedup must be a boolean, got {self.dedup!r}")
        if self.dedup and self.fleet is not None:
            raise ServiceError(
                "dedup requires an ideal simulator backend; it cannot run on a noisy fleet"
            )
        if self.execution not in EXECUTION_MODES:
            raise ServiceError(
                f"unknown execution {self.execution!r}; expected one of {EXECUTION_MODES}"
            )
        if self.execution == "distributed":
            if self.mode != "adaptive":
                raise ServiceError("distributed execution requires mode='adaptive'")
            if self.dedup:
                raise ServiceError(
                    "dedup execution cannot distribute (the instance fast path draws "
                    "terms from one sequential stream)"
                )
            if self.workers is not None:
                validate_positive_count(self.workers, name="workers")
        elif self.workers is not None:
            raise ServiceError(
                "workers is only meaningful with execution='distributed'"
            )
        # Normalise tuple-valued fields so payloads and fingerprints are stable
        # regardless of whether lists or tuples were passed in.
        if self.positions is not None:
            object.__setattr__(self, "positions", tuple(int(p) for p in self.positions))
        if self.locations is not None:
            object.__setattr__(
                self,
                "locations",
                tuple((int(q), int(p)) for q, p in self.locations),
            )
        if self.target_error is not None:
            object.__setattr__(self, "target_error", float(self.target_error))
        object.__setattr__(self, "rounds", int(self.rounds))

    # -- serialization -----------------------------------------------------------------

    def to_payload(self) -> dict:
        """Return the JSON-serializable payload of the job (the HTTP wire form).

        Adaptive-mode fields are only emitted for adaptive jobs, so static
        payloads (and therefore their fingerprints and any runs already
        persisted in a store) are unchanged by the mode extension.
        """
        payload = {
            "version": SPEC_VERSION,
            "circuit": circuit_to_payload(self.circuit),
            "observable": self.observable,
            "shots": int(self.shots),
            "seed": int(self.seed),
            "max_fragment_width": self.max_fragment_width,
            "entanglement_overlap": self.entanglement_overlap,
            "allocation": self.allocation,
            "max_cuts": self.max_cuts,
            "positions": None if self.positions is None else list(self.positions),
            "locations": None
            if self.locations is None
            else [list(pair) for pair in self.locations],
            "backend": self.backend,
            "fleet": self.fleet,
            "compute_exact": self.compute_exact,
        }
        if self.mode != "static":
            payload["mode"] = self.mode
            payload["target_error"] = float(self.target_error)
            payload["rounds"] = int(self.rounds)
        if self.dedup:
            payload["dedup"] = True
        if self.execution != "inprocess":
            payload["execution"] = self.execution
            if self.workers is not None:
                payload["workers"] = int(self.workers)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Rebuild a job spec from its payload form.

        Parameters
        ----------
        payload:
            A payload produced by :meth:`to_payload` (e.g. the body of a
            ``POST /jobs`` request).

        Returns
        -------
        JobSpec
            The validated job spec.

        Raises
        ------
        ServiceError
            When the payload is malformed or fails validation.
        """
        if not isinstance(payload, dict):
            raise ServiceError(
                f"a job payload must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ServiceError(
                f"unsupported job payload version {version!r} (this service speaks {SPEC_VERSION})"
            )
        try:
            circuit = circuit_from_payload(payload["circuit"])
            positions = payload.get("positions")
            locations = payload.get("locations")
            return cls(
                circuit=circuit,
                observable=str(payload["observable"]),
                shots=payload["shots"],
                seed=payload["seed"],
                max_fragment_width=payload.get("max_fragment_width"),
                entanglement_overlap=payload.get("entanglement_overlap"),
                allocation=str(payload.get("allocation", "proportional")),
                max_cuts=payload.get("max_cuts"),
                positions=None if positions is None else tuple(int(p) for p in positions),
                locations=None
                if locations is None
                else tuple((int(q), int(p)) for q, p in locations),
                backend=str(payload.get("backend", "vectorized")),
                fleet=payload.get("fleet"),
                compute_exact=bool(payload.get("compute_exact", True)),
                mode=str(payload.get("mode", "static")),
                target_error=payload.get("target_error"),
                rounds=int(payload.get("rounds", DEFAULT_MAX_ROUNDS)),
                dedup=bool(payload.get("dedup", False)),
                execution=str(payload.get("execution", "inprocess")),
                workers=payload.get("workers"),
            )
        except ServiceError:
            raise
        except Exception as error:  # malformed payloads fail as service errors
            raise ServiceError(f"malformed job payload: {error}") from error

    # -- identity ----------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Return the job's content address.

        The hash covers the circuit's physical action (via
        :func:`~repro.circuits.backends.circuit_fingerprint`, so cosmetic
        names don't fragment the store), the cut plan or planner
        constraints, the backend / fleet spec, the shot budget, the
        allocation strategy and the seed — everything that determines the
        result bit-for-bit.  ``execution``/``workers`` are deliberately
        *not* covered: distributed rounds are bitwise identical to
        in-process rounds, so an in-process job and its distributed twin
        share one content address (and the store's cache/resume serves
        either from the other's artifacts).
        """
        payload = self.to_payload()
        payload["circuit"] = circuit_fingerprint(self.circuit)
        payload.pop("execution", None)
        payload.pop("workers", None)
        return payload_fingerprint(payload)

    # -- execution helpers --------------------------------------------------------------

    def build_pipeline(self):
        """Return the configured :class:`~repro.pipeline.CutPipeline` for this job."""
        from repro.devices import fleet_from_spec
        from repro.pipeline import CutPipeline

        if self.fleet is not None:
            backend = fleet_from_spec(self.fleet, inner=resolve_backend(self.backend))
        else:
            backend = self.backend
        return CutPipeline(
            max_fragment_width=self.max_fragment_width,
            entanglement_overlap=self.entanglement_overlap,
            backend=backend,
            allocation=self.allocation,
            max_cuts=self.max_cuts,
            # A job-level dedup request falls back gracefully when the chosen
            # plan turns out not to factorise (the fingerprint still differs,
            # because the request itself is part of the payload).
            dedup="auto" if self.dedup else False,
        )

    def execute_arguments(self) -> dict:
        """Return the mode keyword arguments for :meth:`CutPipeline.execute`."""
        if self.mode == "static":
            return {}
        arguments = {
            "mode": self.mode,
            "target_error": self.target_error,
            "rounds": self.rounds,
        }
        if self.execution != "inprocess":
            arguments["execution"] = self.execution
            if self.workers is not None:
                arguments["workers"] = self.workers
        return arguments

    def plan_arguments(self) -> dict:
        """Return the keyword arguments for :meth:`CutPipeline.plan`."""
        if self.locations is not None:
            from repro.cutting.cutter import CutLocation

            return {
                "locations": [CutLocation(qubit=q, position=p) for q, p in self.locations]
            }
        if self.positions is not None:
            return {"positions": list(self.positions)}
        return {}

    def with_shots(self, shots: int) -> "JobSpec":
        """Return a copy of the spec with a different shot budget."""
        return replace(self, shots=shots)
