"""Persistent run store and asynchronous job service for cut estimation.

This package turns the per-process :class:`~repro.pipeline.CutPipeline` into
a *durable, concurrent* serving layer:

:class:`JobSpec`
    A self-contained, JSON-serializable description of one cut-estimation
    job (circuit ⊕ cut plan ⊕ backend/fleet ⊕ shots ⊕ seed) with a stable
    content fingerprint that doubles as the job id.
:class:`RunStore`
    A content-addressed on-disk store persisting every pipeline stage
    artifact under the job fingerprint, so identical requests are served
    from the store and interrupted runs resume from the last completed
    stage.
:func:`run_job`
    Execute (or resume, or serve from cache) a single job against a store.
:class:`JobScheduler`
    A bounded worker pool executing jobs concurrently; per-job seed streams
    make concurrent and serial submissions bitwise-identical.
:mod:`repro.service.server` / :class:`ServiceClient`
    A stdlib HTTP/JSON endpoint (``repro serve``) and the matching client
    used by ``repro jobs submit|status|result|list``.
"""

from repro.service.client import ServiceClient
from repro.service.runner import JobOutcome, run_job
from repro.service.scheduler import JobScheduler
from repro.service.server import RunService, make_server, serve
from repro.service.spec import JobSpec
from repro.service.store import RunStore

__all__ = [
    "JobSpec",
    "RunStore",
    "JobOutcome",
    "run_job",
    "JobScheduler",
    "RunService",
    "ServiceClient",
    "make_server",
    "serve",
]
