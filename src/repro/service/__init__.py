"""Persistent run store and asynchronous job service for cut estimation.

This package turns the per-process :class:`~repro.pipeline.CutPipeline` into
a *durable, concurrent* serving layer:

:class:`JobSpec`
    A self-contained, JSON-serializable description of one cut-estimation
    job (circuit ⊕ cut plan ⊕ backend/fleet ⊕ shots ⊕ seed) with a stable
    content fingerprint that doubles as the job id.
:class:`RunStore`
    A SQLite-WAL indexed, content-addressed store persisting every pipeline
    stage artifact under the job fingerprint — payloads are deduplicated
    across jobs sharing identical stages — so identical requests are served
    from the store and interrupted runs resume from the last completed
    stage.  Legacy per-file layouts are read through transparently and
    migrated with :meth:`RunStore.migrate_legacy`.
:func:`run_job`
    Execute (or resume, or serve from cache) a single job against a store.
:class:`JobScheduler`
    A bounded worker pool executing jobs concurrently; per-job seed streams
    make concurrent and serial submissions bitwise-identical, and live round
    events feed streaming consumers.
:class:`AsyncJobServer` / :class:`ServiceClient`
    The asyncio HTTP/JSON endpoint behind ``repro serve`` — SSE progress
    streaming, per-tenant rate limits (:class:`TenantRateLimiter`),
    pagination and graceful drain — and the matching stdlib client used by
    ``repro jobs submit|status|watch|result|list``.
"""

from repro.service.aserver import AsyncJobServer, ServerThread, serve_async
from repro.service.client import ServiceClient
from repro.service.ratelimit import TenantRateLimiter, TokenBucket
from repro.service.runner import JobOutcome, run_job
from repro.service.scheduler import JobScheduler
from repro.service.server import RunService, make_server, serve
from repro.service.spec import JobSpec
from repro.service.store import RunStore

__all__ = [
    "JobSpec",
    "RunStore",
    "JobOutcome",
    "run_job",
    "JobScheduler",
    "RunService",
    "ServiceClient",
    "AsyncJobServer",
    "ServerThread",
    "TenantRateLimiter",
    "TokenBucket",
    "make_server",
    "serve",
    "serve_async",
]
