"""The asyncio job server: streaming progress, rate limits, graceful drain.

This is the ``repro serve`` engine since the service-hardening pass.  It
replaces the thread-per-connection stdlib server (kept in
:mod:`repro.service.server` as the benchmark baseline) with a single-threaded
:mod:`asyncio` streams front-end over the same
:class:`~repro.service.server.RunService` facade; all heavy work still runs
on the scheduler's bounded worker pool.

==================================  ==========================================
``GET  /healthz``                   liveness + job counters + drain flag
``POST /jobs``                      submit a job (rate-limited per tenant via
                                    the ``X-Tenant`` header; 429 +
                                    ``Retry-After`` over budget, 503 while
                                    draining)
``GET  /jobs?limit=&offset=&state=``  paginated, filtered job listing
``GET  /jobs/<id>``                 one job's status
``GET  /jobs/<id>/result``          the outcome (202 while pending)
``GET  /jobs/<id>/events``          **SSE stream** of the job's adaptive
                                    rounds and terminal result
``GET  /runs?limit=&offset=&stage=``  paginated store listing
``GET  /metrics``                   Prometheus text exposition of the
                                    process-global metrics registry
==================================  ==========================================

**The SSE protocol.**  Every event is ``event:`` / ``id:`` / ``data:`` lines
with a canonical-JSON data payload.  ``round`` events carry one
:class:`~repro.qpd.adaptive.RoundRecord` payload (``data["round"]``) and the
live progress counters; their ``id`` is the round index, so a client that
reconnects with ``Last-Event-ID`` (or ``?after=N``) resumes **exactly once,
in order** — the server replays the persisted round log past the last seen
index, then switches to live rounds.  A terminal ``result`` (or ``failed``)
event closes the stream; ``end`` closes a store-only replay with no live
job attached.

**Graceful drain.**  :meth:`AsyncJobServer.drain` flips the service into
draining mode — new submissions get 503 + ``Retry-After`` — then waits for
every in-flight job to finish before the caller stops the server, so a
deploy never loses accepted work.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import threading
import time
import urllib.parse

from repro.exceptions import ReproError, ServiceBusyError, ServiceError
from repro.service.server import MAX_BODY_BYTES, RunService
from repro.telemetry.metrics import REGISTRY
from repro.utils.serialization import canonical_json

__all__ = ["AsyncJobServer", "ServerThread", "serve_async"]

#: Content type of the Prometheus text exposition format.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request accounting scraped at ``GET /metrics``.  Paths are normalised
#: (``/jobs/{id}``) to bound the label cardinality.
_REQUESTS = REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP requests served, by normalised path and status.",
    labelnames=("path", "status"),
)
_REQUEST_LATENCY = REGISTRY.histogram(
    "repro_http_request_seconds",
    "HTTP request latency in seconds, by normalised path and status.",
    labelnames=("path", "status"),
)
_SSE_SUBSCRIBERS = REGISTRY.gauge(
    "repro_sse_subscribers",
    "Currently connected SSE event-stream subscribers.",
)
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_scheduler_queue_depth",
    "Queued plus running jobs on the scheduler (sampled at scrape).",
)
_DEDUP_RATIO = REGISTRY.gauge(
    "repro_store_blob_dedup_ratio",
    "RunStore references-per-blob dedup ratio (sampled at scrape).",
)

#: Status of the response written by the current task's request handler.
#: Safe because each connection is one task serving requests sequentially.
_RESPONSE_STATUS: contextvars.ContextVar[int] = contextvars.ContextVar(
    "repro_response_status", default=0
)


def _metric_path(path: str) -> str:
    """Normalise a request path to a bounded-cardinality metric label."""
    if path in ("", "/healthz"):
        return "/healthz"
    if path in ("/jobs", "/runs", "/metrics"):
        return path
    if path.startswith("/jobs/"):
        if path.endswith("/events"):
            return "/jobs/{id}/events"
        if path.endswith("/result"):
            return "/jobs/{id}/result"
        return "/jobs/{id}"
    return "other"

#: States in which a job has settled and its SSE stream can terminate.
_TERMINAL_STATES = ("done", "failed")

#: How often (seconds) an idle SSE stream re-checks job state and the store.
_SSE_POLL_SECONDS = 0.2

#: Retry-After (seconds) sent with 503 responses while draining.
_DRAIN_RETRY_AFTER = 2.0

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str, headers: dict, body: bytes):
        self.method = method
        split = urllib.parse.urlsplit(target)
        self.path = split.path.rstrip("/")
        self.query = urllib.parse.parse_qs(split.query)
        self.headers = headers
        self.body = body

    def header(self, name: str, default: str | None = None) -> str | None:
        """Return one header value (case-insensitive), or ``default``."""
        return self.headers.get(name.lower(), default)

    def query_int(self, name: str, default: int | None = None) -> int | None:
        """Parse an integer query parameter, raising ServiceError when malformed."""
        values = self.query.get(name)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError:
            raise ServiceError(f"query parameter {name}={values[0]!r} is not an integer") from None

    def query_str(self, name: str, default: str | None = None) -> str | None:
        """Return one string query parameter, or ``default``."""
        values = self.query.get(name)
        return values[0] if values else default


def _sse_event(name: str, data, event_id: int | None = None) -> bytes:
    """Encode one Server-Sent Event block."""
    lines = [f"event: {name}"]
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"data: {canonical_json(data)}")
    return ("\n".join(lines) + "\n\n").encode()


class AsyncJobServer:
    """Asyncio streams HTTP server over a :class:`RunService`.

    Parameters
    ----------
    service:
        The service facade (scheduler + optional store + optional limiter).
    host:
        Interface to bind.
    port:
        TCP port; ``0`` picks a free port (read it back from ``address``
        after :meth:`start`).
    """

    def __init__(self, service: RunService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._connections: set[asyncio.StreamWriter] = set()

    # -- lifecycle ---------------------------------------------------------------------

    async def start(self) -> "AsyncJobServer":
        """Bind the listening socket and start serving connections."""
        self._loop = asyncio.get_running_loop()
        self.service.scheduler.add_listener(self._on_scheduler_event)
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        return self

    async def drain(self, poll: float = 0.05) -> None:
        """Refuse new submissions and wait for every in-flight job to finish."""
        self.service.begin_drain()
        while self.service.scheduler.active_jobs() > 0:
            await asyncio.sleep(poll)

    async def stop(self) -> None:
        """Stop accepting connections and close the open ones."""
        self.service.scheduler.remove_listener(self._on_scheduler_event)
        if self._server is not None:
            self._server.close()
            for writer in list(self._connections):
                writer.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - stuck connection
                pass

    # -- scheduler-event bridge --------------------------------------------------------

    def _on_scheduler_event(self, job_id: str, event: dict) -> None:
        """Scheduler listener (worker thread): hop onto the event loop."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._dispatch, job_id, event)
            except RuntimeError:  # pragma: no cover - loop tearing down
                pass

    def _dispatch(self, job_id: str, event: dict) -> None:
        """Fan one scheduler event out to the job's SSE subscribers."""
        for queue in self._subscribers.get(job_id, ()):
            queue.put_nowait(event)

    def _subscribe(self, job_id: str) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, set()).add(queue)
        _SSE_SUBSCRIBERS.inc()
        return queue

    def _unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        queues = self._subscribers.get(job_id)
        if queues is not None and queue in queues:
            queues.discard(queue)
            _SSE_SUBSCRIBERS.dec()
            if not queues:
                self._subscribers.pop(job_id, None)

    # -- HTTP plumbing ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: a keep-alive loop of request/response rounds."""
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._route(request, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> _Request | None:
        """Read and parse one HTTP/1.1 request; ``None`` on clean EOF."""
        try:
            blob = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as error:
            if not error.partial:
                return None
            raise
        head, _, _ = blob.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            raise asyncio.IncompleteReadError(b"", None) from None
        headers: dict[str, str] = {}
        for line in lines[1:]:
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise asyncio.IncompleteReadError(b"", None)
        if length > 0:
            body = await reader.readexactly(length)
        return _Request(method.upper(), target, headers, body)

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        payload,
        status: int = 200,
        headers: dict | None = None,
        keep_alive: bool = True,
    ) -> None:
        """Write one JSON response."""
        body = canonical_json(payload).encode()
        reason = _REASONS.get(status, "OK")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode() + body)
        _RESPONSE_STATUS.set(status)
        await writer.drain()

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        body: str,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
        keep_alive: bool = True,
    ) -> None:
        """Write one plain-text response (the ``/metrics`` exposition)."""
        data = body.encode()
        reason = _REASONS.get(status, "OK")
        head = "\r\n".join(
            [
                f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {content_type}",
                f"Content-Length: {len(data)}",
                f"Connection: {'keep-alive' if keep_alive else 'close'}",
            ]
        )
        writer.write((head + "\r\n\r\n").encode() + data)
        _RESPONSE_STATUS.set(status)
        await writer.drain()

    async def _send_error(
        self, writer, message: str, status: int, headers: dict | None = None,
        keep_alive: bool = True,
    ) -> None:
        await self._send_json(
            writer, {"error": message}, status=status, headers=headers, keep_alive=keep_alive
        )

    # -- routing ------------------------------------------------------------------------

    async def _route(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request, stamping latency/count metrics around it."""
        start = time.monotonic()
        token = _RESPONSE_STATUS.set(0)
        try:
            return await self._route_inner(request, writer)
        finally:
            status = _RESPONSE_STATUS.get()
            _RESPONSE_STATUS.reset(token)
            labels = {"path": _metric_path(request.path), "status": str(status or 0)}
            _REQUESTS.inc(**labels)
            _REQUEST_LATENCY.observe(time.monotonic() - start, **labels)

    async def _route_inner(self, request: _Request, writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request; return False to close the connection."""
        keep_alive = request.header("connection", "keep-alive") != "close"
        try:
            if request.method == "GET":
                return await self._route_get(request, writer, keep_alive)
            if request.method == "POST":
                await self._route_post(request, writer, keep_alive)
                return keep_alive
            await self._send_error(
                writer, f"unsupported method {request.method}", 400, keep_alive=keep_alive
            )
            return keep_alive
        except ServiceBusyError as error:
            await self._send_error(
                writer,
                str(error),
                error.status,
                headers={"Retry-After": f"{error.retry_after:.3f}"},
                keep_alive=keep_alive,
            )
            return keep_alive
        except ServiceError as error:
            status = 400 if request.method == "POST" else 404
            await self._send_error(writer, str(error), status, keep_alive=keep_alive)
            return keep_alive
        except ReproError as error:
            await self._send_error(writer, str(error), 500, keep_alive=keep_alive)
            return keep_alive

    async def _route_get(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> bool:
        path = request.path
        if path in ("", "/healthz"):
            await self._send_json(writer, self.service.health(), keep_alive=keep_alive)
        elif path == "/metrics":
            self._refresh_gauges()
            await self._send_text(
                writer,
                REGISTRY.render(),
                content_type=METRICS_CONTENT_TYPE,
                keep_alive=keep_alive,
            )
        elif path == "/jobs":
            rows = self.service.jobs(
                limit=request.query_int("limit"),
                offset=request.query_int("offset", 0),
                state=request.query_str("state"),
            )
            await self._send_json(writer, rows, keep_alive=keep_alive)
        elif path == "/runs":
            rows = self.service.runs(
                limit=request.query_int("limit"),
                offset=request.query_int("offset", 0),
                stage=request.query_str("stage"),
            )
            await self._send_json(writer, rows, keep_alive=keep_alive)
        elif path.startswith("/jobs/") and path.endswith("/events"):
            job_id = path[len("/jobs/"):-len("/events")]
            await self._stream_events(request, writer, job_id)
            return False  # the stream delimits the response by closing
        elif path.startswith("/jobs/") and path.endswith("/result"):
            job_id = path[len("/jobs/"):-len("/result")]
            status = self.service.status(job_id)
            if status["state"] in ("queued", "running"):
                await self._send_json(writer, status, status=202, keep_alive=keep_alive)
            elif status["state"] == "failed":
                await self._send_error(
                    writer, status.get("error", "job failed"), 500, keep_alive=keep_alive
                )
            else:
                await self._send_json(
                    writer, self.service.result_payload(job_id), keep_alive=keep_alive
                )
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            await self._send_json(writer, self.service.status(job_id), keep_alive=keep_alive)
        else:
            await self._send_error(writer, f"unknown path {path!r}", 404, keep_alive=keep_alive)
        return keep_alive

    def _refresh_gauges(self) -> None:
        """Sample the point-in-time gauges right before a ``/metrics`` scrape."""
        _QUEUE_DEPTH.set(float(self.service.scheduler.active_jobs()))
        if self.service.store is not None:
            _DEDUP_RATIO.set(float(self.service.store.stats()["dedup_ratio"]))

    async def _route_post(
        self, request: _Request, writer: asyncio.StreamWriter, keep_alive: bool
    ) -> None:
        if request.path != "/jobs":
            await self._send_error(
                writer, f"unknown path {request.path!r}", 404, keep_alive=keep_alive
            )
            return
        if not request.body:
            raise ServiceError("request body is empty")
        try:
            payload = json.loads(request.body)
        except json.JSONDecodeError as error:
            raise ServiceError(f"request body is not valid JSON: {error}") from error
        tenant = request.header("x-tenant")
        row = self.service.submit_payload(payload, tenant=tenant)
        await self._send_json(writer, row, status=201, keep_alive=keep_alive)

    # -- SSE ----------------------------------------------------------------------------

    def _stored_rounds(self, job_id: str) -> list[dict] | None:
        """Return the persisted round payloads of a job, or ``None``."""
        if self.service.store is None:
            return None
        payload = self.service.store.get_stage(job_id, "rounds")
        if payload is None:
            return None
        return list(payload.get("rounds", ()))

    def _job_status(self, job_id: str) -> dict | None:
        """Return scheduler status, or ``None`` when the job is not scheduled."""
        try:
            return self.service.status(job_id)
        except ServiceError:
            return None

    async def _emit_round(
        self, writer, round_payload: dict, progress: dict | None, emitted: int
    ) -> int:
        """Emit one round event if unseen; return the new high-water index."""
        index = int(round_payload["index"])
        if index <= emitted:
            return emitted
        data = {"round": round_payload, "progress": progress}
        writer.write(_sse_event("round", data, event_id=index))
        await writer.drain()
        return index

    async def _stream_events(
        self, request: _Request, writer: asyncio.StreamWriter, job_id: str
    ) -> None:
        """Serve ``GET /jobs/<id>/events``: replay + live-stream round events."""
        after = request.query_int("after", -1)
        last_header = request.header("last-event-id")
        if last_header is not None:
            try:
                after = max(after, int(last_header))
            except ValueError:
                raise ServiceError(
                    f"Last-Event-ID {last_header!r} is not an integer"
                ) from None

        status = self._job_status(job_id)
        stored = self._stored_rounds(job_id)
        if status is None and stored is None:
            await self._send_error(writer, f"unknown job {job_id!r}", 404, keep_alive=False)
            return

        # Subscribe BEFORE the snapshot: any round landing after the store
        # read is delivered through the queue, and duplicates are dropped by
        # the monotone index check — exactly-once, in order.
        queue = self._subscribe(job_id)
        try:
            head = "\r\n".join(
                [
                    "HTTP/1.1 200 OK",
                    "Content-Type: text/event-stream",
                    "Cache-Control: no-cache",
                    "Connection: close",
                ]
            )
            writer.write((head + "\r\n\r\n").encode())
            _RESPONSE_STATUS.set(200)
            await writer.drain()

            emitted = after
            for payload in sorted(stored or (), key=lambda entry: entry["index"]):
                emitted = await self._emit_round(writer, payload, None, emitted)
            if status is not None:
                for event in self.service.scheduler.job_events(job_id):
                    emitted = await self._emit_round(
                        writer, event["round"], event.get("progress"), emitted
                    )

            while not writer.is_closing():
                status = self._job_status(job_id)
                # Drain queued live events without blocking.
                while True:
                    try:
                        event = queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if event.get("type") == "round":
                        emitted = await self._emit_round(
                            writer, event["round"], event.get("progress"), emitted
                        )
                if status is not None and status["state"] in _TERMINAL_STATES:
                    for payload in sorted(
                        self._stored_rounds(job_id) or (), key=lambda entry: entry["index"]
                    ):
                        emitted = await self._emit_round(writer, payload, None, emitted)
                    if status["state"] == "failed":
                        writer.write(
                            _sse_event("failed", {"error": status.get("error", "job failed")})
                        )
                    else:
                        writer.write(
                            _sse_event("result", self.service.result_payload(job_id))
                        )
                    await writer.drain()
                    return
                if status is None:
                    # Store-only stream: no live job here.  Emit the stored
                    # result when the run already finished, else end the
                    # stream and let the client reconnect after resubmission.
                    result = self.service.store.get_stage(job_id, "result")
                    if result is not None:
                        writer.write(_sse_event("result", {**result, "fingerprint": job_id}))
                    else:
                        writer.write(_sse_event("end", {"job_id": job_id}))
                    await writer.drain()
                    return
                try:
                    event = await asyncio.wait_for(queue.get(), timeout=_SSE_POLL_SECONDS)
                except asyncio.TimeoutError:
                    # Poll tick: pick up rounds persisted by process-mode
                    # workers (no in-process progress hook to publish them).
                    for payload in sorted(
                        self._stored_rounds(job_id) or (), key=lambda entry: entry["index"]
                    ):
                        emitted = await self._emit_round(writer, payload, None, emitted)
                    continue
                if event.get("type") == "round":
                    emitted = await self._emit_round(
                        writer, event["round"], event.get("progress"), emitted
                    )
                # Terminal events make the next status check settle the stream.
        finally:
            self._unsubscribe(job_id, queue)


class ServerThread:
    """Run an :class:`AsyncJobServer` on a background event-loop thread.

    The synchronous harness used by tests, ``tools/service_smoke.py`` and
    the load benchmark: ``start()`` returns the bound URL, ``stop()`` shuts
    the loop down (optionally draining in-flight jobs first).

    Parameters
    ----------
    service:
        The service facade to serve.
    host / port:
        Bind address (port 0 picks a free port).
    """

    def __init__(self, service: RunService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._host = host
        self._port = port
        self._ready = threading.Event()
        self._stop_requested: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self._drain = False
        self.url: str | None = None

    def start(self) -> str:
        """Start the server thread and return the service base URL."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), name="repro-aserver", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("asyncio server failed to start within 30s")
        if self._error is not None:
            raise ServiceError(f"asyncio server failed to start: {self._error}")
        return self.url

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        server = AsyncJobServer(self.service, self._host, self._port)
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._error = error
            self._ready.set()
            return
        host, port = server.address
        self.url = f"http://{host}:{port}"
        self._ready.set()
        await self._stop_requested.wait()
        if self._drain:
            await server.drain()
        await server.stop()

    def stop(self, drain: bool = False, timeout: float = 60.0) -> None:
        """Stop the server (optionally draining in-flight jobs first)."""
        self._drain = drain
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._stop_requested.set)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerThread":
        """Start on context entry."""
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop (without drain) on context exit."""
        self.stop()


async def serve_async(
    service: RunService,
    host: str = "127.0.0.1",
    port: int = 8765,
    shutdown: asyncio.Event | None = None,
    ready=None,
) -> None:
    """Serve until ``shutdown`` is set, then drain and stop.

    Parameters
    ----------
    service:
        The service facade.
    host / port:
        Bind address.
    shutdown:
        Event ending the serve loop (signal handlers set it); ``None``
        serves forever.
    ready:
        Optional callback invoked with the bound ``(host, port)`` once the
        socket is listening (the CLI prints its banner from this).
    """
    server = AsyncJobServer(service, host, port)
    await server.start()
    if ready is not None:
        ready(server.address)
    try:
        if shutdown is None:  # pragma: no cover - interactive serve-forever
            await asyncio.Event().wait()
        else:
            await shutdown.wait()
        await server.drain()
    finally:
        await server.stop()
