"""Distance and similarity measures between quantum states."""

from __future__ import annotations

import numpy as np
from scipy.linalg import sqrtm

from repro.exceptions import DimensionError
from repro.quantum.states import DensityMatrix, Statevector

__all__ = [
    "state_fidelity",
    "trace_distance",
    "purity",
    "von_neumann_entropy",
    "hilbert_schmidt_distance",
]


def _as_density(state: DensityMatrix | Statevector | np.ndarray) -> np.ndarray:
    if isinstance(state, Statevector):
        return state.to_density_matrix().data
    if isinstance(state, DensityMatrix):
        return state.data
    array = np.asarray(state, dtype=complex)
    return np.outer(array, array.conj()) if array.ndim == 1 else array


def state_fidelity(
    state_a: DensityMatrix | Statevector | np.ndarray,
    state_b: DensityMatrix | Statevector | np.ndarray,
) -> float:
    """Return the Uhlmann fidelity ``F(ρ, σ) = (Tr√(√ρ σ √ρ))²``.

    For two pure states this reduces to ``|⟨ψ|φ⟩|²``; the pure-pure and
    pure-mixed cases are special-cased to avoid matrix square roots.
    """
    pure_a = isinstance(state_a, Statevector) or (
        isinstance(state_a, np.ndarray) and np.asarray(state_a).ndim == 1
    )
    pure_b = isinstance(state_b, Statevector) or (
        isinstance(state_b, np.ndarray) and np.asarray(state_b).ndim == 1
    )
    if pure_a and pure_b:
        vec_a = state_a.data if isinstance(state_a, Statevector) else np.asarray(state_a, dtype=complex)
        vec_b = state_b.data if isinstance(state_b, Statevector) else np.asarray(state_b, dtype=complex)
        if vec_a.shape != vec_b.shape:
            raise DimensionError("states have different dimensions")
        return float(abs(np.vdot(vec_a, vec_b)) ** 2)
    if pure_a or pure_b:
        vector = state_a if pure_a else state_b
        other = state_b if pure_a else state_a
        vec = vector.data if isinstance(vector, Statevector) else np.asarray(vector, dtype=complex)
        rho = _as_density(other)
        if rho.shape[0] != vec.shape[0]:
            raise DimensionError("states have different dimensions")
        return float(np.real(np.vdot(vec, rho @ vec)))
    rho = _as_density(state_a)
    sigma = _as_density(state_b)
    if rho.shape != sigma.shape:
        raise DimensionError("states have different dimensions")
    if rho.shape == (2, 2):
        # Single-qubit closed form F = Tr[ρσ] + 2√(det ρ · det σ); exact and
        # numerically stable where sqrtm loses precision near rank deficiency.
        # The 2×2 determinants are expanded directly: LAPACK's det underflows
        # to NaN on subnormal off-diagonal entries.
        cross = float(np.real(np.trace(rho @ sigma)))
        det_rho = float(np.real(rho[0, 0] * rho[1, 1] - rho[0, 1] * rho[1, 0]))
        det_sigma = float(np.real(sigma[0, 0] * sigma[1, 1] - sigma[0, 1] * sigma[1, 0]))
        dets = det_rho * det_sigma
        if not np.isfinite(dets):
            dets = 0.0
        return float(cross + 2.0 * np.sqrt(max(dets, 0.0)))
    sqrt_rho = sqrtm(rho)
    inner = sqrtm(sqrt_rho @ sigma @ sqrt_rho)
    return float(np.real(np.trace(inner)) ** 2)


def trace_distance(
    state_a: DensityMatrix | Statevector | np.ndarray,
    state_b: DensityMatrix | Statevector | np.ndarray,
) -> float:
    """Return the trace distance ``½‖ρ − σ‖₁``."""
    rho = _as_density(state_a)
    sigma = _as_density(state_b)
    if rho.shape != sigma.shape:
        raise DimensionError("states have different dimensions")
    eigenvalues = np.linalg.eigvalsh(rho - sigma)
    return float(0.5 * np.sum(np.abs(eigenvalues)))


def hilbert_schmidt_distance(
    state_a: DensityMatrix | Statevector | np.ndarray,
    state_b: DensityMatrix | Statevector | np.ndarray,
) -> float:
    """Return the Hilbert–Schmidt distance ``‖ρ − σ‖₂``."""
    rho = _as_density(state_a)
    sigma = _as_density(state_b)
    if rho.shape != sigma.shape:
        raise DimensionError("states have different dimensions")
    return float(np.linalg.norm(rho - sigma))


def purity(state: DensityMatrix | Statevector | np.ndarray) -> float:
    """Return ``Tr[ρ²]``."""
    rho = _as_density(state)
    return float(np.real(np.trace(rho @ rho)))


def von_neumann_entropy(state: DensityMatrix | Statevector | np.ndarray, base: float = 2.0) -> float:
    """Return the von Neumann entropy ``−Tr[ρ log ρ]`` (default base 2)."""
    rho = _as_density(state)
    eigenvalues = np.linalg.eigvalsh(rho)
    eigenvalues = eigenvalues[eigenvalues > 1e-15]
    return float(-np.sum(eigenvalues * np.log(eigenvalues)) / np.log(base))
