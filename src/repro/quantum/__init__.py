"""Quantum-information substrate: states, gates, channels, entanglement.

This package is the self-contained replacement for the quantum-information
parts of Qiskit that the paper's experiments rely on.  Everything is built
directly on NumPy/SciPy.
"""

from repro.quantum.bell import (
    bell_basis_states,
    bell_overlaps,
    bell_state,
    k_from_overlap,
    overlap_from_k,
    phi_k_density,
    phi_k_state,
    werner_state,
)
from repro.quantum.channels import (
    QuantumChannel,
    amplitude_damping_channel,
    dephasing_channel,
    depolarizing_channel,
    identity_channel,
    measure_and_prepare_channel,
)
from repro.quantum.entanglement import (
    SchmidtDecomposition,
    concurrence,
    entanglement_entropy,
    fully_entangled_fraction,
    is_separable_pure,
    maximal_overlap,
    maximal_overlap_pure,
    negativity,
    schmidt_coefficients,
    schmidt_decomposition,
    schmidt_rank,
)
from repro.quantum.measures import (
    hilbert_schmidt_distance,
    purity,
    state_fidelity,
    trace_distance,
    von_neumann_entropy,
)
from repro.quantum.operators import Operator
from repro.quantum.partial import partial_trace, partial_transpose
from repro.quantum.paulis import (
    PauliString,
    pauli_basis,
    pauli_decompose,
    pauli_expectation_from_counts,
    pauli_matrix,
    pauli_reconstruct,
)
from repro.quantum.random import (
    haar_random_single_qubit_states,
    random_density_matrix,
    random_statevector,
    random_unitary,
)
from repro.quantum.states import DensityMatrix, Statevector

__all__ = [
    # states
    "Statevector",
    "DensityMatrix",
    # gates are exposed via repro.quantum.gates directly
    # bell / NME
    "bell_state",
    "bell_basis_states",
    "bell_overlaps",
    "phi_k_state",
    "phi_k_density",
    "overlap_from_k",
    "k_from_overlap",
    "werner_state",
    # channels
    "QuantumChannel",
    "identity_channel",
    "depolarizing_channel",
    "dephasing_channel",
    "amplitude_damping_channel",
    "measure_and_prepare_channel",
    # entanglement
    "SchmidtDecomposition",
    "schmidt_decomposition",
    "schmidt_coefficients",
    "schmidt_rank",
    "entanglement_entropy",
    "concurrence",
    "negativity",
    "fully_entangled_fraction",
    "maximal_overlap",
    "maximal_overlap_pure",
    "is_separable_pure",
    # measures
    "state_fidelity",
    "trace_distance",
    "hilbert_schmidt_distance",
    "purity",
    "von_neumann_entropy",
    # operators / paulis
    "Operator",
    "PauliString",
    "pauli_basis",
    "pauli_matrix",
    "pauli_decompose",
    "pauli_reconstruct",
    "pauli_expectation_from_counts",
    # partial operations
    "partial_trace",
    "partial_transpose",
    # random
    "random_unitary",
    "random_statevector",
    "random_density_matrix",
    "haar_random_single_qubit_states",
]
