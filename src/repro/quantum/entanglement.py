"""Entanglement quantification for bipartite states.

The quantity that drives every result in the paper is the maximal LOCC
overlap with the maximally entangled state,

.. math::

    f(\\rho_{AB}) = \\max_{\\Lambda \\in \\mathrm{LOCC}}
        \\langle\\Phi| \\Lambda(\\rho_{AB}) |\\Phi\\rangle ,

(Eq. 1), which for two qubits ranges from 1/2 (separable) to 1 (maximally
entangled) and sets the optimal wire-cut overhead ``γ^ρ(I) = 2/f(ρ) − 1``
(Theorem 1).  This module provides:

* the Schmidt decomposition for pure bipartite states,
* ``f`` computed exactly for pure states via the 2-distillation norm
  (Appendix A, Eqs. 29–40),
* the fully entangled fraction (maximal overlap under local *unitaries*) for
  arbitrary two-qubit states via the magic-basis construction, which is a
  lower bound on ``f`` and is tight for the state families used in this
  library (pure states, Werner/isotropic states),
* auxiliary monotones (entanglement entropy, concurrence, negativity) used by
  tests and the extension experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionError
from repro.quantum.partial import partial_transpose
from repro.quantum.states import DensityMatrix, Statevector
from repro.utils.linalg import num_qubits_from_dim

__all__ = [
    "SchmidtDecomposition",
    "schmidt_decomposition",
    "schmidt_coefficients",
    "schmidt_rank",
    "entanglement_entropy",
    "concurrence",
    "negativity",
    "fully_entangled_fraction",
    "maximal_overlap",
    "maximal_overlap_pure",
    "is_separable_pure",
]

# Magic basis (Bell basis with phases) in which maximally entangled two-qubit
# states are exactly the real unit vectors (up to a global phase).
_MAGIC_BASIS = np.array(
    [
        [1, 0, 0, 1],
        [-1j, 0, 0, 1j],
        [0, 1, -1, 0],
        [0, -1j, -1j, 0],
    ],
    dtype=complex,
).T / np.sqrt(2)
# Columns of _MAGIC_BASIS are the magic-basis vectors |e_1>, ..., |e_4>.


@dataclass(frozen=True)
class SchmidtDecomposition:
    """Result of a Schmidt decomposition ``|ψ⟩ = Σ_i λ_i |u_i⟩|v_i⟩``.

    Attributes
    ----------
    coefficients:
        Non-negative Schmidt coefficients in descending order (unit 2-norm).
    basis_a, basis_b:
        Orthonormal local bases; column ``i`` of each array is the vector
        paired with ``coefficients[i]``.
    """

    coefficients: np.ndarray
    basis_a: np.ndarray
    basis_b: np.ndarray

    @property
    def rank(self) -> int:
        """Number of non-negligible Schmidt coefficients."""
        return int(np.sum(self.coefficients > 1e-12))

    def reconstruct(self) -> np.ndarray:
        """Rebuild the original statevector from the decomposition."""
        dim_a = self.basis_a.shape[0]
        dim_b = self.basis_b.shape[0]
        matrix = self.basis_a @ np.diag(self.coefficients) @ self.basis_b.T
        return matrix.reshape(dim_a * dim_b)


def _as_vector(state: Statevector | np.ndarray) -> np.ndarray:
    if isinstance(state, Statevector):
        return state.data
    return np.asarray(state, dtype=complex).ravel()


def _as_two_qubit_density(state: DensityMatrix | Statevector | np.ndarray) -> np.ndarray:
    if isinstance(state, Statevector):
        rho = state.to_density_matrix().data
    elif isinstance(state, DensityMatrix):
        rho = state.data
    else:
        array = np.asarray(state, dtype=complex)
        rho = np.outer(array, array.conj()) if array.ndim == 1 else array
    if rho.shape != (4, 4):
        raise DimensionError(f"expected a two-qubit state, got shape {rho.shape}")
    return rho


def schmidt_decomposition(
    state: Statevector | np.ndarray, dims: tuple[int, int] | None = None
) -> SchmidtDecomposition:
    """Return the Schmidt decomposition of a pure bipartite state.

    Parameters
    ----------
    state:
        A pure state on subsystems ``A ⊗ B``.
    dims:
        Dimensions ``(dim_A, dim_B)``; defaults to an equal split of the
        qubits (first half ``A``, second half ``B``).
    """
    vector = _as_vector(state)
    total = vector.shape[0]
    if dims is None:
        num_qubits = num_qubits_from_dim(total)
        if num_qubits % 2 != 0:
            raise DimensionError(
                "dims must be given explicitly for an odd number of qubits"
            )
        dims = (2 ** (num_qubits // 2), 2 ** (num_qubits // 2))
    dim_a, dim_b = dims
    if dim_a * dim_b != total:
        raise DimensionError(f"dims {dims} do not multiply to the state dimension {total}")
    matrix = vector.reshape(dim_a, dim_b)
    u, s, vh = np.linalg.svd(matrix, full_matrices=False)
    return SchmidtDecomposition(coefficients=s, basis_a=u, basis_b=vh.T)


def schmidt_coefficients(
    state: Statevector | np.ndarray, dims: tuple[int, int] | None = None
) -> np.ndarray:
    """Return the Schmidt coefficients (descending, unit 2-norm) of a pure state."""
    return schmidt_decomposition(state, dims).coefficients


def schmidt_rank(
    state: Statevector | np.ndarray, dims: tuple[int, int] | None = None, atol: float = 1e-12
) -> int:
    """Return the Schmidt rank (number of coefficients above ``atol``)."""
    return int(np.sum(schmidt_coefficients(state, dims) > atol))


def is_separable_pure(
    state: Statevector | np.ndarray, dims: tuple[int, int] | None = None, atol: float = 1e-10
) -> bool:
    """Return True when the pure state is a product state across the bipartition."""
    coefficients = schmidt_coefficients(state, dims)
    return bool(coefficients.shape[0] == 1 or np.all(coefficients[1:] <= atol))


def entanglement_entropy(
    state: Statevector | np.ndarray, dims: tuple[int, int] | None = None
) -> float:
    """Return the entanglement entropy (von Neumann entropy of either marginal), in bits."""
    coefficients = schmidt_coefficients(state, dims)
    probabilities = coefficients**2
    probabilities = probabilities[probabilities > 1e-15]
    return float(-np.sum(probabilities * np.log2(probabilities)))


def concurrence(state: DensityMatrix | Statevector | np.ndarray) -> float:
    """Return the Wootters concurrence of a two-qubit state (0 separable, 1 maximal)."""
    rho = _as_two_qubit_density(state)
    sigma_y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    yy = np.kron(sigma_y, sigma_y)
    rho_tilde = yy @ rho.conj() @ yy
    # Eigenvalues of ρ·ρ̃ are real and non-negative; use eigvals of the product.
    eigenvalues = np.linalg.eigvals(rho @ rho_tilde)
    lambdas = np.sqrt(np.clip(np.real(eigenvalues), 0.0, None))
    lambdas = np.sort(lambdas)[::-1]
    return float(max(0.0, lambdas[0] - lambdas[1] - lambdas[2] - lambdas[3]))


def negativity(state: DensityMatrix | Statevector | np.ndarray) -> float:
    """Return the negativity ``(‖ρ^{T_B}‖₁ − 1)/2`` of a two-qubit state."""
    rho = _as_two_qubit_density(state)
    transposed = partial_transpose(rho, [1])
    eigenvalues = np.linalg.eigvalsh(transposed)
    return float(np.sum(np.abs(eigenvalues[eigenvalues < 0])))


def fully_entangled_fraction(state: DensityMatrix | Statevector | np.ndarray) -> float:
    """Return the fully entangled fraction ``max_{|e⟩ max. ent.} ⟨e|ρ|e⟩``.

    Uses the magic-basis characterisation: in the magic basis the maximally
    entangled two-qubit states are exactly the real unit vectors, so the
    maximum is the largest eigenvalue of the real part of ρ expressed in that
    basis.
    """
    rho = _as_two_qubit_density(state)
    m = _MAGIC_BASIS.conj().T @ rho @ _MAGIC_BASIS
    return float(np.max(np.linalg.eigvalsh(np.real(m + m.conj().T) / 2.0)))


def maximal_overlap_pure(
    state: Statevector | np.ndarray, dims: tuple[int, int] | None = None
) -> float:
    """Return ``f(ψ)`` for a *pure* bipartite state via the 2-distillation norm.

    Appendix A of the paper shows ``f(ψ) = ‖ψ‖²_{[2]} / 2`` where the
    2-distillation norm of a two-qubit pure state reduces to the 1-norm of
    its Schmidt coefficients, giving ``f(Φ_k) = (k+1)²/(2(k²+1))``.
    For general bipartite pure states the norm is
    ``‖ζ↓_{1:j*}‖₁ + sqrt(j*)·‖ζ↓_{j*+1:d}‖₂`` minimised over ``j* ∈ {1, 2}``.
    """
    coefficients = schmidt_coefficients(state, dims)
    d = coefficients.shape[0]
    # Candidate j* values per Eq. 31 with m = 2.
    candidates = []
    for j_star in (1, 2):
        if j_star > min(2, d) and j_star > 1:
            continue
        head = coefficients[:j_star]
        tail = coefficients[j_star:]
        norm = float(np.sum(head) + np.sqrt(j_star) * np.linalg.norm(tail))
        candidates.append(norm)
    # Eq. 31 selects the j minimising ‖ζ↓_{m−j+1:d}‖²₂ / j; evaluating both
    # candidate norms and taking the minimum is equivalent for m = 2.
    norm_value = min(candidates)
    return float(min(1.0, 0.5 * norm_value**2))


def maximal_overlap(
    state: DensityMatrix | Statevector | np.ndarray,
    dims: tuple[int, int] | None = None,
) -> float:
    """Return ``f(ρ)`` (Eq. 1) for a two-qubit state.

    For pure states this is exact (Appendix A).  For mixed two-qubit states
    the function returns ``max(FEF(ρ), 1/2)`` where FEF is the fully entangled
    fraction; this is a lower bound on ``f`` in general and is tight for the
    mixed-state families shipped with this library (Werner/isotropic states
    and Bell-diagonal states with a single dominant component), which is what
    the noise-extension experiments use.
    """
    if isinstance(state, Statevector):
        return maximal_overlap_pure(state, dims)
    if isinstance(state, np.ndarray) and np.asarray(state).ndim == 1:
        return maximal_overlap_pure(state, dims)
    density = state if isinstance(state, DensityMatrix) else DensityMatrix(np.asarray(state))
    if density.num_qubits != 2:
        raise DimensionError(
            f"maximal_overlap for mixed states supports two qubits, got {density.num_qubits}"
        )
    if density.is_pure():
        return maximal_overlap_pure(density.to_statevector(), dims)
    return float(max(0.5, fully_entangled_fraction(density)))
