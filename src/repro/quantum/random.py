"""Random sampling of quantum objects.

The Figure-6 experiment draws 1000 Haar-random single-qubit input states; the
paper cites Mezzadri's QR-based construction [30] for sampling unitaries from
the Haar measure on U(N).  :func:`random_unitary` implements exactly that
construction (QR decomposition of a complex Ginibre matrix followed by the
phase correction ``Λ = diag(R_ii / |R_ii|)``), which is required for the
distribution to actually be Haar rather than merely column-orthonormal.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.states import DensityMatrix, Statevector
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "random_unitary",
    "random_statevector",
    "random_density_matrix",
    "random_pure_two_qubit_state",
    "haar_random_single_qubit_states",
]


def random_unitary(dim: int, seed: SeedLike = None) -> np.ndarray:
    """Return a Haar-random ``dim × dim`` unitary matrix (Mezzadri's method).

    Parameters
    ----------
    dim:
        Matrix dimension (any positive integer; not restricted to powers of two).
    seed:
        Seed or generator for reproducibility.
    """
    if dim < 1:
        raise ValueError(f"dim must be positive, got {dim}")
    rng = as_generator(seed)
    ginibre = (rng.standard_normal((dim, dim)) + 1j * rng.standard_normal((dim, dim))) / np.sqrt(2)
    q, r = np.linalg.qr(ginibre)
    # Phase correction: without it the QR decomposition is not Haar-distributed.
    diagonal = np.diag(r)
    phases = diagonal / np.abs(diagonal)
    return q * phases  # broadcasting multiplies column j of q by phases[j]


def random_statevector(num_qubits: int, seed: SeedLike = None) -> Statevector:
    """Return a Haar-random pure state on ``num_qubits`` qubits.

    Implemented as the first column of a Haar-random unitary, equivalently a
    normalised complex Gaussian vector.
    """
    rng = as_generator(seed)
    dim = 2**num_qubits
    vector = rng.standard_normal(dim) + 1j * rng.standard_normal(dim)
    vector /= np.linalg.norm(vector)
    return Statevector(vector, validate=False)


def random_density_matrix(num_qubits: int, rank: int | None = None, seed: SeedLike = None) -> DensityMatrix:
    """Return a random density matrix via the Hilbert–Schmidt (Ginibre) ensemble.

    Parameters
    ----------
    num_qubits:
        Register size.
    rank:
        Rank of the sampled state; defaults to full rank.
    seed:
        Seed or generator.
    """
    rng = as_generator(seed)
    dim = 2**num_qubits
    rank = dim if rank is None else rank
    if not 1 <= rank <= dim:
        raise ValueError(f"rank must be in [1, {dim}], got {rank}")
    ginibre = rng.standard_normal((dim, rank)) + 1j * rng.standard_normal((dim, rank))
    rho = ginibre @ ginibre.conj().T
    rho /= np.trace(rho)
    return DensityMatrix(rho, validate=False)


def random_pure_two_qubit_state(seed: SeedLike = None) -> Statevector:
    """Return a Haar-random pure two-qubit state (useful as a generic NME resource)."""
    return random_statevector(2, seed=seed)


def haar_random_single_qubit_states(count: int, seed: SeedLike = None) -> list[Statevector]:
    """Return ``count`` Haar-random single-qubit states ``W|0⟩``.

    This reproduces the workload of the paper's Section IV: a random unitary
    ``W`` is sampled per input and applied to ``|0⟩``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = as_generator(seed)
    states = []
    for _ in range(count):
        unitary = random_unitary(2, seed=rng)
        states.append(Statevector(unitary[:, 0], validate=False))
    return states
