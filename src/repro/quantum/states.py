"""Quantum state containers: :class:`Statevector` and :class:`DensityMatrix`.

Both classes are thin, immutable-by-convention wrappers around NumPy arrays.
They validate their data on construction, expose the operations the rest of
the library needs (evolution, expectation values, partial trace, sampling)
and convert freely between each other.

Qubit ordering is big-endian throughout: qubit 0 is the most significant bit
of a basis label, i.e. ``|q0 q1 ... q_{n-1}>``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionError, StateError
from repro.quantum.partial import partial_trace
from repro.utils.linalg import (
    ATOL_DEFAULT,
    is_density_matrix,
    is_statevector,
    ket,
    num_qubits_from_dim,
    outer,
)
from repro.utils.rng import SeedLike, as_generator

__all__ = ["Statevector", "DensityMatrix"]


class Statevector:
    """A pure n-qubit state.

    Parameters
    ----------
    data:
        Either a complex vector of length ``2**n``, a bitstring label such as
        ``"010"``, or another :class:`Statevector`.
    validate:
        When True (default) the vector is checked for normalisation.
    """

    __slots__ = ("_data", "_num_qubits")

    def __init__(self, data: "np.ndarray | str | Statevector", validate: bool = True):
        if isinstance(data, Statevector):
            vector = data._data.copy()
        elif isinstance(data, str):
            vector = ket(data)
        else:
            vector = np.asarray(data, dtype=complex).ravel()
        if validate and not is_statevector(vector):
            raise StateError(
                "data is not a normalised statevector of power-of-two dimension "
                f"(dim={vector.shape[0] if vector.ndim == 1 else vector.shape}, "
                f"norm={np.linalg.norm(vector):.6g})"
            )
        self._data = vector
        self._num_qubits = num_qubits_from_dim(vector.shape[0])

    # -- basic properties ---------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying complex vector (do not mutate)."""
        return self._data

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension ``2**num_qubits``."""
        return self._data.shape[0]

    def __len__(self) -> int:
        return self.dim

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Statevector(num_qubits={self.num_qubits}, data={np.round(self._data, 6)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Statevector):
            return NotImplemented
        return self.equiv(other, up_to_global_phase=False)

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "Statevector":
        """Return ``|0...0>`` on ``num_qubits`` qubits."""
        return cls(ket("0" * num_qubits), validate=False)

    @classmethod
    def from_label(cls, label: str) -> "Statevector":
        """Return the computational-basis state for a bitstring label."""
        return cls(label)

    # -- comparisons --------------------------------------------------------

    def equiv(
        self,
        other: "Statevector",
        atol: float = ATOL_DEFAULT,
        up_to_global_phase: bool = True,
    ) -> bool:
        """Return True if the two states are equal, optionally up to a global phase."""
        if self.dim != other.dim:
            return False
        if up_to_global_phase:
            overlap = np.vdot(other._data, self._data)
            return bool(abs(abs(overlap) - 1.0) <= atol)
        return bool(np.allclose(self._data, other._data, atol=atol))

    # -- transformations ----------------------------------------------------

    def evolve(self, unitary: np.ndarray, qubits: Sequence[int] | None = None) -> "Statevector":
        """Return the state after applying ``unitary`` on ``qubits``.

        When ``qubits`` is omitted the unitary must act on the full register.
        The implementation reshapes the statevector into a rank-n tensor and
        contracts only the target axes, avoiding construction of the full
        ``2^n × 2^n`` matrix.
        """
        unitary = np.asarray(unitary, dtype=complex)
        if qubits is None:
            if unitary.shape != (self.dim, self.dim):
                raise DimensionError(
                    f"unitary shape {unitary.shape} does not match state dim {self.dim}"
                )
            return Statevector(unitary @ self._data, validate=False)

        qubits = list(qubits)
        k = len(qubits)
        if unitary.shape != (2**k, 2**k):
            raise DimensionError(
                f"unitary shape {unitary.shape} does not match {k} target qubits"
            )
        n = self.num_qubits
        tensor = self._data.reshape([2] * n)
        op = unitary.reshape([2] * (2 * k))
        # Contract the unitary's column axes with the state's target axes.
        tensor = np.tensordot(op, tensor, axes=(list(range(k, 2 * k)), qubits))
        # tensordot puts the new (row) axes first; move them back to `qubits`.
        rest = [q for q in range(n) if q not in qubits]
        current_order = qubits + rest
        inverse = np.argsort(current_order)
        tensor = np.transpose(tensor, inverse)
        return Statevector(tensor.reshape(-1), validate=False)

    def tensor(self, other: "Statevector") -> "Statevector":
        """Return ``self ⊗ other`` (self's qubits become the most significant)."""
        return Statevector(np.kron(self._data, other._data), validate=False)

    # -- measurements and expectation values --------------------------------

    def probabilities(self, qubits: Sequence[int] | None = None) -> np.ndarray:
        """Return the Born-rule outcome probabilities.

        When ``qubits`` is given, the marginal distribution over those qubits
        (in the given order) is returned.
        """
        probabilities = np.abs(self._data) ** 2
        if qubits is None:
            return probabilities
        qubits = list(qubits)
        n = self.num_qubits
        tensor = probabilities.reshape([2] * n)
        other = [q for q in range(n) if q not in qubits]
        marginal = tensor.sum(axis=tuple(other)) if other else tensor
        # Axes of `marginal` follow the ascending order of `qubits`; permute to
        # the requested order.
        ascending = sorted(qubits)
        perm = [ascending.index(q) for q in qubits]
        marginal = np.transpose(marginal, perm)
        return marginal.reshape(-1)

    def expectation_value(self, operator: np.ndarray, qubits: Sequence[int] | None = None) -> complex:
        """Return ``<ψ|O|ψ>`` for operator ``O`` acting on ``qubits`` (default: all)."""
        if qubits is None:
            operator = np.asarray(operator, dtype=complex)
            if operator.shape != (self.dim, self.dim):
                raise DimensionError(
                    f"operator shape {operator.shape} does not match state dim {self.dim}"
                )
            return complex(np.vdot(self._data, operator @ self._data))
        evolved = self.evolve(operator, qubits)
        return complex(np.vdot(self._data, evolved._data))

    def sample_counts(
        self, shots: int, seed: SeedLike = None, qubits: Sequence[int] | None = None
    ) -> dict[str, int]:
        """Sample measurement outcomes in the computational basis.

        Returns a mapping from bitstrings (qubit 0 leftmost) to counts.
        """
        if shots < 0:
            raise ValueError(f"shots must be non-negative, got {shots}")
        rng = as_generator(seed)
        probabilities = self.probabilities(qubits)
        num_bits = self.num_qubits if qubits is None else len(list(qubits))
        if shots == 0:
            return {}
        outcomes = rng.multinomial(shots, probabilities)
        counts: dict[str, int] = {}
        for index in np.flatnonzero(outcomes):
            counts[format(index, f"0{num_bits}b")] = int(outcomes[index])
        return counts

    # -- conversions ---------------------------------------------------------

    def to_density_matrix(self) -> "DensityMatrix":
        """Return the rank-1 density operator ``|ψ><ψ|``."""
        return DensityMatrix(outer(self._data), validate=False)

    def reduced_density_matrix(self, keep: Sequence[int]) -> "DensityMatrix":
        """Return the reduced state on the ``keep`` qubits (others traced out)."""
        keep = list(keep)
        trace_out = [q for q in range(self.num_qubits) if q not in keep]
        reduced = partial_trace(outer(self._data), trace_out)
        return DensityMatrix(reduced, validate=False)


class DensityMatrix:
    """A (generally mixed) n-qubit state represented by its density operator."""

    __slots__ = ("_data", "_num_qubits")

    def __init__(
        self,
        data: "np.ndarray | str | Statevector | DensityMatrix",
        validate: bool = True,
    ):
        if isinstance(data, DensityMatrix):
            matrix = data._data.copy()
        elif isinstance(data, Statevector):
            matrix = outer(data.data)
        elif isinstance(data, str):
            matrix = outer(ket(data))
        else:
            array = np.asarray(data, dtype=complex)
            matrix = outer(array) if array.ndim == 1 else array
        if validate and not is_density_matrix(matrix):
            raise StateError(
                "data is not a valid density matrix (PSD, unit trace, power-of-two dim); "
                f"shape={matrix.shape}, trace={np.trace(matrix):.6g}"
            )
        self._data = matrix
        self._num_qubits = num_qubits_from_dim(matrix.shape[0])

    # -- basic properties ---------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying density matrix (do not mutate)."""
        return self._data

    @property
    def num_qubits(self) -> int:
        """Number of qubits."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension."""
        return self._data.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DensityMatrix(num_qubits={self.num_qubits})"

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """Return ``|0...0><0...0|``."""
        return Statevector.zero_state(num_qubits).to_density_matrix()

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        """Return the maximally mixed state ``I / 2^n``."""
        dim = 2**num_qubits
        return cls(np.eye(dim, dtype=complex) / dim, validate=False)

    # -- scalar diagnostics ---------------------------------------------------

    def purity(self) -> float:
        """Return ``Tr[ρ²]`` (1 for pure states, ``1/2^n`` for maximally mixed)."""
        return float(np.real(np.trace(self._data @ self._data)))

    def is_pure(self, atol: float = 1e-8) -> bool:
        """Return True when the state is pure within tolerance."""
        return abs(self.purity() - 1.0) <= atol

    def eigenvalues(self) -> np.ndarray:
        """Return the (real, ascending) eigenvalues of the density matrix."""
        return np.linalg.eigvalsh(self._data)

    def to_statevector(self, atol: float = 1e-8) -> Statevector:
        """Return the statevector of a pure density matrix.

        Raises
        ------
        StateError
            If the state is not pure within ``atol``.
        """
        if not self.is_pure(atol=atol):
            raise StateError(f"state is not pure (purity={self.purity():.6g})")
        eigenvalues, eigenvectors = np.linalg.eigh(self._data)
        return Statevector(eigenvectors[:, -1], validate=False)

    # -- transformations ----------------------------------------------------

    def evolve(self, unitary: np.ndarray, qubits: Sequence[int] | None = None) -> "DensityMatrix":
        """Return ``U ρ U†`` with ``U`` acting on ``qubits`` (default: all)."""
        unitary = np.asarray(unitary, dtype=complex)
        if qubits is None:
            if unitary.shape != (self.dim, self.dim):
                raise DimensionError(
                    f"unitary shape {unitary.shape} does not match state dim {self.dim}"
                )
            return DensityMatrix(unitary @ self._data @ unitary.conj().T, validate=False)
        from repro.utils.linalg import expand_operator

        full = expand_operator(unitary, list(qubits), self.num_qubits)
        return DensityMatrix(full @ self._data @ full.conj().T, validate=False)

    def apply_kraus(
        self, kraus_operators: Sequence[np.ndarray], qubits: Sequence[int] | None = None
    ) -> "DensityMatrix":
        """Apply a Kraus channel ``ρ → Σ_i K_i ρ K_i†`` on ``qubits`` (default: all)."""
        from repro.utils.linalg import expand_operator

        result = np.zeros_like(self._data)
        for kraus in kraus_operators:
            kraus = np.asarray(kraus, dtype=complex)
            full = (
                kraus
                if qubits is None
                else expand_operator(kraus, list(qubits), self.num_qubits)
            )
            result += full @ self._data @ full.conj().T
        return DensityMatrix(result, validate=False)

    def tensor(self, other: "DensityMatrix") -> "DensityMatrix":
        """Return ``self ⊗ other``."""
        return DensityMatrix(np.kron(self._data, other._data), validate=False)

    def partial_trace(self, trace_out: Sequence[int]) -> "DensityMatrix":
        """Return the state with the given qubits traced out."""
        return DensityMatrix(partial_trace(self._data, trace_out), validate=False)

    # -- measurements and expectation values --------------------------------

    def probabilities(self) -> np.ndarray:
        """Return the diagonal (computational-basis outcome probabilities)."""
        return np.real(np.diag(self._data)).clip(min=0.0)

    def expectation_value(self, operator: np.ndarray) -> complex:
        """Return ``Tr[O ρ]``."""
        operator = np.asarray(operator, dtype=complex)
        if operator.shape != (self.dim, self.dim):
            raise DimensionError(
                f"operator shape {operator.shape} does not match state dim {self.dim}"
            )
        return complex(np.trace(operator @ self._data))

    def sample_counts(self, shots: int, seed: SeedLike = None) -> dict[str, int]:
        """Sample computational-basis outcomes from the diagonal of ρ."""
        if shots < 0:
            raise ValueError(f"shots must be non-negative, got {shots}")
        if shots == 0:
            return {}
        rng = as_generator(seed)
        probabilities = self.probabilities()
        total = probabilities.sum()
        if total <= 0:
            raise StateError("density matrix has no positive diagonal weight")
        probabilities = probabilities / total
        outcomes = rng.multinomial(shots, probabilities)
        counts: dict[str, int] = {}
        for index in np.flatnonzero(outcomes):
            counts[format(index, f"0{self.num_qubits}b")] = int(outcomes[index])
        return counts
