"""Bell states and non-maximally entangled (NME) two-qubit states.

The central resource family of the paper is the pure NME state

.. math::

    |\\Phi_k\\rangle = K (|00\\rangle + k |11\\rangle),
    \\qquad K = \\frac{1}{\\sqrt{1 + k^2}}, \\quad k \\in \\mathbb{R}_{\\ge 0},

which interpolates between a product state (``k = 0`` or ``k → ∞``) and the
maximally entangled Bell state ``|Φ⟩`` (``k = 1``).  This module provides the
state family, the Bell basis labelled by Pauli operators
(``|Φ_σ⟩ = (σ ⊗ I)|Φ⟩``), the maximal overlap ``f(Φ_k)`` (Eq. 10), and the
conversion between ``k`` and ``f`` used to parametrise experiments.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StateError
from repro.quantum.gates import PAULI_MATRICES
from repro.quantum.states import DensityMatrix, Statevector

__all__ = [
    "bell_state",
    "bell_basis_states",
    "phi_k_state",
    "phi_k_density",
    "phi_k_overlap",
    "k_from_overlap",
    "overlap_from_k",
    "bell_overlaps",
    "werner_state",
]


def bell_state(pauli_label: str = "I") -> Statevector:
    """Return the Bell basis state ``|Φ_σ⟩ = (σ ⊗ I)|Φ⟩`` for ``σ ∈ {I, X, Y, Z}``.

    ``|Φ_I⟩`` is the standard maximally entangled state
    ``(|00⟩ + |11⟩)/√2`` used as the reference state of the entanglement
    measure ``f``.
    """
    if pauli_label not in PAULI_MATRICES:
        raise StateError(f"unknown Pauli label {pauli_label!r}; expected one of I, X, Y, Z")
    phi = np.array([1.0, 0.0, 0.0, 1.0], dtype=complex) / np.sqrt(2)
    sigma = np.kron(PAULI_MATRICES[pauli_label], np.eye(2, dtype=complex))
    return Statevector(sigma @ phi, validate=False)


def bell_basis_states() -> dict[str, Statevector]:
    """Return the four Bell basis states keyed by their Pauli labels."""
    return {label: bell_state(label) for label in "IXYZ"}


def phi_k_state(k: float) -> Statevector:
    """Return the pure NME state ``|Φ_k⟩ = K (|00⟩ + k|11⟩)`` (Eq. 6).

    Parameters
    ----------
    k:
        Non-negative real Schmidt-coefficient ratio.  ``k = 0`` is the product
        state ``|00⟩``; ``k = 1`` is the maximally entangled Bell state.
    """
    if k < 0:
        raise StateError(f"k must be non-negative, got {k}")
    normalisation = 1.0 / np.sqrt(1.0 + k * k)
    vector = np.zeros(4, dtype=complex)
    vector[0] = normalisation
    vector[3] = normalisation * k
    return Statevector(vector, validate=False)


def phi_k_density(k: float) -> DensityMatrix:
    """Return ``Φ_k = |Φ_k⟩⟨Φ_k|`` as a :class:`DensityMatrix`."""
    return phi_k_state(k).to_density_matrix()


def overlap_from_k(k: float) -> float:
    """Return ``f(Φ_k) = (k + 1)² / (2 (k² + 1))`` (Eq. 10).

    This equals the maximal LOCC overlap of ``Φ_k`` with the maximally
    entangled state and ranges from 1/2 (``k ∈ {0, ∞}``) to 1 (``k = 1``).
    """
    if k < 0:
        raise StateError(f"k must be non-negative, got {k}")
    return float((k + 1.0) ** 2 / (2.0 * (k * k + 1.0)))


# Backwards-compatible alias matching the paper's symbol.
phi_k_overlap = overlap_from_k


def k_from_overlap(f: float, branch: str = "lower") -> float:
    """Invert Eq. 10: return ``k`` such that ``f(Φ_k) = f``.

    The relation is two-to-one (``k`` and ``1/k`` give the same overlap);
    ``branch="lower"`` returns the solution with ``k ≤ 1`` and
    ``branch="upper"`` the one with ``k ≥ 1``.

    Parameters
    ----------
    f:
        Target overlap in ``[1/2, 1]``.
    branch:
        Which of the two solutions to return.
    """
    if not 0.5 <= f <= 1.0:
        raise StateError(f"overlap must be in [0.5, 1.0], got {f}")
    if branch not in {"lower", "upper"}:
        raise ValueError(f"branch must be 'lower' or 'upper', got {branch!r}")
    # Solve f (k² + 1) 2 = (k + 1)²  ⇔  (2f − 1) k² − 2k + (2f − 1) = 0.
    a = 2.0 * f - 1.0
    if a == 0.0:
        # f = 1/2: the separable endpoint; k = 0 (lower) or k → ∞ (upper).
        if branch == "lower":
            return 0.0
        return float("inf")
    discriminant = max(1.0 - a * a, 0.0)
    root = np.sqrt(discriminant)
    k_lower = (1.0 - root) / a
    k_upper = (1.0 + root) / a
    return float(k_lower if branch == "lower" else k_upper)


def bell_overlaps(state: DensityMatrix | Statevector | np.ndarray) -> dict[str, float]:
    """Return the overlaps ``⟨Φ_σ| ρ |Φ_σ⟩`` for all four Bell states.

    These overlaps determine the Pauli-error probabilities of teleportation
    with resource state ρ (Eq. 22); for ``Φ_k`` they are
    ``(k+1)²/(2(k²+1))`` for σ=I, ``(k−1)²/(2(k²+1))`` for σ=Z and 0 for
    σ=X, Y (Appendix C, Eqs. 55–58).
    """
    if isinstance(state, Statevector):
        rho = state.to_density_matrix().data
    elif isinstance(state, DensityMatrix):
        rho = state.data
    else:
        array = np.asarray(state, dtype=complex)
        rho = np.outer(array, array.conj()) if array.ndim == 1 else array
    if rho.shape != (4, 4):
        raise StateError(f"expected a two-qubit state, got shape {rho.shape}")
    overlaps = {}
    for label, bell in bell_basis_states().items():
        vector = bell.data
        overlaps[label] = float(np.real(np.vdot(vector, rho @ vector)))
    return overlaps


def werner_state(p: float) -> DensityMatrix:
    """Return the two-qubit Werner state ``p·Φ + (1−p)·I/4``.

    A convenient family of *mixed* NME states used by the noise-robustness
    extension experiments (the paper's future-work direction on mixed
    resource states).
    """
    if not 0.0 <= p <= 1.0:
        raise StateError(f"p must be in [0, 1], got {p}")
    phi = bell_state("I").to_density_matrix().data
    identity = np.eye(4, dtype=complex) / 4.0
    return DensityMatrix(p * phi + (1.0 - p) * identity, validate=False)
