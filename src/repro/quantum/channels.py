"""Quantum channels (completely positive maps) in Kraus representation.

Wire cutting is, formally, a quasiprobability decomposition of a channel:
each QPD term is itself a completely positive trace-non-increasing (CPTN)
map implemented with local operations and classical communication.  This
module supplies the channel container used to state and *verify* those
decompositions analytically (the simulators execute circuits instead, but
tests cross-check both paths).

A channel is stored as a list of Kraus operators.  Conversions to the Choi
matrix and the natural superoperator representation are provided, along with
complete-positivity / trace-preservation predicates and a small library of
standard noise channels used by the mixed-resource-state extension.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ChannelError, DimensionError
from repro.quantum.states import DensityMatrix
from repro.utils.linalg import ATOL_DEFAULT, num_qubits_from_dim

__all__ = [
    "QuantumChannel",
    "identity_channel",
    "depolarizing_channel",
    "dephasing_channel",
    "amplitude_damping_channel",
    "measure_and_prepare_channel",
]


class QuantumChannel:
    """A completely positive map given by Kraus operators ``{K_i}``.

    The channel need not be trace preserving: QPD terms are generally only
    trace non-increasing (e.g. a projective measurement outcome followed by a
    preparation).
    """

    __slots__ = ("_kraus", "_dim_in", "_dim_out")

    def __init__(self, kraus_operators: Sequence[np.ndarray]):
        kraus = [np.asarray(k, dtype=complex) for k in kraus_operators]
        if not kraus:
            raise ChannelError("a channel needs at least one Kraus operator")
        shape = kraus[0].shape
        if any(k.ndim != 2 for k in kraus):
            raise ChannelError("Kraus operators must be 2-D arrays")
        if any(k.shape != shape for k in kraus):
            raise ChannelError("all Kraus operators must have the same shape")
        self._kraus = kraus
        self._dim_out, self._dim_in = shape

    # -- properties ----------------------------------------------------------

    @property
    def kraus_operators(self) -> list[np.ndarray]:
        """The Kraus operators (do not mutate)."""
        return list(self._kraus)

    @property
    def dim_in(self) -> int:
        """Input Hilbert-space dimension."""
        return self._dim_in

    @property
    def dim_out(self) -> int:
        """Output Hilbert-space dimension."""
        return self._dim_out

    @property
    def num_qubits_in(self) -> int:
        """Number of input qubits."""
        return num_qubits_from_dim(self._dim_in)

    @property
    def num_qubits_out(self) -> int:
        """Number of output qubits."""
        return num_qubits_from_dim(self._dim_out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumChannel(num_kraus={len(self._kraus)}, "
            f"dim_in={self._dim_in}, dim_out={self._dim_out})"
        )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_unitary(cls, unitary: np.ndarray) -> "QuantumChannel":
        """Return the unitary channel ``ρ ↦ UρU†``."""
        return cls([np.asarray(unitary, dtype=complex)])

    @classmethod
    def from_choi(cls, choi: np.ndarray, dim_in: int, atol: float = 1e-9) -> "QuantumChannel":
        """Reconstruct a channel from its Choi matrix.

        The Choi matrix convention is
        ``C = Σ_{ij} |i⟩⟨j| ⊗ E(|i⟩⟨j|)`` (input system first).
        """
        choi = np.asarray(choi, dtype=complex)
        total = choi.shape[0]
        if choi.shape[0] != choi.shape[1] or total % dim_in != 0:
            raise DimensionError(f"Choi matrix shape {choi.shape} incompatible with dim_in={dim_in}")
        dim_out = total // dim_in
        eigenvalues, eigenvectors = np.linalg.eigh((choi + choi.conj().T) / 2.0)
        kraus = []
        for value, vector in zip(eigenvalues, eigenvectors.T):
            if value < -atol:
                raise ChannelError(f"Choi matrix is not PSD (eigenvalue {value:.3g})")
            if value > atol:
                kraus.append(np.sqrt(value) * vector.reshape(dim_in, dim_out).T)
        if not kraus:
            kraus = [np.zeros((dim_out, dim_in), dtype=complex)]
        return cls(kraus)

    # -- representations --------------------------------------------------------

    def choi_matrix(self) -> np.ndarray:
        """Return the Choi matrix ``Σ_{ij} |i⟩⟨j| ⊗ E(|i⟩⟨j|)``."""
        dim_in, dim_out = self._dim_in, self._dim_out
        choi = np.zeros((dim_in * dim_out, dim_in * dim_out), dtype=complex)
        for kraus in self._kraus:
            # vec(K) in the convention matching the Choi definition above:
            # C = Σ_K (I ⊗ K) |Ω⟩⟨Ω| (I ⊗ K†) with |Ω⟩ = Σ_i |i⟩|i⟩.
            vec = kraus.T.reshape(-1)  # Σ_i |i⟩ ⊗ K|i⟩ flattened
            choi += np.outer(vec, vec.conj())
        return choi

    def superoperator(self) -> np.ndarray:
        """Return the natural (column-stacking) superoperator ``Σ_i K_i ⊗ K̄_i``...

        Convention: ``vec(E(ρ)) = S · vec(ρ)`` with row-major (C-order)
        vectorisation, giving ``S = Σ_i K_i ⊗ conj(K_i)``.
        """
        dim_in, dim_out = self._dim_in, self._dim_out
        superop = np.zeros((dim_out * dim_out, dim_in * dim_in), dtype=complex)
        for kraus in self._kraus:
            superop += np.kron(kraus, kraus.conj())
        return superop

    # -- predicates --------------------------------------------------------------

    def is_trace_preserving(self, atol: float = ATOL_DEFAULT) -> bool:
        """Return True when ``Σ_i K_i†K_i = I``."""
        total = sum(k.conj().T @ k for k in self._kraus)
        return bool(np.allclose(total, np.eye(self._dim_in), atol=atol))

    def is_trace_nonincreasing(self, atol: float = ATOL_DEFAULT) -> bool:
        """Return True when ``Σ_i K_i†K_i ≤ I`` (CPTN condition)."""
        total = sum(k.conj().T @ k for k in self._kraus)
        eigenvalues = np.linalg.eigvalsh(np.eye(self._dim_in) - total)
        return bool(np.all(eigenvalues >= -atol))

    def is_completely_positive(self, atol: float = 1e-9) -> bool:
        """Return True when the Choi matrix is PSD (always true for Kraus form)."""
        eigenvalues = np.linalg.eigvalsh(self.choi_matrix())
        return bool(np.all(eigenvalues >= -atol))

    def is_unital(self, atol: float = ATOL_DEFAULT) -> bool:
        """Return True when the channel maps the identity to the identity."""
        if self._dim_in != self._dim_out:
            return False
        total = sum(k @ k.conj().T for k in self._kraus)
        return bool(np.allclose(total, np.eye(self._dim_out), atol=atol))

    # -- algebra --------------------------------------------------------------

    def compose(self, other: "QuantumChannel") -> "QuantumChannel":
        """Return the channel ``other ∘ self`` (``other`` applied after ``self``)."""
        if self._dim_out != other._dim_in:
            raise DimensionError("channel dimensions do not compose")
        kraus = [b @ a for a in self._kraus for b in other._kraus]
        return QuantumChannel(kraus)

    def tensor(self, other: "QuantumChannel") -> "QuantumChannel":
        """Return the parallel composition ``self ⊗ other``."""
        kraus = [np.kron(a, b) for a in self._kraus for b in other._kraus]
        return QuantumChannel(kraus)

    def scale(self, factor: float) -> "QuantumChannel":
        """Return the channel with every Kraus operator scaled by ``sqrt(factor)``.

        Only non-negative factors are allowed (negative weights belong in the
        QPD coefficients, not in the channels themselves).
        """
        if factor < 0:
            raise ChannelError("scale factor must be non-negative")
        root = np.sqrt(factor)
        return QuantumChannel([root * k for k in self._kraus])

    # -- action ----------------------------------------------------------------

    def apply(self, state: DensityMatrix | np.ndarray) -> DensityMatrix:
        """Apply the channel to a density matrix (result may be subnormalised)."""
        rho = state.data if isinstance(state, DensityMatrix) else np.asarray(state, dtype=complex)
        if rho.shape != (self._dim_in, self._dim_in):
            raise DimensionError(
                f"state dimension {rho.shape} does not match channel input {self._dim_in}"
            )
        result = np.zeros((self._dim_out, self._dim_out), dtype=complex)
        for kraus in self._kraus:
            result += kraus @ rho @ kraus.conj().T
        return DensityMatrix(result, validate=False)

    def apply_matrix(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a raw matrix without wrapping the result."""
        result = np.zeros((self._dim_out, self._dim_out), dtype=complex)
        for kraus in self._kraus:
            result += kraus @ rho @ kraus.conj().T
        return result


# ---------------------------------------------------------------------------
# Standard channels
# ---------------------------------------------------------------------------


def identity_channel(num_qubits: int = 1) -> QuantumChannel:
    """Return the identity channel on ``num_qubits`` qubits."""
    return QuantumChannel([np.eye(2**num_qubits, dtype=complex)])


def depolarizing_channel(p: float, num_qubits: int = 1) -> QuantumChannel:
    """Return the depolarising channel ``ρ ↦ (1−p)ρ + p·I/2^n``."""
    if not 0.0 <= p <= 1.0:
        raise ChannelError(f"p must be in [0, 1], got {p}")
    from repro.quantum.paulis import pauli_basis

    dim = 2**num_qubits
    kraus = [np.sqrt(1.0 - p * (dim * dim - 1) / (dim * dim)) * np.eye(dim, dtype=complex)]
    weight = np.sqrt(p) / dim
    for label, matrix in pauli_basis(num_qubits).items():
        if label == "I" * num_qubits:
            continue
        kraus.append(weight * matrix)
    return QuantumChannel(kraus)


def dephasing_channel(p: float) -> QuantumChannel:
    """Return the single-qubit dephasing channel ``ρ ↦ (1−p)ρ + p·ZρZ``."""
    if not 0.0 <= p <= 1.0:
        raise ChannelError(f"p must be in [0, 1], got {p}")
    z = np.array([[1, 0], [0, -1]], dtype=complex)
    return QuantumChannel([np.sqrt(1.0 - p) * np.eye(2, dtype=complex), np.sqrt(p) * z])


def amplitude_damping_channel(gamma: float) -> QuantumChannel:
    """Return the single-qubit amplitude damping channel with decay ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ChannelError(f"gamma must be in [0, 1], got {gamma}")
    k0 = np.array([[1, 0], [0, np.sqrt(1.0 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return QuantumChannel([k0, k1])


def measure_and_prepare_channel(
    measurement_basis: Sequence[np.ndarray],
    prepared_states: Sequence[np.ndarray],
) -> QuantumChannel:
    """Return the channel ``ρ ↦ Σ_j ⟨m_j|ρ|m_j⟩ |p_j⟩⟨p_j|``.

    Parameters
    ----------
    measurement_basis:
        Kets ``|m_j⟩`` defining a (not necessarily complete) projective
        measurement.
    prepared_states:
        Kets ``|p_j⟩`` prepared conditionally on outcome ``j``.
    """
    if len(measurement_basis) != len(prepared_states):
        raise ChannelError("measurement_basis and prepared_states must have the same length")
    kraus = []
    for measured, prepared in zip(measurement_basis, prepared_states):
        measured = np.asarray(measured, dtype=complex).ravel()
        prepared = np.asarray(prepared, dtype=complex).ravel()
        kraus.append(np.outer(prepared, measured.conj()))
    return QuantumChannel(kraus)
