"""Dense operator wrapper with composition/tensor arithmetic.

:class:`Operator` is a convenience wrapper used by tests and the cutting
machinery when a full matrix for a circuit or gate sequence is needed (e.g.
to verify that a QPD reconstructs the identity channel exactly).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionError
from repro.quantum.states import DensityMatrix, Statevector
from repro.utils.linalg import (
    ATOL_DEFAULT,
    expand_operator,
    is_hermitian,
    is_unitary,
    num_qubits_from_dim,
)

__all__ = ["Operator"]


class Operator:
    """A dense linear operator on an n-qubit Hilbert space."""

    __slots__ = ("_data", "_num_qubits")

    def __init__(self, data: "np.ndarray | Operator"):
        if isinstance(data, Operator):
            matrix = data._data.copy()
        else:
            matrix = np.asarray(data, dtype=complex)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise DimensionError(f"operator must be square, got shape {matrix.shape}")
        self._num_qubits = num_qubits_from_dim(matrix.shape[0])
        self._data = matrix

    # -- properties ----------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying matrix (do not mutate)."""
        return self._data

    @property
    def num_qubits(self) -> int:
        """Number of qubits the operator acts on."""
        return self._num_qubits

    @property
    def dim(self) -> int:
        """Hilbert-space dimension."""
        return self._data.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Operator(num_qubits={self.num_qubits})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operator):
            return NotImplemented
        return self._data.shape == other._data.shape and bool(
            np.allclose(self._data, other._data, atol=ATOL_DEFAULT)
        )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def identity(cls, num_qubits: int) -> "Operator":
        """Return the identity operator on ``num_qubits`` qubits."""
        return cls(np.eye(2**num_qubits, dtype=complex))

    @classmethod
    def from_gate(cls, name: str, params: tuple[float, ...] = ()) -> "Operator":
        """Return the operator of a named gate from the gate library."""
        from repro.quantum.gates import gate_matrix

        return cls(gate_matrix(name, params))

    # -- algebra ---------------------------------------------------------------

    def compose(self, other: "Operator") -> "Operator":
        """Return ``other ∘ self`` (``other`` applied after ``self``)."""
        if self.dim != other.dim:
            raise DimensionError("operator dimensions do not match")
        return Operator(other._data @ self._data)

    def tensor(self, other: "Operator") -> "Operator":
        """Return ``self ⊗ other``."""
        return Operator(np.kron(self._data, other._data))

    def adjoint(self) -> "Operator":
        """Return the conjugate transpose."""
        return Operator(self._data.conj().T)

    def expand_to(self, qubits: Sequence[int], num_qubits: int) -> "Operator":
        """Embed the operator acting on ``qubits`` into a larger register."""
        return Operator(expand_operator(self._data, list(qubits), num_qubits))

    def power(self, exponent: int) -> "Operator":
        """Return the operator raised to an integer power."""
        return Operator(np.linalg.matrix_power(self._data, exponent))

    # -- predicates --------------------------------------------------------------

    def is_unitary(self, atol: float = ATOL_DEFAULT) -> bool:
        """Return True when the operator is unitary."""
        return is_unitary(self._data, atol=atol)

    def is_hermitian(self, atol: float = ATOL_DEFAULT) -> bool:
        """Return True when the operator is Hermitian."""
        return is_hermitian(self._data, atol=atol)

    # -- action -----------------------------------------------------------------

    def apply(self, state: Statevector | DensityMatrix) -> Statevector | DensityMatrix:
        """Apply the operator to a state (unitarily for density matrices)."""
        if isinstance(state, Statevector):
            return state.evolve(self._data)
        return state.evolve(self._data)

    def expectation(self, state: Statevector | DensityMatrix) -> complex:
        """Return ``⟨ψ|O|ψ⟩`` or ``Tr[Oρ]``."""
        if isinstance(state, Statevector):
            return state.expectation_value(self._data)
        return state.expectation_value(self._data)
