"""Standard gate matrix library.

Every function returns a fresh ``numpy.ndarray`` with ``complex128`` dtype so
callers may mutate the result without affecting shared module state.  Named
constants (``X``, ``H``, ...) are provided for the fixed gates; treat them as
read-only.

The two-qubit matrices follow the big-endian convention used throughout the
library: for a gate acting on qubits ``(a, b)``, qubit ``a`` is the most
significant bit of the row/column index.  For example :data:`CX` is the
controlled-NOT with the *first* tensor factor as control.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.exceptions import GateError

__all__ = [
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "CX",
    "CZ",
    "CY",
    "SWAP",
    "ISWAP",
    "CCX",
    "CSWAP",
    "rx",
    "ry",
    "rz",
    "phase",
    "u3",
    "rxx",
    "ryy",
    "rzz",
    "controlled",
    "gate_matrix",
    "cached_gate_matrix",
    "GATE_ALIASES",
    "PAULI_MATRICES",
]

# ---------------------------------------------------------------------------
# Fixed single-qubit gates
# ---------------------------------------------------------------------------

I = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
TDG = T.conj().T
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

#: Pauli matrices keyed by their single-letter label.
PAULI_MATRICES: dict[str, np.ndarray] = {"I": I, "X": X, "Y": Y, "Z": Z}

# ---------------------------------------------------------------------------
# Fixed two- and three-qubit gates (big-endian: first factor = most significant)
# ---------------------------------------------------------------------------

CX = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
        [0, 0, 1, 0],
    ],
    dtype=complex,
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
CY = np.array(
    [
        [1, 0, 0, 0],
        [0, 1, 0, 0],
        [0, 0, 0, -1j],
        [0, 0, 1j, 0],
    ],
    dtype=complex,
)
SWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)
ISWAP = np.array(
    [
        [1, 0, 0, 0],
        [0, 0, 1j, 0],
        [0, 1j, 0, 0],
        [0, 0, 0, 1],
    ],
    dtype=complex,
)

CCX = np.eye(8, dtype=complex)
CCX[[6, 7], :] = CCX[[7, 6], :]

CSWAP = np.eye(8, dtype=complex)
CSWAP[[5, 6], :] = CSWAP[[6, 5], :]


# ---------------------------------------------------------------------------
# Parameterised gates
# ---------------------------------------------------------------------------


def rx(theta: float) -> np.ndarray:
    """Rotation about the X axis: ``exp(-i θ X / 2)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    """Rotation about the Y axis: ``exp(-i θ Y / 2)``."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    """Rotation about the Z axis: ``exp(-i θ Z / 2)``."""
    return np.array(
        [[np.exp(-1j * theta / 2), 0], [0, np.exp(1j * theta / 2)]], dtype=complex
    )


def phase(lam: float) -> np.ndarray:
    """Phase gate ``diag(1, e^{iλ})`` (Qiskit ``p`` gate)."""
    return np.array([[1, 0], [0, np.exp(1j * lam)]], dtype=complex)


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    """Generic single-qubit unitary in the standard ``U(θ, φ, λ)`` parametrisation."""
    c, s = np.cos(theta / 2), np.sin(theta / 2)
    return np.array(
        [
            [c, -np.exp(1j * lam) * s],
            [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c],
        ],
        dtype=complex,
    )


def rxx(theta: float) -> np.ndarray:
    """Two-qubit XX interaction: ``exp(-i θ X⊗X / 2)``."""
    return _two_qubit_rotation(np.kron(X, X), theta)


def ryy(theta: float) -> np.ndarray:
    """Two-qubit YY interaction: ``exp(-i θ Y⊗Y / 2)``."""
    return _two_qubit_rotation(np.kron(Y, Y), theta)


def rzz(theta: float) -> np.ndarray:
    """Two-qubit ZZ interaction: ``exp(-i θ Z⊗Z / 2)``."""
    return _two_qubit_rotation(np.kron(Z, Z), theta)


def _two_qubit_rotation(pauli_product: np.ndarray, theta: float) -> np.ndarray:
    """Return ``exp(-i θ P / 2)`` for an involutory Pauli product ``P``."""
    identity = np.eye(pauli_product.shape[0], dtype=complex)
    return np.cos(theta / 2) * identity - 1j * np.sin(theta / 2) * pauli_product


def controlled(unitary: np.ndarray, num_controls: int = 1) -> np.ndarray:
    """Return the controlled version of ``unitary`` with ``num_controls`` controls.

    Controls are the most significant qubits (big-endian), so the returned
    matrix applies ``unitary`` to the trailing qubits only when all control
    bits are 1.
    """
    unitary = np.asarray(unitary, dtype=complex)
    if unitary.ndim != 2 or unitary.shape[0] != unitary.shape[1]:
        raise GateError(f"unitary must be square, got shape {unitary.shape}")
    if num_controls < 1:
        raise GateError(f"num_controls must be >= 1, got {num_controls}")
    target_dim = unitary.shape[0]
    dim = (2**num_controls) * target_dim
    result = np.eye(dim, dtype=complex)
    result[dim - target_dim :, dim - target_dim :] = unitary
    return result


# ---------------------------------------------------------------------------
# Name-based lookup
# ---------------------------------------------------------------------------

_FIXED_GATES: dict[str, np.ndarray] = {
    "i": I,
    "id": I,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "tdg": TDG,
    "sx": SX,
    "cx": CX,
    "cnot": CX,
    "cz": CZ,
    "cy": CY,
    "swap": SWAP,
    "iswap": ISWAP,
    "ccx": CCX,
    "toffoli": CCX,
    "cswap": CSWAP,
    "fredkin": CSWAP,
}

_PARAMETRIC_GATES: dict[str, tuple[int, object]] = {
    "rx": (1, rx),
    "ry": (1, ry),
    "rz": (1, rz),
    "p": (1, phase),
    "phase": (1, phase),
    "u": (3, u3),
    "u3": (3, u3),
    "rxx": (1, rxx),
    "ryy": (1, ryy),
    "rzz": (1, rzz),
}

#: Mapping from every accepted gate name to its canonical name.
GATE_ALIASES: dict[str, str] = {
    "id": "i",
    "cnot": "cx",
    "toffoli": "ccx",
    "fredkin": "cswap",
    "phase": "p",
    "u3": "u",
}


def gate_matrix(name: str, params: tuple[float, ...] = ()) -> np.ndarray:
    """Return the unitary matrix for gate ``name`` with ``params``.

    Parameters
    ----------
    name:
        Gate name, case-insensitive.  Both canonical names and aliases (see
        :data:`GATE_ALIASES`) are accepted.
    params:
        Gate parameters; must match the gate's arity (0 for fixed gates).

    Raises
    ------
    GateError
        For unknown names or wrong parameter counts.
    """
    key = name.lower()
    if key in _FIXED_GATES:
        if params:
            raise GateError(f"gate {name!r} takes no parameters, got {params}")
        return _FIXED_GATES[key].copy()
    if key in _PARAMETRIC_GATES:
        arity, factory = _PARAMETRIC_GATES[key]
        if len(params) != arity:
            raise GateError(
                f"gate {name!r} takes {arity} parameter(s), got {len(params)}"
            )
        return factory(*params)
    raise GateError(f"unknown gate {name!r}")


@lru_cache(maxsize=1024)
def cached_gate_matrix(name: str, params: tuple[float, ...] = ()) -> np.ndarray:
    """Return a shared, read-only gate matrix for ``name`` with ``params``.

    Unlike :func:`gate_matrix` the result must **not** be mutated (the array
    is marked non-writeable).  Repeated gate constructions — the circuit
    builder's hot path — get the same object back, which also lets the
    batched simulator detect identical gates across a circuit batch by
    object identity instead of elementwise comparison.
    """
    matrix = gate_matrix(name, params)
    matrix.setflags(write=False)
    return matrix
