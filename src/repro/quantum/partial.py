"""Partial trace and partial transpose on multi-qubit operators.

The library's qubit ordering is big-endian: qubit 0 is the most significant
tensor factor.  All functions here operate on dense NumPy arrays and use
reshape/transpose (views, no copies until the final contraction) following
the NumPy performance guidance.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import DimensionError
from repro.utils.linalg import num_qubits_from_dim

__all__ = ["partial_trace", "partial_transpose", "permute_qubits_vector", "permute_qubits_matrix"]


def _check_qubits(qubits: Sequence[int], num_qubits: int) -> list[int]:
    qubits = list(qubits)
    if len(set(qubits)) != len(qubits):
        raise DimensionError(f"duplicate qubit indices in {qubits}")
    for q in qubits:
        if not 0 <= q < num_qubits:
            raise DimensionError(f"qubit index {q} out of range for {num_qubits} qubits")
    return qubits


def partial_trace(matrix: np.ndarray, trace_out: Sequence[int]) -> np.ndarray:
    """Trace out the qubits in ``trace_out`` from a density-like matrix.

    Parameters
    ----------
    matrix:
        A ``2^n × 2^n`` operator.
    trace_out:
        Qubit indices to remove.  The remaining qubits keep their relative
        order in the returned operator.

    Returns
    -------
    numpy.ndarray
        The reduced operator on the remaining qubits (a 1×1 matrix containing
        the trace when all qubits are traced out).
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DimensionError(f"matrix must be square, got shape {matrix.shape}")
    num_qubits = num_qubits_from_dim(matrix.shape[0])
    trace_out = _check_qubits(trace_out, num_qubits)
    keep = [q for q in range(num_qubits) if q not in trace_out]

    tensor = matrix.reshape([2] * (2 * num_qubits))
    # Row axes are 0..n-1, column axes are n..2n-1.
    # einsum with repeated indices on traced qubits performs the partial trace.
    row_labels = list(range(num_qubits))
    col_labels = [
        row_labels[q] if q in trace_out else num_qubits + q for q in range(num_qubits)
    ]
    out_labels = [q for q in keep] + [num_qubits + q for q in keep]
    result = np.einsum(tensor, row_labels + col_labels, out_labels)
    dim_keep = 2 ** len(keep)
    return result.reshape(dim_keep, dim_keep) if keep else result.reshape(1, 1)


def partial_transpose(matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
    """Return the partial transpose of ``matrix`` over the given ``qubits``.

    Used by the negativity entanglement measure (PPT criterion).
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DimensionError(f"matrix must be square, got shape {matrix.shape}")
    num_qubits = num_qubits_from_dim(matrix.shape[0])
    qubits = _check_qubits(qubits, num_qubits)

    tensor = matrix.reshape([2] * (2 * num_qubits))
    axes = list(range(2 * num_qubits))
    for q in qubits:
        axes[q], axes[num_qubits + q] = axes[num_qubits + q], axes[q]
    dim = 2**num_qubits
    return np.transpose(tensor, axes).reshape(dim, dim)


def permute_qubits_vector(vector: np.ndarray, permutation: Sequence[int]) -> np.ndarray:
    """Reorder the qubits of a statevector.

    ``permutation[i]`` gives the *source* qubit that ends up at position ``i``
    of the output.  For example ``permutation = [1, 0]`` swaps two qubits.
    """
    vector = np.asarray(vector, dtype=complex)
    num_qubits = num_qubits_from_dim(vector.shape[0])
    permutation = _check_qubits(permutation, num_qubits)
    if len(permutation) != num_qubits:
        raise DimensionError("permutation must mention every qubit exactly once")
    tensor = vector.reshape([2] * num_qubits)
    return np.transpose(tensor, permutation).reshape(-1)


def permute_qubits_matrix(matrix: np.ndarray, permutation: Sequence[int]) -> np.ndarray:
    """Reorder the qubits of an operator (both row and column indices)."""
    matrix = np.asarray(matrix, dtype=complex)
    num_qubits = num_qubits_from_dim(matrix.shape[0])
    permutation = _check_qubits(permutation, num_qubits)
    if len(permutation) != num_qubits:
        raise DimensionError("permutation must mention every qubit exactly once")
    tensor = matrix.reshape([2] * (2 * num_qubits))
    axes = list(permutation) + [num_qubits + p for p in permutation]
    dim = 2**num_qubits
    return np.transpose(tensor, axes).reshape(dim, dim)
