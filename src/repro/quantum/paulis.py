"""Pauli strings and the Pauli operator basis.

Pauli observables are the measurement primitives of the wire-cutting
experiments (the paper measures ``⟨Z⟩`` of the transmitted qubit); this module
provides a small Pauli-string algebra sufficient for building observables on
multi-qubit registers, expanding operators in the Pauli basis, and computing
expectation values.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import product

import numpy as np

from repro.exceptions import DimensionError, GateError
from repro.quantum.gates import PAULI_MATRICES
from repro.utils.linalg import kron_all, num_qubits_from_dim

__all__ = [
    "PauliString",
    "pauli_matrix",
    "pauli_basis",
    "pauli_decompose",
    "pauli_reconstruct",
    "pauli_expectation_from_counts",
]

_SINGLE_PAULI_PRODUCT: dict[tuple[str, str], tuple[complex, str]] = {
    ("I", "I"): (1, "I"),
    ("I", "X"): (1, "X"),
    ("I", "Y"): (1, "Y"),
    ("I", "Z"): (1, "Z"),
    ("X", "I"): (1, "X"),
    ("Y", "I"): (1, "Y"),
    ("Z", "I"): (1, "Z"),
    ("X", "X"): (1, "I"),
    ("Y", "Y"): (1, "I"),
    ("Z", "Z"): (1, "I"),
    ("X", "Y"): (1j, "Z"),
    ("Y", "X"): (-1j, "Z"),
    ("Y", "Z"): (1j, "X"),
    ("Z", "Y"): (-1j, "X"),
    ("Z", "X"): (1j, "Y"),
    ("X", "Z"): (-1j, "Y"),
}


@dataclass(frozen=True)
class PauliString:
    """An n-qubit Pauli operator with a complex phase.

    Attributes
    ----------
    labels:
        A string over the alphabet ``IXYZ``; the first character acts on
        qubit 0 (the most significant tensor factor).
    phase:
        A complex scalar multiplying the tensor product of Pauli matrices.
    """

    labels: str
    phase: complex = 1.0 + 0.0j

    def __post_init__(self) -> None:
        invalid = set(self.labels) - set("IXYZ")
        if invalid:
            raise GateError(f"invalid Pauli labels {sorted(invalid)} in {self.labels!r}")
        if not self.labels:
            raise GateError("a Pauli string must act on at least one qubit")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the string acts on."""
        return len(self.labels)

    @property
    def weight(self) -> int:
        """Number of non-identity factors."""
        return sum(1 for label in self.labels if label != "I")

    def to_matrix(self) -> np.ndarray:
        """Return the dense ``2^n × 2^n`` matrix of the Pauli string (with phase)."""
        return self.phase * kron_all(PAULI_MATRICES[label] for label in self.labels)

    def compose(self, other: "PauliString") -> "PauliString":
        """Return the operator product ``self · other`` as a new Pauli string."""
        if self.num_qubits != other.num_qubits:
            raise DimensionError(
                f"cannot compose Pauli strings on {self.num_qubits} and "
                f"{other.num_qubits} qubits"
            )
        phase = self.phase * other.phase
        labels = []
        for a, b in zip(self.labels, other.labels):
            factor, label = _SINGLE_PAULI_PRODUCT[(a, b)]
            phase *= factor
            labels.append(label)
        return PauliString("".join(labels), phase)

    def commutes_with(self, other: "PauliString") -> bool:
        """Return True if the two Pauli strings commute."""
        anticommuting = 0
        for a, b in zip(self.labels, other.labels):
            if a != "I" and b != "I" and a != b:
                anticommuting += 1
        return anticommuting % 2 == 0

    def expectation(self, state: np.ndarray) -> complex:
        """Return ``<ψ|P|ψ>`` or ``Tr[P ρ]`` depending on the shape of ``state``."""
        matrix = self.to_matrix()
        state = np.asarray(state, dtype=complex)
        if state.ndim == 1:
            return complex(np.vdot(state, matrix @ state))
        return complex(np.trace(matrix @ state))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.phase == 1:
            return self.labels
        return f"({self.phase})·{self.labels}"


def pauli_matrix(labels: str) -> np.ndarray:
    """Return the matrix of the Pauli string ``labels`` with unit phase."""
    return PauliString(labels).to_matrix()


def pauli_basis(num_qubits: int) -> dict[str, np.ndarray]:
    """Return the full ``4^n``-element Pauli basis as a label → matrix mapping."""
    if num_qubits < 1:
        raise DimensionError(f"num_qubits must be >= 1, got {num_qubits}")
    basis: dict[str, np.ndarray] = {}
    for labels in product("IXYZ", repeat=num_qubits):
        label = "".join(labels)
        basis[label] = kron_all(PAULI_MATRICES[c] for c in labels)
    return basis


def pauli_decompose(matrix: np.ndarray, atol: float = 1e-12) -> dict[str, complex]:
    """Expand ``matrix`` in the Pauli basis.

    Returns a mapping from Pauli labels to coefficients ``c_P`` such that
    ``matrix = Σ_P c_P · P``.  Coefficients with magnitude below ``atol`` are
    omitted.
    """
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise DimensionError(f"matrix must be square, got shape {matrix.shape}")
    num_qubits = num_qubits_from_dim(matrix.shape[0])
    dim = matrix.shape[0]
    coefficients: dict[str, complex] = {}
    for label, basis_op in pauli_basis(num_qubits).items():
        coefficient = complex(np.trace(basis_op @ matrix)) / dim
        if abs(coefficient) > atol:
            coefficients[label] = coefficient
    return coefficients


def pauli_reconstruct(coefficients: dict[str, complex], num_qubits: int) -> np.ndarray:
    """Inverse of :func:`pauli_decompose`: rebuild the matrix from coefficients."""
    dim = 2**num_qubits
    matrix = np.zeros((dim, dim), dtype=complex)
    for label, coefficient in coefficients.items():
        if len(label) != num_qubits:
            raise DimensionError(
                f"label {label!r} has {len(label)} qubits, expected {num_qubits}"
            )
        matrix += coefficient * pauli_matrix(label)
    return matrix


def pauli_expectation_from_counts(
    counts: dict[str, int],
    pauli_labels: str | None = None,
    qubits: Sequence[int] | None = None,
) -> float:
    """Estimate a Z-basis Pauli expectation value from measurement counts.

    The counts keys are bitstrings in circuit qubit order (qubit 0 leftmost).
    ``pauli_labels`` selects which qubits contribute (only ``I`` and ``Z``
    labels are valid here, since counts are computational-basis outcomes);
    alternatively ``qubits`` gives the indices measured by a pure-Z observable.

    Returns the empirical mean of ``(-1)^{parity of selected bits}``.
    """
    if pauli_labels is None and qubits is None:
        raise ValueError("either pauli_labels or qubits must be provided")
    total = sum(counts.values())
    if total == 0:
        raise ValueError("counts are empty")
    if pauli_labels is not None:
        invalid = set(pauli_labels) - set("IZ")
        if invalid:
            raise GateError(
                "only I/Z labels can be evaluated from computational-basis counts, "
                f"got {sorted(invalid)}"
            )
        selected = [i for i, label in enumerate(pauli_labels) if label == "Z"]
    else:
        selected = list(qubits)  # type: ignore[arg-type]
    accumulator = 0.0
    for bitstring, count in counts.items():
        parity = sum(int(bitstring[i]) for i in selected) % 2
        accumulator += ((-1) ** parity) * count
    return accumulator / total
