"""Reproduction of Figure 6: average error versus shots for varying entanglement.

The paper's experiment (Section IV):

* 1000 Haar-random single-qubit input states ``W|0⟩``,
* the wire carrying the state is cut with the Theorem-2 protocol using
  resource entanglement ``f(Φ_k) ∈ {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}``,
* the Pauli-Z expectation value of the transmitted qubit is estimated with a
  total shot budget of up to 5000 shots, distributed over the three
  subcircuits proportionally to the QPD coefficients,
* the figure reports the absolute error (Eq. 28) averaged over the input
  states, per shot budget and entanglement level.

The harness below evaluates exactly this.  For every (state, entanglement)
pair the exact per-term outcome distributions are computed once — batched
across the whole workload through the configured execution backend
(:func:`repro.cutting.executor.build_sampling_models`; the default
``vectorized`` backend stacks all structurally identical term circuits into
single NumPy computations).  Estimates at each shot budget are then produced
by sampling those distributions, which is statistically identical to
re-running the shot simulator and keeps the full paper-scale configuration
tractable on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ExperimentError
from repro.circuits.backends import BACKEND_NAMES
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import build_sampling_models
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.experiments.records import SweepTable
from repro.experiments.workloads import random_single_qubit_states, state_preparation_circuit
from repro.quantum.bell import k_from_overlap
from repro.utils.rng import SeedLike, as_generator, spawn_generators

__all__ = ["Figure6Config", "Figure6Result", "run_figure6"]

#: The entanglement levels of the paper's Figure 6.
PAPER_OVERLAPS: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


@dataclass(frozen=True)
class Figure6Config:
    """Configuration of the Figure-6 sweep.

    The defaults are a scaled-down configuration that finishes in a few
    seconds (for tests and CI); :meth:`paper` returns the full configuration
    of the publication.
    """

    num_states: int = 50
    shot_grid: tuple[int, ...] = (250, 500, 1000, 2000, 4000)
    overlaps: tuple[float, ...] = PAPER_OVERLAPS
    allocation: str = "proportional"
    seed: int = 2024
    backend: str = "vectorized"

    @classmethod
    def paper(cls) -> "Figure6Config":
        """The full configuration of the paper (1000 states, shots up to 5000)."""
        return cls(
            num_states=1000,
            shot_grid=(250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 4500, 5000),
            overlaps=PAPER_OVERLAPS,
            allocation="proportional",
            seed=2024,
        )

    @classmethod
    def quick(cls) -> "Figure6Config":
        """A minimal configuration for smoke tests."""
        return cls(num_states=8, shot_grid=(200, 800), overlaps=(0.5, 0.8, 1.0), seed=7)

    def fingerprint(self) -> str:
        """Return a stable content hash of the sweep configuration.

        The CLI's ``--store`` flag keys cached result tables on this hash,
        so any change to the sweep parameters (states, shot grid, overlaps,
        allocation, seed) forces a fresh run.  The execution backend is
        excluded: every backend produces bitwise-identical tables for the
        same seed, so results are shared across backends.
        """
        from repro.utils.serialization import payload_fingerprint

        return payload_fingerprint(
            {
                "experiment": "figure6",
                "num_states": int(self.num_states),
                "shot_grid": [int(s) for s in self.shot_grid],
                "overlaps": [float(f) for f in self.overlaps],
                "allocation": self.allocation,
                "seed": int(self.seed),
            }
        )

    def validate(self) -> None:
        """Raise :class:`ExperimentError` on invalid settings."""
        if self.num_states < 1:
            raise ExperimentError("num_states must be positive")
        if not self.shot_grid or any(s <= 0 for s in self.shot_grid):
            raise ExperimentError("shot_grid must contain positive shot counts")
        for f in self.overlaps:
            if not 0.5 <= f <= 1.0:
                raise ExperimentError(f"overlap {f} outside [0.5, 1.0]")
        if self.backend not in BACKEND_NAMES:
            raise ExperimentError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )


@dataclass(frozen=True)
class Figure6Result:
    """Result of the Figure-6 sweep.

    Attributes
    ----------
    shot_grid:
        The evaluated total shot budgets.
    overlaps:
        The evaluated entanglement levels ``f(Φ_k)``.
    mean_errors:
        Array of shape ``(len(overlaps), len(shot_grid))`` with the average
        absolute error per series and shot budget.
    kappas:
        The sampling overhead κ per entanglement level.
    config:
        The configuration that produced the result.
    """

    shot_grid: tuple[int, ...]
    overlaps: tuple[float, ...]
    mean_errors: np.ndarray
    kappas: tuple[float, ...]
    config: Figure6Config = field(repr=False)

    def series(self, overlap: float) -> np.ndarray:
        """Return the error-versus-shots series for one entanglement level."""
        for index, value in enumerate(self.overlaps):
            if abs(value - overlap) < 1e-9:
                return self.mean_errors[index]
        raise ExperimentError(f"overlap {overlap} was not part of the sweep")

    def to_table(self) -> SweepTable:
        """Flatten the result into a :class:`SweepTable` (one row per (f, shots))."""
        columns: dict[str, list] = {"overlap_f": [], "kappa": [], "shots": [], "mean_error": []}
        for i, overlap in enumerate(self.overlaps):
            for j, shots in enumerate(self.shot_grid):
                columns["overlap_f"].append(float(overlap))
                columns["kappa"].append(float(self.kappas[i]))
                columns["shots"].append(int(shots))
                columns["mean_error"].append(float(self.mean_errors[i, j]))
        return SweepTable(
            name="figure6_error_vs_shots",
            columns=columns,
            metadata={
                "num_states": self.config.num_states,
                "allocation": self.config.allocation,
                "seed": self.config.seed,
                "backend": self.config.backend,
            },
        )

    def is_monotone_in_entanglement(self) -> bool:
        """Check the paper's qualitative claim: more entanglement → lower error.

        Compares the error averaged over the shot grid between consecutive
        entanglement levels (allowing small statistical fluctuations at the
        highest levels by averaging over all shot budgets).
        """
        averaged = self.mean_errors.mean(axis=1)
        return bool(np.all(np.diff(averaged) <= 1e-12 + 0.15 * averaged[:-1]))


def _protocol_for_overlap(overlap: float) -> NMEWireCut | TeleportationWireCut:
    if abs(overlap - 1.0) < 1e-12:
        return TeleportationWireCut()
    return NMEWireCut(k_from_overlap(overlap))


def run_figure6(config: Figure6Config | None = None, seed: SeedLike = None) -> Figure6Result:
    """Run the Figure-6 sweep and return the per-series average errors."""
    config = config or Figure6Config()
    config.validate()
    master_seed = config.seed if seed is None else seed
    rng = as_generator(master_seed)

    workload = random_single_qubit_states(config.num_states, seed=rng)
    state_rngs = spawn_generators(rng, config.num_states)

    mean_errors = np.zeros((len(config.overlaps), len(config.shot_grid)))
    kappas = []

    circuits = [state_preparation_circuit(unitary) for unitary in workload.unitaries]
    locations = [CutLocation(qubit=0, position=len(circuit)) for circuit in circuits]

    for overlap_index, overlap in enumerate(config.overlaps):
        protocol = _protocol_for_overlap(overlap)
        kappas.append(protocol.kappa)
        models = build_sampling_models(
            circuits, locations, protocol, observable="Z", backend=config.backend
        )
        errors = np.zeros((config.num_states, len(config.shot_grid)))
        for state_index, model in enumerate(models):
            values, _ = model.estimate_sweep(
                config.shot_grid, allocation=config.allocation, seed=state_rngs[state_index]
            )
            errors[state_index] = np.abs(values - model.exact_value)
        mean_errors[overlap_index] = errors.mean(axis=0)

    return Figure6Result(
        shot_grid=tuple(config.shot_grid),
        overlaps=tuple(config.overlaps),
        mean_errors=mean_errors,
        kappas=tuple(kappas),
        config=config,
    )
