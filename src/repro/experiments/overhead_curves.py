"""Analytic overhead relations stated inline in the paper, as regenerable tables.

Three tables are produced:

* :func:`overhead_vs_entanglement` — Theorem 1 / Corollary 1: ``γ`` as a
  function of ``f(Φ_k)`` (and the matching ``k``), with the κ of the
  explicitly constructed Theorem-2 decomposition alongside the analytic
  value, so the benchmark mechanically verifies the "QPD attains the
  optimum" claim.
* :func:`protocol_comparison` — the κ, κ² and entangled-pair consumption of
  the four implemented protocols (Peng, Harada, NME at several levels,
  teleportation), plus a mechanical exactness check: every protocol's QPD is
  reconstructed end-to-end through the configured execution backend and
  compared against the directly simulated expectation value.
* :func:`resource_consumption` — the end-of-Section-III relation for the
  expected number of entangled pairs.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.backends import SimulatorBackend
from repro.circuits.expectation import exact_expectation
from repro.cutting.cutter import CutLocation
from repro.cutting.nme_cut import NMEWireCut
from repro.pipeline import CutPipeline
from repro.cutting.overhead import (
    expected_pairs_per_shot,
    harada_overhead,
    nme_overhead,
    optimal_overhead,
    pairs_proportionality_constant,
    peng_overhead,
    teleportation_overhead,
)
from repro.cutting.peng_cut import PengWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.experiments.records import SweepTable
from repro.experiments.workloads import random_single_qubit_states, state_preparation_circuit
from repro.quantum.bell import k_from_overlap, overlap_from_k

__all__ = ["overhead_vs_entanglement", "protocol_comparison", "resource_consumption"]


def overhead_vs_entanglement(
    overlaps: tuple[float, ...] = (0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 1.0),
) -> SweepTable:
    """Tabulate Theorem 1 / Corollary 1 and the κ of the constructed QPD."""
    columns: dict[str, list] = {
        "overlap_f": [],
        "k": [],
        "gamma_theorem1": [],
        "gamma_corollary1": [],
        "kappa_constructed": [],
        "shot_overhead_kappa_sq": [],
    }
    for overlap in overlaps:
        k = k_from_overlap(overlap)
        protocol = NMEWireCut(k)
        columns["overlap_f"].append(float(overlap))
        columns["k"].append(float(k))
        columns["gamma_theorem1"].append(optimal_overhead(overlap))
        columns["gamma_corollary1"].append(nme_overhead(k))
        columns["kappa_constructed"].append(protocol.kappa)
        columns["shot_overhead_kappa_sq"].append(protocol.kappa**2)
    return SweepTable(name="overhead_vs_entanglement", columns=columns)


def protocol_comparison(backend: SimulatorBackend | str | None = "vectorized") -> SweepTable:
    """Compare κ, κ² and pair consumption across the implemented protocols.

    Each row also carries ``reconstruction_error``: the deviation of the
    protocol's exact QPD reconstruction — run through the
    :class:`~repro.pipeline.CutPipeline` decompose stage on ``backend`` with
    a fixed Haar-random test state — from the directly simulated ``⟨Z⟩``.  A
    valid protocol reconstructs exactly, so this column should be ~1e-15.
    """
    workload = random_single_qubit_states(1, seed=1234)
    test_circuit = state_preparation_circuit(workload.unitaries[0])
    test_location = CutLocation(0, len(test_circuit))
    reference = exact_expectation(test_circuit, np.diag([1.0, -1.0]).astype(complex))
    protocols = [
        ("peng", PengWireCut(), peng_overhead()),
        ("harada", HaradaWireCut(), harada_overhead()),
        ("nme(f=0.6)", NMEWireCut.from_overlap(0.6), nme_overhead(k_from_overlap(0.6))),
        ("nme(f=0.8)", NMEWireCut.from_overlap(0.8), nme_overhead(k_from_overlap(0.8))),
        ("nme(f=0.9)", NMEWireCut.from_overlap(0.9), nme_overhead(k_from_overlap(0.9))),
        ("teleportation", TeleportationWireCut(), teleportation_overhead()),
    ]
    columns: dict[str, list] = {
        "protocol": [],
        "kappa": [],
        "kappa_theory": [],
        "shot_overhead": [],
        "num_terms": [],
        "uses_entanglement": [],
        "reconstruction_error": [],
    }
    for name, protocol, theory in protocols:
        columns["protocol"].append(name)
        columns["kappa"].append(protocol.kappa)
        columns["kappa_theory"].append(float(theory))
        columns["shot_overhead"].append(protocol.kappa**2)
        columns["num_terms"].append(len(protocol.terms))
        columns["uses_entanglement"].append(
            any(getattr(t, "consumes_entangled_pair", False) for t in protocol.terms)
        )
        pipeline = CutPipeline(protocol=protocol, backend=backend)
        decomposition = pipeline.decompose(
            pipeline.plan(test_circuit, locations=[test_location])
        )
        reconstructed = pipeline.exact_reconstruction(decomposition, "Z")
        columns["reconstruction_error"].append(abs(reconstructed - reference))
    return SweepTable(name="protocol_comparison", columns=columns)


def resource_consumption(
    k_values: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> SweepTable:
    """Tabulate the entangled-pair consumption relation from the end of Section III."""
    columns: dict[str, list] = {
        "k": [],
        "overlap_f": [],
        "kappa": [],
        "pairs_proportionality_2a": [],
        "expected_pairs_per_shot": [],
        "inverse_overlap": [],
    }
    for k in k_values:
        columns["k"].append(float(k))
        columns["overlap_f"].append(overlap_from_k(k))
        columns["kappa"].append(nme_overhead(k))
        columns["pairs_proportionality_2a"].append(pairs_proportionality_constant(k))
        columns["expected_pairs_per_shot"].append(expected_pairs_per_shot(k))
        columns["inverse_overlap"].append(1.0 / overlap_from_k(k))
    return SweepTable(name="resource_consumption", columns=columns)
