"""Static versus adaptive shots-to-target on the Figure-6 NME sweep.

The paper's static procedure fixes the whole shot budget before execution:
to hit a mean absolute error ε it must budget for the κ²/ε² worst case (in
this repository: search the doubling candidate-budget grid of
:mod:`repro.experiments.shots_to_target` for the smallest budget whose
measured workload error is below ε).  The streaming adaptive engine
(:mod:`repro.qpd.adaptive`) instead observes each instance's running
statistics round by round and stops the moment the pooled standard error
reaches the target — paying the instance's *actual* cost rather than the
sweep's worst case, with no budget-grid overshoot.

This module measures that difference on exactly the Figure-6 workload
(Haar-random single-qubit states through the Theorem-2 NME cut, Pauli-Z
observable, entanglement levels ``f(Φ_k)``): both arms must reach the same
mean-absolute-error target, and the result table reports the per-level and
total shot savings.  ``benchmarks/bench_adaptive.py`` asserts the ≥20%
savings floor on this table and archives it as ``BENCH_adaptive.json``.

Both arms are sized to the *same* statistical criterion, which makes the
comparison deterministic rather than a race of lucky draws: for an
asymptotically normal estimator ``E|error| = σ·√(2/π)``, so a
mean-absolute-error target ε is equivalent to the standard-error target
``ε·√(π/2)``.  The static arm picks the smallest grid budget whose
*exactly predicted* standard error (closed form from the model's term
probabilities) meets that threshold; the adaptive arm stops when its
*achieved* pooled standard error meets it.  The measured absolute errors of
both arms are reported so the equivalence is checked, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExperimentError
from repro.circuits.backends import BACKEND_NAMES, resolve_backend
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import CutSamplingModel, build_sampling_models
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.experiments.records import SweepTable
from repro.experiments.workloads import random_single_qubit_states, state_preparation_circuit
from repro.qpd.adaptive import AdaptiveConfig
from repro.qpd.allocation import PLANNER_NAMES, allocate_shots
from repro.quantum.bell import k_from_overlap
from repro.utils.rng import SeedLike, as_generator, spawn_seed_sequences

__all__ = ["AdaptiveSweepConfig", "adaptive_vs_static_sweep"]

#: Mean-absolute-error → standard-error conversion factor (half-normal mean).
ABS_ERROR_TO_STDERR = float(np.sqrt(np.pi / 2.0))


@dataclass(frozen=True)
class AdaptiveSweepConfig:
    """Configuration of the static-versus-adaptive comparison sweep.

    Attributes
    ----------
    target_error:
        Mean absolute error both arms must reach.
    overlaps:
        Entanglement levels ``f(Φ_k)`` of the Figure-6 sweep.
    num_states:
        Haar-random input states per entanglement level.
    candidate_budgets:
        The static arm's increasing budget grid (the repo's pre-adaptive
        shots-to-target methodology).
    max_rounds:
        Adaptive round limit per instance.
    planner:
        Adaptive per-round planner name.
    stderr_safety:
        Optional extra conservatism (in ``(0, 1]``) multiplying the shared
        standard-error criterion; 1.0 (the default) sizes both arms to
        exactly the equivalent-expected-error threshold.
    seed:
        Master seed for the workload and both arms.
    backend:
        Execution backend used to build the exact sampling models.
    """

    target_error: float = 0.05
    overlaps: tuple[float, ...] = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
    num_states: int = 24
    candidate_budgets: tuple[int, ...] = (100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600)
    max_rounds: int = 16
    planner: str = "neyman"
    stderr_safety: float = 1.0
    seed: int = 77
    backend: str = "vectorized"

    def validate(self) -> None:
        """Raise :class:`ExperimentError` on invalid settings."""
        if self.target_error <= 0:
            raise ExperimentError("target_error must be positive")
        if not self.candidate_budgets or list(self.candidate_budgets) != sorted(
            self.candidate_budgets
        ):
            raise ExperimentError("candidate_budgets must be a non-empty increasing sequence")
        if self.num_states < 1:
            raise ExperimentError("num_states must be positive")
        if self.max_rounds < 1:
            raise ExperimentError("max_rounds must be positive")
        for f in self.overlaps:
            if not 0.5 <= f <= 1.0:
                raise ExperimentError(f"overlap {f} outside [0.5, 1.0]")
        if self.backend not in BACKEND_NAMES:
            raise ExperimentError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )
        if self.planner not in PLANNER_NAMES:
            raise ExperimentError(
                f"unknown planner {self.planner!r}; expected one of {PLANNER_NAMES}"
            )
        if not 0.0 < self.stderr_safety <= 1.0:
            raise ExperimentError(
                f"stderr_safety must be in (0, 1], got {self.stderr_safety}"
            )


def _protocol_for_overlap(overlap: float):
    """Return the Theorem-2 protocol of one entanglement level."""
    if abs(overlap - 1.0) < 1e-12:
        return TeleportationWireCut()
    return NMEWireCut(k_from_overlap(overlap))


def _predicted_static_error(model: CutSamplingModel, budget: int) -> float:
    """Exact expected absolute error of one static estimate at ``budget`` shots.

    The static estimator's standard error is computable in closed form from
    the model's exact per-term outcome probabilities (``σ_j² = 4p_j(1−p_j)``)
    and the proportional allocation; the expected absolute error of the
    asymptotically normal estimator is then ``σ·√(2/π)``.  A term left
    without shots makes the error unbounded.
    """
    coefficients = np.array([t.coefficient for t in model.terms])
    sigmas_sq = np.array([4.0 * t.probability_plus * (1.0 - t.probability_plus) for t in model.terms])
    shots_per_term = allocate_shots(model.probabilities, int(budget))
    if np.any((shots_per_term == 0) & (np.abs(coefficients) > 0)):
        return float("inf")
    variance = float(np.sum(coefficients**2 * sigmas_sq / np.maximum(shots_per_term, 1)))
    return float(np.sqrt(variance) / ABS_ERROR_TO_STDERR)


def adaptive_vs_static_sweep(
    config: AdaptiveSweepConfig | None = None, seed: SeedLike = None
) -> SweepTable:
    """Compare static and adaptive shots-to-target on the Figure-6 workload.

    Per entanglement level the static arm searches the candidate-budget
    grid for the smallest per-state budget whose exactly predicted mean
    error over the workload meets the target; the adaptive arm runs the
    streaming engine per state with the equivalent standard-error target
    and records the shots it actually spent.  Both arms draw from the same
    exact sampling models, so the comparison isolates the allocation
    policy.

    Returns
    -------
    SweepTable
        One row per entanglement level (static/adaptive shots per state,
        measured errors, convergence fraction, savings) with sweep totals
        in the metadata.
    """
    config = config or AdaptiveSweepConfig()
    config.validate()
    rng = as_generator(config.seed if seed is None else seed)
    workload = random_single_qubit_states(config.num_states, seed=rng)
    circuits = [state_preparation_circuit(unitary) for unitary in workload.unitaries]
    locations = [CutLocation(0, len(circuit)) for circuit in circuits]
    backend = resolve_backend(config.backend)
    stderr_target = config.target_error * ABS_ERROR_TO_STDERR * config.stderr_safety
    budget_ceiling = int(config.candidate_budgets[-1])

    columns: dict[str, list] = {
        "overlap_f": [],
        "kappa": [],
        "static_shots_per_state": [],
        "static_mean_error": [],
        "adaptive_shots_per_state": [],
        "adaptive_mean_error": [],
        "adaptive_stderr_max": [],
        "adaptive_rounds_mean": [],
        "converged_fraction": [],
        "savings_fraction": [],
    }
    total_static = 0
    total_adaptive = 0
    for overlap in config.overlaps:
        protocol = _protocol_for_overlap(overlap)
        models = build_sampling_models(circuits, locations, protocol, "Z", backend=backend)

        # Static arm: the repo's pre-adaptive methodology — one budget for
        # the whole workload, from the doubling grid.  The selection uses
        # the *predicted* mean error (exact, from the model variances), so
        # the chosen budget is deterministic rather than a lucky draw; the
        # measured error at that budget is reported alongside.
        static_budget = -1
        static_error = float("nan")
        for budget in config.candidate_budgets:
            predicted = float(
                np.mean([_predicted_static_error(model, int(budget)) for model in models])
            )
            if predicted <= config.target_error:
                static_budget = int(budget)
                break
        if static_budget > 0:
            errors = [
                abs(model.estimate(static_budget, seed=rng).value - model.exact_value)
                for model in models
            ]
            static_error = float(np.mean(errors))

        # Adaptive arm: per-instance streaming engine at the equivalent
        # standard-error target, hard-capped by the grid's largest budget.
        adaptive_config = AdaptiveConfig(
            target_error=stderr_target,
            max_shots=budget_ceiling,
            max_rounds=config.max_rounds,
            planner=config.planner,
        )
        adaptive_shots = []
        adaptive_errors = []
        adaptive_stderrs = []
        adaptive_rounds = []
        converged = 0
        for model, child in zip(models, spawn_seed_sequences(rng, len(models))):
            result = model.estimate_adaptive(adaptive_config, seed=child)
            adaptive_shots.append(result.total_shots)
            adaptive_errors.append(abs(result.value - model.exact_value))
            adaptive_stderrs.append(result.standard_error)
            adaptive_rounds.append(len(result.rounds))
            converged += bool(result.converged)

        static_total = static_budget * config.num_states if static_budget > 0 else -1
        adaptive_total = int(np.sum(adaptive_shots))
        if static_total > 0:
            total_static += static_total
            total_adaptive += adaptive_total
            savings = 1.0 - adaptive_total / static_total
        else:
            savings = float("nan")
        columns["overlap_f"].append(float(overlap))
        columns["kappa"].append(float(protocol.kappa))
        columns["static_shots_per_state"].append(int(static_budget))
        columns["static_mean_error"].append(static_error)
        columns["adaptive_shots_per_state"].append(float(np.mean(adaptive_shots)))
        columns["adaptive_mean_error"].append(float(np.mean(adaptive_errors)))
        columns["adaptive_stderr_max"].append(float(np.max(adaptive_stderrs)))
        columns["adaptive_rounds_mean"].append(float(np.mean(adaptive_rounds)))
        columns["converged_fraction"].append(float(converged / len(models)))
        columns["savings_fraction"].append(float(savings))

    cache = getattr(backend, "cache", None)
    return SweepTable(
        name="adaptive_vs_static_shots_to_target",
        columns=columns,
        metadata={
            "target_error": config.target_error,
            "stderr_target": stderr_target,
            "num_states": config.num_states,
            "seed": config.seed,
            "backend": config.backend,
            "planner": config.planner,
            "total_static_shots": int(total_static),
            "total_adaptive_shots": int(total_adaptive),
            "total_savings_fraction": (
                float(1.0 - total_adaptive / total_static) if total_static > 0 else None
            ),
            "cache_entries": None if cache is None else len(cache),
        },
    )
