"""Ablation experiments for the design choices catalogued in DESIGN.md.

Five ablations are provided, each returning a :class:`SweepTable`:

* :func:`allocation_strategy_ablation` — proportional vs multinomial vs
  uniform shot allocation for the NME cut (the paper uses proportional).
* :func:`protocol_error_comparison` — error versus shots for Peng (κ=4),
  Harada (κ=3), NME and teleportation on the same random-state workload,
  the "who wins" companion to Figure 6.
* :func:`gate_vs_wire_cut` — cutting a CZ gate versus cutting a wire next to
  it in a small layered circuit (the related-work trade-off); the wire cuts
  run through the :class:`~repro.pipeline.CutPipeline`.
* :func:`multi_cut_pipeline_ablation` — the κⁿ cost of cutting more wires:
  the same circuit split into 2 and 3 fragments through the pipeline, with
  and without entanglement assistance.
* :func:`noisy_resource_ablation` — systematic bias and Theorem-1 overhead
  when the NME pair is depolarised (the future-work direction).
"""

from __future__ import annotations

import numpy as np

from repro.cutting.cutter import CutLocation
from repro.cutting.executor import build_sampling_model
from repro.cutting.gate_cutting import CZGateCut, estimate_gate_cut_expectation
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.noise import (
    noisy_phi_k,
    noisy_resource_overhead,
    reconstruction_bias,
    validate_noise_strength,
)
from repro.cutting.peng_cut import PengWireCut
from repro.cutting.standard_cut import HaradaWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.experiments.records import SweepTable
from repro.experiments.workloads import (
    ghz_circuit,
    random_layered_circuit,
    random_single_qubit_states,
    state_preparation_circuit,
)
from repro.pipeline import CutPipeline
from repro.utils.rng import SeedLike, as_generator, spawn_generators

__all__ = [
    "allocation_strategy_ablation",
    "protocol_error_comparison",
    "gate_vs_wire_cut",
    "multi_cut_pipeline_ablation",
    "noisy_resource_ablation",
]


def allocation_strategy_ablation(
    num_states: int = 30,
    shots: int = 2000,
    overlap: float = 0.8,
    strategies: tuple[str, ...] = ("proportional", "multinomial", "uniform"),
    seed: SeedLike = 11,
) -> SweepTable:
    """Compare shot-allocation strategies at a fixed budget and entanglement level."""
    rng = as_generator(seed)
    workload = random_single_qubit_states(num_states, seed=rng)
    protocol = NMEWireCut.from_overlap(overlap)
    state_rngs = spawn_generators(rng, num_states)

    columns: dict[str, list] = {"strategy": [], "shots": [], "mean_error": [], "overlap_f": []}
    models = []
    for unitary in workload.unitaries:
        circuit = state_preparation_circuit(unitary)
        models.append(
            build_sampling_model(circuit, CutLocation(0, len(circuit)), protocol, "Z")
        )
    for strategy in strategies:
        errors = []
        for model, state_rng in zip(models, state_rngs):
            result = model.estimate(shots, allocation=strategy, seed=state_rng)
            errors.append(abs(result.value - model.exact_value))
        columns["strategy"].append(strategy)
        columns["shots"].append(shots)
        columns["mean_error"].append(float(np.mean(errors)))
        columns["overlap_f"].append(float(overlap))
    return SweepTable(
        name="allocation_strategy_ablation",
        columns=columns,
        metadata={"num_states": num_states, "protocol": protocol.name, "seed": seed},
    )


def protocol_error_comparison(
    num_states: int = 30,
    shots: int = 2000,
    seed: SeedLike = 13,
) -> SweepTable:
    """Average error of all implemented single-wire protocols on the same workload."""
    rng = as_generator(seed)
    workload = random_single_qubit_states(num_states, seed=rng)
    protocols = [
        ("peng", PengWireCut()),
        ("harada", HaradaWireCut()),
        ("nme(f=0.7)", NMEWireCut.from_overlap(0.7)),
        ("nme(f=0.9)", NMEWireCut.from_overlap(0.9)),
        ("teleportation", TeleportationWireCut()),
    ]
    columns: dict[str, list] = {"protocol": [], "kappa": [], "shots": [], "mean_error": []}
    state_rngs = spawn_generators(rng, num_states)
    for name, protocol in protocols:
        errors = []
        for unitary, state_rng in zip(workload.unitaries, state_rngs):
            circuit = state_preparation_circuit(unitary)
            model = build_sampling_model(circuit, CutLocation(0, len(circuit)), protocol, "Z")
            result = model.estimate(shots, seed=state_rng)
            errors.append(abs(result.value - model.exact_value))
        columns["protocol"].append(name)
        columns["kappa"].append(protocol.kappa)
        columns["shots"].append(shots)
        columns["mean_error"].append(float(np.mean(errors)))
    return SweepTable(
        name="protocol_error_comparison",
        columns=columns,
        metadata={"num_states": num_states, "seed": seed},
    )


def gate_vs_wire_cut(
    shots: int = 4000,
    seed: SeedLike = 17,
) -> SweepTable:
    """Cut the same small circuit by gate cutting and by wire cutting and compare errors.

    The circuit is a 2-qubit layered circuit whose single CZ makes the two
    qubits interact; the observable is ``ZZ``.
    """
    rng = as_generator(seed)
    circuit = random_layered_circuit(2, 1, seed=rng, two_qubit_gate="cz")
    # The entangling CZ is the last instruction of the single layer.
    cz_index = next(
        i for i, inst in enumerate(circuit.instructions) if inst.name == "cz"
    )
    observable = "ZZ"

    gate_result = estimate_gate_cut_expectation(
        circuit, cz_index, CZGateCut(), observable, shots=shots, seed=rng
    )
    wire_results = {}
    for name, protocol in (
        ("wire-harada", HaradaWireCut()),
        ("wire-nme(f=0.9)", NMEWireCut.from_overlap(0.9)),
    ):
        pipeline = CutPipeline(protocol=protocol)
        wire_results[name] = pipeline.run(
            circuit,
            observable,
            shots=shots,
            seed=rng,
            locations=[CutLocation(qubit=0, position=cz_index + 1)],
        )

    columns: dict[str, list] = {"method": [], "kappa": [], "error": [], "exact": []}
    columns["method"].append("gate-cut-cz")
    columns["kappa"].append(gate_result.kappa)
    columns["error"].append(gate_result.error)
    columns["exact"].append(gate_result.exact_value)
    for name, result in wire_results.items():
        columns["method"].append(name)
        columns["kappa"].append(result.kappa)
        columns["error"].append(result.error)
        columns["exact"].append(result.exact_value)
    return SweepTable(
        name="gate_vs_wire_cut",
        columns=columns,
        metadata={"shots": shots, "seed": seed, "observable": observable},
    )


def multi_cut_pipeline_ablation(
    num_qubits: int = 4,
    shots: int = 4000,
    max_fragment_widths: tuple[int, ...] = (3, 2),
    overlaps: tuple[float | None, ...] = (None, 0.9),
    seed: SeedLike = 21,
    backend: str = "vectorized",
) -> SweepTable:
    """Measure the κⁿ cost of cutting more wires through the pipeline.

    The same GHZ circuit is split under progressively tighter device-width
    constraints — each tighter width forces the
    :class:`~repro.pipeline.CutPipeline` planner to cut more wires and
    produce more fragments — and the resulting estimation error at a fixed
    shot budget is recorded with and without entanglement assistance.  The
    error growth with ``num_cuts`` makes the paper's exponential-overhead
    motivation directly observable in a table.

    Parameters
    ----------
    num_qubits:
        Size of the GHZ test circuit.
    shots:
        Shot budget per pipeline run.
    max_fragment_widths:
        Device widths to sweep (each must admit a valid plan).
    overlaps:
        Entanglement levels ``f(Φ_k)`` to sweep; ``None`` selects the
        entanglement-free κ=3 cut.
    seed:
        Seed for all sampling (one child stream per configuration).
    backend:
        Execution backend for the term-circuit batches.

    Returns
    -------
    SweepTable
        One row per (width, overlap) configuration.
    """
    circuit = ghz_circuit(num_qubits)
    observable = "Z" * num_qubits
    columns: dict[str, list] = {
        "max_width": [],
        "overlap_f": [],
        "num_cuts": [],
        "num_fragments": [],
        "num_terms": [],
        "kappa": [],
        "shots": [],
        "error": [],
    }
    configurations = [
        (width, overlap) for width in max_fragment_widths for overlap in overlaps
    ]
    rngs = spawn_generators(seed, len(configurations))
    for (width, overlap), rng in zip(configurations, rngs):
        pipeline = CutPipeline(
            max_fragment_width=width,
            entanglement_overlap=overlap,
            backend=backend,
        )
        result = pipeline.run(circuit, observable, shots=shots, seed=rng)
        decomposition = result.execution.decomposition
        columns["max_width"].append(int(width))
        columns["overlap_f"].append(float(overlap) if overlap is not None else 0.5)
        columns["num_cuts"].append(decomposition.plan_result.num_cuts)
        columns["num_fragments"].append(decomposition.plan_result.num_fragments)
        columns["num_terms"].append(decomposition.num_terms)
        columns["kappa"].append(result.kappa)
        columns["shots"].append(shots)
        columns["error"].append(result.error)
    return SweepTable(
        name="multi_cut_pipeline_ablation",
        columns=columns,
        metadata={"num_qubits": num_qubits, "seed": seed, "backend": backend},
    )


def noisy_resource_ablation(
    k: float = 0.5,
    noise_levels: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2),
) -> SweepTable:
    """Systematic bias and optimal overhead when the NME resource is depolarised."""
    noise_levels = tuple(
        validate_noise_strength(p, name="noise_levels entry") for p in noise_levels
    )
    columns: dict[str, list] = {
        "depolarizing_p": [],
        "bias_norm": [],
        "theorem1_overhead": [],
        "pure_overhead": [],
    }
    pure_overhead = NMEWireCut(k).kappa
    for p in noise_levels:
        resource = noisy_phi_k(k, p)
        columns["depolarizing_p"].append(float(p))
        columns["bias_norm"].append(reconstruction_bias(k, resource))
        columns["theorem1_overhead"].append(noisy_resource_overhead(resource))
        columns["pure_overhead"].append(pure_overhead)
    return SweepTable(
        name="noisy_resource_ablation", columns=columns, metadata={"k": k}
    )
