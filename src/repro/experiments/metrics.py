"""Error metrics used by the evaluation harness.

The paper's figure of merit (Eq. 28) is the absolute deviation between the
sampled and exact expectation values, averaged over the random input states.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "absolute_error",
    "mean_absolute_error",
    "root_mean_squared_error",
    "expected_statistical_error",
    "shots_for_target_error",
]


def absolute_error(estimate: float, exact: float) -> float:
    """Return ``|estimate − exact|`` (Eq. 28)."""
    return float(abs(estimate - exact))


def mean_absolute_error(estimates: np.ndarray, exact: np.ndarray) -> float:
    """Return the mean absolute error over a batch of inputs."""
    estimates = np.asarray(estimates, dtype=float)
    exact = np.asarray(exact, dtype=float)
    if estimates.shape != exact.shape:
        raise ValueError("estimates and exact values must have the same shape")
    return float(np.mean(np.abs(estimates - exact)))


def root_mean_squared_error(estimates: np.ndarray, exact: np.ndarray) -> float:
    """Return the RMSE over a batch of inputs."""
    estimates = np.asarray(estimates, dtype=float)
    exact = np.asarray(exact, dtype=float)
    if estimates.shape != exact.shape:
        raise ValueError("estimates and exact values must have the same shape")
    return float(np.sqrt(np.mean((estimates - exact) ** 2)))


def expected_statistical_error(kappa: float, shots: int) -> float:
    """Return the κ/√N scaling law for the standard error of a QPD estimate.

    This is the theory curve the measured Figure-6 series should track: the
    per-shot outcomes are bounded by κ in magnitude, so the standard error of
    the mean scales as ``κ/√N`` (up to the state-dependent variance factor).
    """
    if shots <= 0:
        return float("inf")
    return float(kappa / np.sqrt(shots))


def shots_for_target_error(kappa: float, epsilon: float) -> float:
    """Return the ``κ²/ε²`` shot requirement for a target additive error ε."""
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return float((kappa / epsilon) ** 2)
