"""Shots required to reach a target accuracy — the κ² law made explicit.

The paper's cost statement is that estimating an expectation value to
additive error ε through a QPD needs ``O(κ²/ε²)`` shots, so the *ratio* of
shot requirements between two protocols at the same ε is the square of their
κ ratio (e.g. 9× between plain wire cutting and teleportation).  This module
measures that relation directly: for each entanglement level it searches the
smallest shot budget whose average error over a random-state workload drops
below the target, and compares the measured budget ratios with κ².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExperimentError
from repro.circuits.backends import BACKEND_NAMES, resolve_backend
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import build_sampling_models
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.experiments.records import SweepTable
from repro.experiments.workloads import random_single_qubit_states, state_preparation_circuit
from repro.quantum.bell import k_from_overlap
from repro.utils.rng import SeedLike, as_generator

__all__ = ["ShotsToTargetConfig", "shots_to_target_error"]


@dataclass(frozen=True)
class ShotsToTargetConfig:
    """Configuration of the shots-to-target-accuracy sweep.

    Attributes
    ----------
    target_error:
        Mean absolute error the estimate must reach.
    overlaps:
        Entanglement levels to evaluate.
    num_states:
        Number of Haar-random input states averaged per candidate budget.
    candidate_budgets:
        Increasing shot budgets to test; the first whose measured mean error
        is below the target is reported (``None`` when none suffices).
    seed:
        Master seed.
    backend:
        Execution backend used to build the exact sampling models.
    """

    target_error: float = 0.05
    overlaps: tuple[float, ...] = (0.5, 0.7, 0.9, 1.0)
    num_states: int = 40
    candidate_budgets: tuple[int, ...] = (100, 200, 400, 800, 1600, 3200, 6400, 12800)
    seed: int = 77
    backend: str = "vectorized"

    def validate(self) -> None:
        """Raise :class:`ExperimentError` on invalid settings."""
        if self.target_error <= 0:
            raise ExperimentError("target_error must be positive")
        if not self.candidate_budgets or list(self.candidate_budgets) != sorted(self.candidate_budgets):
            raise ExperimentError("candidate_budgets must be a non-empty increasing sequence")
        if self.num_states < 1:
            raise ExperimentError("num_states must be positive")
        for f in self.overlaps:
            if not 0.5 <= f <= 1.0:
                raise ExperimentError(f"overlap {f} outside [0.5, 1.0]")
        if self.backend not in BACKEND_NAMES:
            raise ExperimentError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )


def shots_to_target_error(
    config: ShotsToTargetConfig | None = None, seed: SeedLike = None
) -> SweepTable:
    """Measure the shot budget needed per entanglement level to reach the target error.

    One execution-backend instance is resolved for the whole sweep, so the
    exact per-term outcome distributions built for one entanglement level
    stay in the shared :class:`~repro.circuits.backends.DistributionCache`
    and every repeated term circuit — across sweep points and across
    repeated invocations in the same process — is served from the cache
    instead of being re-simulated.  The observed ``cache_hits`` /
    ``cache_misses`` counters are exposed in the result's metadata.  Per
    model the whole candidate-budget grid is evaluated with one batched
    binomial draw (:meth:`~repro.cutting.executor.CutSamplingModel.estimate_sweep`).

    .. note::
        The batched draws consume the shared RNG stream in a different
        order than the pre-cache per-budget loop, so seeded results differ
        from tables recorded before this change (the metadata records
        ``method = "batched_estimate_sweep"`` to mark the new stream
        layout); the selection semantics are unchanged.

    Returns a table with, per entanglement level: κ, the measured minimal
    budget (or -1 when no candidate sufficed), the κ²-law prediction relative
    to the teleportation baseline, and the measured error at the selected
    budget.
    """
    config = config or ShotsToTargetConfig()
    config.validate()
    rng = as_generator(config.seed if seed is None else seed)
    workload = random_single_qubit_states(config.num_states, seed=rng)

    circuits = [state_preparation_circuit(unitary) for unitary in workload.unitaries]
    locations = [CutLocation(0, len(circuit)) for circuit in circuits]
    backend = resolve_backend(config.backend)
    cache = getattr(backend, "cache", None)
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    models_per_overlap: dict[float, list] = {}
    kappas: dict[float, float] = {}
    for overlap in config.overlaps:
        protocol = (
            TeleportationWireCut() if abs(overlap - 1.0) < 1e-12 else NMEWireCut(k_from_overlap(overlap))
        )
        kappas[overlap] = protocol.kappa
        models_per_overlap[overlap] = build_sampling_models(
            circuits, locations, protocol, "Z", backend=backend
        )

    baseline_kappa = min(kappas.values())
    columns: dict[str, list] = {
        "overlap_f": [],
        "kappa": [],
        "shots_needed": [],
        "measured_error": [],
        "relative_shots_predicted": [],
    }
    budgets = list(config.candidate_budgets)
    for overlap in config.overlaps:
        models = models_per_overlap[overlap]
        errors = np.zeros((len(models), len(budgets)))
        for model_index, model in enumerate(models):
            values, _ = model.estimate_sweep(budgets, seed=rng)
            errors[model_index] = np.abs(values - model.exact_value)
        mean_errors = errors.mean(axis=0)
        selected_budget = -1
        selected_error = float("nan")
        for budget, mean_error in zip(budgets, mean_errors):
            if mean_error <= config.target_error:
                selected_budget = int(budget)
                selected_error = float(mean_error)
                break
        columns["overlap_f"].append(float(overlap))
        columns["kappa"].append(kappas[overlap])
        columns["shots_needed"].append(int(selected_budget))
        columns["measured_error"].append(selected_error)
        columns["relative_shots_predicted"].append(float((kappas[overlap] / baseline_kappa) ** 2))
    return SweepTable(
        name="shots_to_target_error",
        columns=columns,
        metadata={
            "target_error": config.target_error,
            "num_states": config.num_states,
            "seed": config.seed,
            "backend": config.backend,
            "method": "batched_estimate_sweep",
            "cache_hits": None if cache is None else int(cache.hits - hits_before),
            "cache_misses": None if cache is None else int(cache.misses - misses_before),
        },
    )
