"""Shots required to reach a target accuracy — the κ² law made explicit.

The paper's cost statement is that estimating an expectation value to
additive error ε through a QPD needs ``O(κ²/ε²)`` shots, so the *ratio* of
shot requirements between two protocols at the same ε is the square of their
κ ratio (e.g. 9× between plain wire cutting and teleportation).  This module
measures that relation directly: for each entanglement level it searches the
smallest shot budget whose average error over a random-state workload drops
below the target, and compares the measured budget ratios with κ².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExperimentError
from repro.circuits.backends import BACKEND_NAMES
from repro.cutting.cutter import CutLocation
from repro.cutting.executor import build_sampling_models
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.teleport_cut import TeleportationWireCut
from repro.experiments.records import SweepTable
from repro.experiments.workloads import random_single_qubit_states, state_preparation_circuit
from repro.quantum.bell import k_from_overlap
from repro.utils.rng import SeedLike, as_generator

__all__ = ["ShotsToTargetConfig", "shots_to_target_error"]


@dataclass(frozen=True)
class ShotsToTargetConfig:
    """Configuration of the shots-to-target-accuracy sweep.

    Attributes
    ----------
    target_error:
        Mean absolute error the estimate must reach.
    overlaps:
        Entanglement levels to evaluate.
    num_states:
        Number of Haar-random input states averaged per candidate budget.
    candidate_budgets:
        Increasing shot budgets to test; the first whose measured mean error
        is below the target is reported (``None`` when none suffices).
    seed:
        Master seed.
    backend:
        Execution backend used to build the exact sampling models.
    """

    target_error: float = 0.05
    overlaps: tuple[float, ...] = (0.5, 0.7, 0.9, 1.0)
    num_states: int = 40
    candidate_budgets: tuple[int, ...] = (100, 200, 400, 800, 1600, 3200, 6400, 12800)
    seed: int = 77
    backend: str = "vectorized"

    def validate(self) -> None:
        """Raise :class:`ExperimentError` on invalid settings."""
        if self.target_error <= 0:
            raise ExperimentError("target_error must be positive")
        if not self.candidate_budgets or list(self.candidate_budgets) != sorted(self.candidate_budgets):
            raise ExperimentError("candidate_budgets must be a non-empty increasing sequence")
        if self.num_states < 1:
            raise ExperimentError("num_states must be positive")
        for f in self.overlaps:
            if not 0.5 <= f <= 1.0:
                raise ExperimentError(f"overlap {f} outside [0.5, 1.0]")
        if self.backend not in BACKEND_NAMES:
            raise ExperimentError(
                f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}"
            )


def shots_to_target_error(
    config: ShotsToTargetConfig | None = None, seed: SeedLike = None
) -> SweepTable:
    """Measure the shot budget needed per entanglement level to reach the target error.

    Returns a table with, per entanglement level: κ, the measured minimal
    budget (or -1 when no candidate sufficed), the κ²-law prediction relative
    to the teleportation baseline, and the measured error at the selected
    budget.
    """
    config = config or ShotsToTargetConfig()
    config.validate()
    rng = as_generator(config.seed if seed is None else seed)
    workload = random_single_qubit_states(config.num_states, seed=rng)

    circuits = [state_preparation_circuit(unitary) for unitary in workload.unitaries]
    locations = [CutLocation(0, len(circuit)) for circuit in circuits]
    models_per_overlap: dict[float, list] = {}
    kappas: dict[float, float] = {}
    for overlap in config.overlaps:
        protocol = (
            TeleportationWireCut() if abs(overlap - 1.0) < 1e-12 else NMEWireCut(k_from_overlap(overlap))
        )
        kappas[overlap] = protocol.kappa
        models_per_overlap[overlap] = build_sampling_models(
            circuits, locations, protocol, "Z", backend=config.backend
        )

    baseline_kappa = min(kappas.values())
    columns: dict[str, list] = {
        "overlap_f": [],
        "kappa": [],
        "shots_needed": [],
        "measured_error": [],
        "relative_shots_predicted": [],
    }
    for overlap in config.overlaps:
        models = models_per_overlap[overlap]
        selected_budget = -1
        selected_error = float("nan")
        for budget in config.candidate_budgets:
            errors = [
                abs(model.estimate(budget, seed=rng).value - model.exact_value) for model in models
            ]
            mean_error = float(np.mean(errors))
            if mean_error <= config.target_error:
                selected_budget = budget
                selected_error = mean_error
                break
        columns["overlap_f"].append(float(overlap))
        columns["kappa"].append(kappas[overlap])
        columns["shots_needed"].append(int(selected_budget))
        columns["measured_error"].append(selected_error)
        columns["relative_shots_predicted"].append(float((kappas[overlap] / baseline_kappa) ** 2))
    return SweepTable(
        name="shots_to_target_error",
        columns=columns,
        metadata={
            "target_error": config.target_error,
            "num_states": config.num_states,
            "seed": config.seed,
            "backend": config.backend,
        },
    )
