"""Result containers and serialisation for experiment sweeps.

Every experiment in :mod:`repro.experiments` produces a small, typed result
object that can be rendered as an aligned text table (what the benchmarks
print) and dumped to CSV/JSON for external plotting.  Keeping serialisation
here avoids every experiment re-implementing file output.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = ["SweepTable", "write_csv", "write_json", "table_to_payload", "table_from_payload"]


@dataclass(frozen=True)
class SweepTable:
    """A rectangular result table: named columns of equal length.

    Attributes
    ----------
    name:
        Table identifier (used as a heading and default file stem).
    columns:
        Mapping from column name to a sequence of values.
    metadata:
        Free-form experiment parameters recorded alongside the data.
    """

    name: str
    columns: Mapping[str, Sequence]
    metadata: Mapping[str, object] | None = None

    def __post_init__(self) -> None:
        lengths = {len(values) for values in self.columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"columns have inconsistent lengths: {sorted(lengths)}")

    @property
    def num_rows(self) -> int:
        """Number of rows in the table."""
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def row(self, index: int) -> dict:
        """Return row ``index`` as a column-name → value mapping."""
        return {key: values[index] for key, values in self.columns.items()}

    def to_text(self, float_format: str = "{:.5g}") -> str:
        """Render the table as aligned plain text (what benchmarks print)."""
        headers = list(self.columns.keys())
        rows = []
        for index in range(self.num_rows):
            row = []
            for key in headers:
                value = self.columns[key][index]
                row.append(float_format.format(value) if isinstance(value, float) else str(value))
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.name]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


def _json_value(value):
    """Coerce a cell/metadata value into a JSON-native type."""
    if hasattr(value, "item"):  # numpy scalars
        value = value.item()
    if isinstance(value, tuple):
        return [_json_value(v) for v in value]
    return value


def table_to_payload(table: SweepTable) -> dict:
    """Return the JSON-serializable payload of a :class:`SweepTable`.

    The payload round-trips through :func:`table_from_payload`; the service
    layer's :class:`~repro.service.store.RunStore` uses it to cache whole
    experiment tables under a config fingerprint (the CLI ``--store`` flag).
    """
    return {
        "name": table.name,
        "metadata": {k: _json_value(v) for k, v in dict(table.metadata or {}).items()},
        # Canonical JSON sorts object keys, so the display order of the
        # columns is carried explicitly.
        "column_order": list(table.columns.keys()),
        "columns": {
            key: [_json_value(v) for v in values] for key, values in table.columns.items()
        },
    }


def table_from_payload(payload: dict) -> SweepTable:
    """Rebuild a :class:`SweepTable` from its :func:`table_to_payload` form."""
    columns = payload["columns"]
    order = payload.get("column_order") or list(columns.keys())
    return SweepTable(
        name=str(payload["name"]),
        columns={key: list(columns[key]) for key in order},
        metadata=payload.get("metadata") or None,
    )


def write_csv(table: SweepTable, path: str | Path) -> Path:
    """Write a :class:`SweepTable` to CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    headers = list(table.columns.keys())
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for index in range(table.num_rows):
            writer.writerow([table.columns[key][index] for key in headers])
    return path


def write_json(table: SweepTable, path: str | Path) -> Path:
    """Write a :class:`SweepTable` (data + metadata) to JSON and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "name": table.name,
        "metadata": dict(table.metadata or {}),
        "columns": {key: list(values) for key, values in table.columns.items()},
    }
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path
