"""Experiment harness regenerating the paper's evaluation (Figure 6 and the analytic relations)."""

from repro.experiments.ablations import (
    allocation_strategy_ablation,
    gate_vs_wire_cut,
    multi_cut_pipeline_ablation,
    noisy_resource_ablation,
    protocol_error_comparison,
)
from repro.experiments.adaptive_sweep import AdaptiveSweepConfig, adaptive_vs_static_sweep
from repro.experiments.figure6 import Figure6Config, Figure6Result, run_figure6
from repro.experiments.noisy_fleet import (
    combined_depolarizing_strength,
    fleet_bias_vs_bound,
    noisy_fleet_robustness,
)
from repro.experiments.metrics import (
    absolute_error,
    expected_statistical_error,
    mean_absolute_error,
    root_mean_squared_error,
    shots_for_target_error,
)
from repro.experiments.overhead_curves import (
    overhead_vs_entanglement,
    protocol_comparison,
    resource_consumption,
)
from repro.experiments.records import (
    SweepTable,
    table_from_payload,
    table_to_payload,
    write_csv,
    write_json,
)
from repro.experiments.shots_to_target import ShotsToTargetConfig, shots_to_target_error
from repro.experiments.workloads import (
    RandomStateWorkload,
    ghz_circuit,
    random_layered_circuit,
    random_single_qubit_states,
    state_preparation_circuit,
)

__all__ = [
    "AdaptiveSweepConfig",
    "adaptive_vs_static_sweep",
    "Figure6Config",
    "Figure6Result",
    "run_figure6",
    "overhead_vs_entanglement",
    "protocol_comparison",
    "resource_consumption",
    "allocation_strategy_ablation",
    "protocol_error_comparison",
    "gate_vs_wire_cut",
    "multi_cut_pipeline_ablation",
    "noisy_resource_ablation",
    "fleet_bias_vs_bound",
    "noisy_fleet_robustness",
    "combined_depolarizing_strength",
    "SweepTable",
    "table_to_payload",
    "table_from_payload",
    "write_csv",
    "write_json",
    "ShotsToTargetConfig",
    "shots_to_target_error",
    "RandomStateWorkload",
    "random_single_qubit_states",
    "state_preparation_circuit",
    "random_layered_circuit",
    "ghz_circuit",
    "absolute_error",
    "mean_absolute_error",
    "root_mean_squared_error",
    "expected_statistical_error",
    "shots_for_target_error",
]
