"""Workload generators for the evaluation experiments.

The paper's Section IV workload is 1000 Haar-random single-qubit input
states ``W|0⟩``; the ablation experiments additionally use small random
layered circuits (for multi-wire and gate-cut comparisons) and GHZ-style
circuits (for the distributed-execution example).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ExperimentError
from repro.circuits.circuit import QuantumCircuit
from repro.quantum.random import random_unitary
from repro.quantum.states import Statevector
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "RandomStateWorkload",
    "random_single_qubit_states",
    "random_layered_circuit",
    "ghz_circuit",
    "state_preparation_circuit",
]


@dataclass(frozen=True)
class RandomStateWorkload:
    """A batch of Haar-random single-qubit input states.

    Attributes
    ----------
    states:
        The input states ``W|0⟩``.
    unitaries:
        The sampled unitaries ``W`` (kept so device-style preparation circuits
        can be built from them).
    seed:
        The workload seed, recorded for reproducibility.
    """

    states: tuple[Statevector, ...]
    unitaries: tuple[np.ndarray, ...]
    seed: int | None

    def __len__(self) -> int:
        return len(self.states)

    def exact_z_expectations(self) -> np.ndarray:
        """Return the exact ``⟨Z⟩`` of every input state."""
        z = np.diag([1.0, -1.0]).astype(complex)
        return np.array([float(np.real(s.expectation_value(z))) for s in self.states])


def random_single_qubit_states(count: int, seed: SeedLike = None) -> RandomStateWorkload:
    """Sample ``count`` Haar-random single-qubit states ``W|0⟩`` (paper Section IV)."""
    if count < 0:
        raise ExperimentError(f"count must be non-negative, got {count}")
    rng = as_generator(seed)
    unitaries = []
    states = []
    for _ in range(count):
        unitary = random_unitary(2, seed=rng)
        unitaries.append(unitary)
        states.append(Statevector(unitary[:, 0], validate=False))
    recorded_seed = seed if isinstance(seed, (int, np.integer)) else None
    return RandomStateWorkload(
        states=tuple(states), unitaries=tuple(unitaries), seed=recorded_seed
    )


def state_preparation_circuit(unitary: np.ndarray) -> QuantumCircuit:
    """Return the single-qubit circuit applying ``W`` to ``|0⟩`` (the sender fragment)."""
    circuit = QuantumCircuit(1, 0, name="W|0>")
    circuit.unitary(np.asarray(unitary, dtype=complex), 0, name="W")
    return circuit


def random_layered_circuit(
    num_qubits: int,
    depth: int,
    seed: SeedLike = None,
    two_qubit_gate: str = "cz",
) -> QuantumCircuit:
    """Return a random layered circuit (single-qubit rotations + entangling layer).

    Used by the ablation benchmarks that cut wires or gates inside a larger
    circuit.  Each layer applies Haar-ish random ``U(θ, φ, λ)`` rotations to
    every qubit followed by a brick pattern of two-qubit gates.
    """
    if num_qubits < 1:
        raise ExperimentError(f"num_qubits must be >= 1, got {num_qubits}")
    if depth < 0:
        raise ExperimentError(f"depth must be non-negative, got {depth}")
    rng = as_generator(seed)
    circuit = QuantumCircuit(num_qubits, 0, name=f"random_{num_qubits}q_d{depth}")
    for layer in range(depth):
        for qubit in range(num_qubits):
            theta, phi, lam = rng.uniform(0, 2 * np.pi, size=3)
            circuit.u(theta, phi, lam, qubit)
        offset = layer % 2
        for qubit in range(offset, num_qubits - 1, 2):
            if two_qubit_gate == "cz":
                circuit.cz(qubit, qubit + 1)
            elif two_qubit_gate == "cx":
                circuit.cx(qubit, qubit + 1)
            elif two_qubit_gate == "rzz":
                circuit.rzz(float(rng.uniform(0, np.pi)), qubit, qubit + 1)
            else:
                raise ExperimentError(f"unknown two_qubit_gate {two_qubit_gate!r}")
    return circuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """Return the GHZ-state preparation circuit on ``num_qubits`` qubits."""
    if num_qubits < 2:
        raise ExperimentError(f"GHZ needs at least 2 qubits, got {num_qubits}")
    circuit = QuantumCircuit(num_qubits, 0, name=f"ghz_{num_qubits}")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit
