"""Noise-robustness experiments for fleet execution of cut circuits.

Two sweeps quantify what running a wire cut on noisy virtual hardware does
to the reconstructed estimate:

* :func:`fleet_bias_vs_bound` — the validation sweep.  The paper's
  single-qubit workload (state → NME cut → ⟨Z⟩) is reconstructed *exactly*
  (infinite shots) on a fleet whose devices apply two-qubit depolarising
  gate noise of strength ``p``.  The teleport gadget of
  :class:`~repro.cutting.nme_cut.NMEWireCut` contains exactly two entangling
  gates — the ``|Φ_k⟩`` pair preparation and the Bell-measurement CX — so
  the device noise is equivalent to an *effective resource depolarisation*
  of combined strength ``p_comb = 1 − (1 − p)²``, and the measured bias must
  stay below the analytic
  :func:`~repro.cutting.noise.worst_case_z_bias` bound at ``p_comb``
  (Theorem 1's overhead analysis for the actually-shared mixed resource).
  This is the cross-check between the executable noise layer
  (:mod:`repro.devices`) and the analytic one (:mod:`repro.cutting.noise`).
* :func:`noisy_fleet_robustness` — the scenario sweep.  GHZ and
  random-layered workloads run through the full
  :class:`~repro.pipeline.CutPipeline` on a heterogeneous 3-device fleet,
  sweeping noise scale × split policy at finite shots, recording the
  estimate error per cell.  ``benchmarks/bench_noisy_fleet.py`` executes
  both sweeps and archives the table as ``BENCH_noisy_fleet.json``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.circuits.backends import SimulatorBackend
from repro.circuits.circuit import QuantumCircuit
from repro.cutting.cutter import CutLocation
from repro.cutting.nme_cut import NMEWireCut
from repro.cutting.noise import noisy_phi_k, validate_noise_strength, worst_case_z_bias
from repro.devices import DeviceFleet, NoiseModel, VirtualDevice
from repro.experiments.records import SweepTable
from repro.experiments.workloads import ghz_circuit, random_layered_circuit
from repro.pipeline import CutPipeline
from repro.quantum.random import random_statevector

__all__ = [
    "fleet_bias_vs_bound",
    "noisy_fleet_robustness",
    "combined_depolarizing_strength",
]

#: Entangling gates per NME teleport gadget (pair preparation + Bell CX).
_TELEPORT_2Q_GATES = 2


def combined_depolarizing_strength(p: float, applications: int = _TELEPORT_2Q_GATES) -> float:
    """Return the single-application strength equivalent to ``applications`` layers.

    ``applications`` depolarising layers of strength ``p`` compose to one of
    strength ``1 − (1 − p)^applications`` (the identity component survives
    every layer independently).
    """
    p = validate_noise_strength(p)
    return float(1.0 - (1.0 - p) ** applications)


def fleet_bias_vs_bound(
    k: float = 0.5,
    noise_levels: Sequence[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
    num_states: int = 6,
    num_devices: int = 3,
    seed: int = 100,
    inner: SimulatorBackend | str | None = None,
) -> SweepTable:
    """Measure the exact fleet-reconstruction bias against the analytic bound.

    For every noise strength ``p`` the single-qubit NME cut runs (with
    infinite shots, via the fleet's exact distributions) on ``num_devices``
    identical devices applying two-qubit depolarising noise ``p``; the worst
    bias over ``num_states`` random input states is compared with
    ``worst_case_z_bias(k, noisy_phi_k(k, p_comb))`` where
    ``p_comb = 1 − (1 − p)²`` folds both entangling gates of the teleport
    gadget into an effective resource depolarisation.

    Parameters
    ----------
    k:
        NME resource parameter of the cut protocol.
    noise_levels:
        Two-qubit depolarising strengths to sweep (validated up front).
    num_states:
        Random input states per noise level (the bias is their maximum).
    num_devices:
        Fleet size (identical devices; the mixture equals any single one,
        which keeps the comparison clean while exercising the scheduler).
    seed:
        Base seed for the random input states.
    inner:
        Ideal inner backend each device wraps.

    Returns
    -------
    SweepTable
        Columns ``depolarizing_p``, ``effective_p``, ``measured_bias``,
        ``analytic_bound`` and ``within_bound``.
    """
    noise_levels = tuple(
        validate_noise_strength(p, name="noise_levels entry") for p in noise_levels
    )
    protocol = NMEWireCut(k)
    z = np.diag([1.0, -1.0]).astype(complex)
    columns: dict[str, list] = {
        "depolarizing_p": [],
        "effective_p": [],
        "measured_bias": [],
        "analytic_bound": [],
        "within_bound": [],
    }
    for p in noise_levels:
        fleet = DeviceFleet(
            [
                VirtualDevice(f"qpu{i}", noise=NoiseModel(depolarizing_2q=p))
                for i in range(num_devices)
            ],
            inner=inner,
        )
        pipeline = CutPipeline(protocol=protocol, backend=fleet)
        measured = 0.0
        for index in range(num_states):
            state = random_statevector(1, seed=seed + index)
            circuit = QuantumCircuit(1, 0, name="prep")
            circuit.initialize(state.data, 0)
            plan = pipeline.plan(circuit, locations=[CutLocation(qubit=0, position=1)])
            decomposition = pipeline.decompose(plan)
            noisy_value = pipeline.exact_reconstruction(decomposition, "Z")
            exact = float(np.real(np.vdot(state.data, z @ state.data)))
            measured = max(measured, abs(noisy_value - exact))
        effective = combined_depolarizing_strength(p)
        bound = worst_case_z_bias(k, noisy_phi_k(k, effective))
        columns["depolarizing_p"].append(float(p))
        columns["effective_p"].append(effective)
        columns["measured_bias"].append(measured)
        columns["analytic_bound"].append(bound)
        columns["within_bound"].append(bool(measured <= bound + 1e-12))
    return SweepTable(
        name="fleet_bias_vs_bound",
        columns=columns,
        metadata={
            "k": k,
            "num_states": num_states,
            "num_devices": num_devices,
            "seed": seed,
            "teleport_2q_gates": _TELEPORT_2Q_GATES,
        },
    )


def _fleet_for_scale(scale: float, split: str, inner) -> DeviceFleet:
    """Return the heterogeneous 3-device fleet at noise scale ``scale``."""
    return DeviceFleet(
        [
            VirtualDevice(
                "qpu_clean",
                capacity=4.0,
                noise=NoiseModel(depolarizing_2q=0.2 * scale, readout_p10=0.1 * scale),
            ),
            VirtualDevice(
                "qpu_mid",
                capacity=2.0,
                noise=NoiseModel(
                    depolarizing_1q=0.2 * scale,
                    depolarizing_2q=0.5 * scale,
                    readout_p01=0.2 * scale,
                ),
            ),
            VirtualDevice(
                "qpu_noisy",
                capacity=1.0,
                noise=NoiseModel(depolarizing_2q=scale, amplitude_damping=0.2 * scale),
            ),
        ],
        split=split,
        inner=inner,
    )


def noisy_fleet_robustness(
    noise_scales: Sequence[float] = (0.0, 0.02, 0.05, 0.1),
    split_policies: Sequence[str] = ("uniform", "capacity", "fidelity"),
    shots: int = 4000,
    num_qubits: int = 4,
    seed: int = 7,
    inner: SimulatorBackend | str | None = None,
) -> SweepTable:
    """Sweep noise scale × split policy on GHZ and random-layered fleet runs.

    Each cell runs the full plan → decompose → execute → reconstruct pipeline
    with the fleet as execution backend.  At scale 0 every device is ideal,
    so the fleet estimate matches a plain-backend estimate up to shot noise;
    growing scales show the bias the split policy does (or does not)
    mitigate.

    Returns
    -------
    SweepTable
        One row per (workload, split policy, noise scale) with the estimate,
        the exact value and the absolute error.
    """
    noise_scales = tuple(
        validate_noise_strength(s, name="noise_scales entry") for s in noise_scales
    )
    # The random brick circuit admits no cheap time slice, so it is cut with
    # the explicit same-wire 2-cut chain (as in benchmarks/bench_pipeline.py).
    workloads = [
        ("ghz", ghz_circuit(num_qubits), {}),
        (
            "random_layered",
            random_layered_circuit(3, 2, seed=5, two_qubit_gate="cx"),
            {"locations": [CutLocation(qubit=0, position=1), CutLocation(qubit=0, position=4)]},
        ),
    ]
    columns: dict[str, list] = {
        "workload": [],
        "split": [],
        "noise_scale": [],
        "value": [],
        "exact": [],
        "error": [],
        "standard_error": [],
    }
    for workload_name, circuit, plan_kwargs in workloads:
        observable = "Z" * circuit.num_qubits
        for split in split_policies:
            for scale in noise_scales:
                fleet = _fleet_for_scale(scale, split, inner)
                pipeline = CutPipeline(max_fragment_width=2, backend=fleet)
                result = pipeline.run(circuit, observable, shots=shots, seed=seed, **plan_kwargs)
                columns["workload"].append(workload_name)
                columns["split"].append(split)
                columns["noise_scale"].append(float(scale))
                columns["value"].append(result.value)
                columns["exact"].append(result.exact_value)
                columns["error"].append(result.error)
                columns["standard_error"].append(result.standard_error)
    return SweepTable(
        name="noisy_fleet_robustness",
        columns=columns,
        metadata={
            "shots": shots,
            "num_qubits": num_qubits,
            "seed": seed,
            "split_policies": list(split_policies),
        },
    )
