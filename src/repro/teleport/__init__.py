"""Quantum teleportation: circuits, channels, and probabilistic variants."""

from repro.teleport.channel import (
    average_teleportation_fidelity,
    phi_k_average_fidelity,
    phi_k_teleportation_channel,
    teleportation_channel,
    teleportation_error_probabilities,
)
from repro.teleport.probabilistic import (
    expected_attempts,
    simulate_attempts,
    success_probability,
)
from repro.teleport.protocol import (
    append_teleportation,
    bell_measurement,
    prepare_phi_k,
    prepare_resource_state,
    teleportation_circuit,
    teleportation_corrections,
)

__all__ = [
    "teleportation_circuit",
    "append_teleportation",
    "prepare_phi_k",
    "prepare_resource_state",
    "bell_measurement",
    "teleportation_corrections",
    "teleportation_channel",
    "phi_k_teleportation_channel",
    "teleportation_error_probabilities",
    "average_teleportation_fidelity",
    "phi_k_average_fidelity",
    "success_probability",
    "expected_attempts",
    "simulate_attempts",
]
