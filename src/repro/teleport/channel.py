"""The teleportation channel for arbitrary resource states (Eq. 22).

Teleporting a qubit through a resource state ρ that is not maximally
entangled yields the Pauli-error channel

.. math::

    E^{\\rho}_{tel}(\\varphi) = \\sum_{\\sigma \\in \\{I,X,Y,Z\\}}
        \\langle\\Phi_\\sigma|\\rho|\\Phi_\\sigma\\rangle\\; \\sigma\\varphi\\sigma ,

where ``|Φ_σ⟩ = (σ⊗I)|Φ⟩`` are the Bell basis states.  For the pure NME
states ``Φ_k`` only the identity and Z components survive (Appendix C), with
weights ``(k+1)²/(2(k²+1))`` and ``(k−1)²/(2(k²+1))``.

This module produces the channel in Kraus form for analytic work, plus the
teleportation fidelity formulas used by the related-work baselines.
"""

from __future__ import annotations

import numpy as np

from repro.quantum.bell import bell_overlaps, overlap_from_k
from repro.quantum.channels import QuantumChannel
from repro.quantum.gates import PAULI_MATRICES
from repro.quantum.states import DensityMatrix, Statevector

__all__ = [
    "teleportation_error_probabilities",
    "teleportation_channel",
    "phi_k_teleportation_channel",
    "average_teleportation_fidelity",
    "phi_k_average_fidelity",
]


def teleportation_error_probabilities(
    resource: DensityMatrix | Statevector | np.ndarray,
) -> dict[str, float]:
    """Return the Pauli-error probabilities ``⟨Φ_σ|ρ|Φ_σ⟩`` of teleportation through ρ.

    For a trace-one two-qubit resource these overlaps sum to at most 1; any
    deficit corresponds to weight outside the Bell-diagonal part of ρ, which
    for the protocol in Figure 3 also maps onto the four Pauli branches — the
    full channel probabilities are exactly the four overlaps for
    Bell-diagonal states and for all pure Schmidt-basis-aligned states such
    as ``Φ_k``.
    """
    return bell_overlaps(resource)


def teleportation_channel(resource: DensityMatrix | Statevector | np.ndarray) -> QuantumChannel:
    """Return ``E_tel^ρ`` (Eq. 22) as a Kraus channel."""
    probabilities = teleportation_error_probabilities(resource)
    kraus = []
    for label, probability in probabilities.items():
        if probability <= 1e-15:
            continue
        kraus.append(np.sqrt(probability) * PAULI_MATRICES[label])
    if not kraus:
        kraus = [np.zeros((2, 2), dtype=complex)]
    return QuantumChannel(kraus)


def phi_k_teleportation_channel(k: float) -> QuantumChannel:
    """Return the teleportation channel for the pure NME resource ``Φ_k``.

    Only the ``I`` and ``Z`` Kraus branches appear (Appendix C, Eqs. 55–59).
    """
    p_identity = overlap_from_k(k)
    p_z = 1.0 - p_identity
    kraus = [np.sqrt(p_identity) * PAULI_MATRICES["I"]]
    if p_z > 1e-15:
        kraus.append(np.sqrt(p_z) * PAULI_MATRICES["Z"])
    return QuantumChannel(kraus)


def average_teleportation_fidelity(resource: DensityMatrix | Statevector | np.ndarray) -> float:
    """Return the average fidelity of teleportation through ρ.

    For a Pauli channel with identity weight ``p_I`` the fidelity averaged
    over Haar-random pure inputs is ``(2·F_e + 1)/3`` with entanglement
    fidelity ``F_e = p_I`` — the standard relation between entanglement
    fidelity and average fidelity for qubit channels.
    """
    probabilities = teleportation_error_probabilities(resource)
    entanglement_fidelity = probabilities["I"]
    return float((2.0 * entanglement_fidelity + 1.0) / 3.0)


def phi_k_average_fidelity(k: float) -> float:
    """Average teleportation fidelity with the pure NME resource ``Φ_k``."""
    return float((2.0 * overlap_from_k(k) + 1.0) / 3.0)
