"""Probabilistic (Agrawal–Pati) teleportation with NME resource states.

The related-work section of the paper contrasts the NME wire cut with the
probabilistic teleportation protocol [43, 44]: with a pure NME resource
``|Φ_k⟩`` (``k ≤ 1`` w.l.o.g.) an unknown state can be teleported *exactly*,
but only with success probability

.. math::

    p_{succ}(k) = \\frac{2 k^2}{1 + k^2},

and a failed attempt destroys the message, so the expected number of message
copies (and resource pairs) per successful teleportation is ``1/p_succ``.
This module provides the analytic model plus a sampling helper so the
comparison benchmark can show where probabilistic teleportation's repetition
overhead sits relative to the wire-cut sampling overhead.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import StateError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "success_probability",
    "expected_attempts",
    "simulate_attempts",
]


def _normalise_k(k: float) -> float:
    """Map ``k`` to the equivalent value in ``[0, 1]`` (k and 1/k give the same state up to relabelling)."""
    if k < 0:
        raise StateError(f"k must be non-negative, got {k}")
    if k == 0:
        return 0.0
    return min(k, 1.0 / k)


def success_probability(k: float) -> float:
    """Return the exact-teleportation success probability ``2k²/(1+k²)`` for ``Φ_k``."""
    k = _normalise_k(k)
    return float(2.0 * k * k / (1.0 + k * k))


def expected_attempts(k: float) -> float:
    """Return the expected number of attempts per successful teleportation (``∞`` for separable resources)."""
    probability = success_probability(k)
    if probability <= 0.0:
        return float("inf")
    return float(1.0 / probability)


def simulate_attempts(k: float, successes: int, seed: SeedLike = None) -> int:
    """Sample how many attempts are needed to achieve ``successes`` exact teleportations."""
    if successes < 0:
        raise ValueError(f"successes must be non-negative, got {successes}")
    probability = success_probability(k)
    if successes == 0:
        return 0
    if probability <= 0.0:
        raise StateError("separable resource states never succeed; cannot simulate attempts")
    rng = as_generator(seed)
    # Sum of `successes` geometric variables.
    return int(np.sum(rng.geometric(probability, size=successes)))
