"""Quantum teleportation circuits (Section II-E, Figure 3).

The standard teleportation protocol transmits the state of a *message* qubit
``A`` to a *target* qubit ``C`` using a pre-shared resource pair on qubits
``B`` (sender side) and ``C`` (receiver side):

1. the sender performs a Bell-basis measurement on ``A`` and ``B``
   (CX(A,B), H(A), then computational-basis measurements),
2. the two classical outcome bits are sent to the receiver,
3. the receiver applies ``X`` conditioned on the ``B`` outcome and ``Z``
   conditioned on the ``A`` outcome.

With a maximally entangled resource the output equals the input exactly; with
a general resource state ``ρ_BC`` the output is the Pauli-error channel of
Eq. 22 (see :mod:`repro.teleport.channel`).

This module builds the circuit fragments for both the standalone protocol and
the teleportation gadgets embedded in the NME wire cut of Theorem 2.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CircuitError
from repro.circuits.circuit import QuantumCircuit
from repro.quantum.states import Statevector

__all__ = [
    "prepare_phi_k",
    "prepare_resource_state",
    "bell_measurement",
    "teleportation_corrections",
    "teleportation_circuit",
    "append_teleportation",
]


def prepare_phi_k(circuit: QuantumCircuit, k: float, qubit_b: int, qubit_c: int) -> QuantumCircuit:
    """Append gates preparing ``|Φ_k⟩ = K(|00⟩ + k|11⟩)`` on ``(qubit_b, qubit_c)``.

    The preparation is the two-gate sequence ``Ry(θ)`` on ``qubit_b`` followed
    by ``CX(qubit_b → qubit_c)`` with ``θ = 2·arctan(k)``, which is what a
    device distributing the pair would run (rather than an opaque
    ``initialize``), so the gadget circuits match Figure 5 of the paper
    gate-for-gate.
    """
    if k < 0:
        raise CircuitError(f"k must be non-negative, got {k}")
    theta = 2.0 * np.arctan(k)
    circuit.ry(theta, qubit_b)
    circuit.cx(qubit_b, qubit_c)
    return circuit


def prepare_resource_state(
    circuit: QuantumCircuit,
    resource: Statevector | np.ndarray | float,
    qubit_b: int,
    qubit_c: int,
) -> QuantumCircuit:
    """Append the preparation of an arbitrary two-qubit resource state.

    ``resource`` may be a ``k`` value (prepared via :func:`prepare_phi_k`) or
    an explicit two-qubit pure state (prepared via ``initialize``).
    """
    if isinstance(resource, (int, float)) and not isinstance(resource, bool):
        return prepare_phi_k(circuit, float(resource), qubit_b, qubit_c)
    state = resource.data if isinstance(resource, Statevector) else np.asarray(resource, dtype=complex)
    if state.shape != (4,):
        raise CircuitError(f"resource state must be a two-qubit ket, got shape {state.shape}")
    circuit.initialize(state, (qubit_b, qubit_c))
    return circuit


def bell_measurement(
    circuit: QuantumCircuit,
    qubit_a: int,
    qubit_b: int,
    clbit_a: int,
    clbit_b: int,
) -> QuantumCircuit:
    """Append the sender's Bell-basis measurement of ``(qubit_a, qubit_b)``."""
    circuit.cx(qubit_a, qubit_b)
    circuit.h(qubit_a)
    circuit.measure(qubit_a, clbit_a)
    circuit.measure(qubit_b, clbit_b)
    return circuit


def teleportation_corrections(
    circuit: QuantumCircuit,
    qubit_c: int,
    clbit_a: int,
    clbit_b: int,
) -> QuantumCircuit:
    """Append the receiver's classically conditioned Pauli corrections."""
    circuit.x(qubit_c, condition=(clbit_b, 1))
    circuit.z(qubit_c, condition=(clbit_a, 1))
    return circuit


def append_teleportation(
    circuit: QuantumCircuit,
    resource: Statevector | np.ndarray | float,
    qubit_a: int,
    qubit_b: int,
    qubit_c: int,
    clbit_a: int,
    clbit_b: int,
) -> QuantumCircuit:
    """Append a full teleportation of ``qubit_a`` onto ``qubit_c`` to ``circuit``.

    The resource state is prepared on ``(qubit_b, qubit_c)`` in-line; the two
    classical bits record the Bell measurement outcomes.
    """
    prepare_resource_state(circuit, resource, qubit_b, qubit_c)
    bell_measurement(circuit, qubit_a, qubit_b, clbit_a, clbit_b)
    teleportation_corrections(circuit, qubit_c, clbit_a, clbit_b)
    return circuit


def teleportation_circuit(
    message_state: Statevector | np.ndarray | None = None,
    resource: Statevector | np.ndarray | float = 1.0,
) -> QuantumCircuit:
    """Return a standalone three-qubit teleportation circuit.

    Qubit 0 carries the message (optionally initialised to ``message_state``),
    qubits 1 and 2 hold the resource pair, and the teleported state ends up on
    qubit 2.  Classical bits 0 and 1 record the Bell measurement.
    """
    circuit = QuantumCircuit(3, 2, name="teleportation")
    if message_state is not None:
        state = (
            message_state.data
            if isinstance(message_state, Statevector)
            else np.asarray(message_state, dtype=complex)
        )
        circuit.initialize(state, 0)
    append_teleportation(circuit, resource, qubit_a=0, qubit_b=1, qubit_c=2, clbit_a=0, clbit_b=1)
    return circuit
