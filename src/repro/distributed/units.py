"""Work units and their results: the currency of distributed round execution.

One :class:`WorkUnit` is a per-term shot slice of one adaptive round.  It
carries the round's spawned :class:`numpy.random.SeedSequence`, so *any*
worker executing the unit through the zero-padded batch submission (see
:func:`repro.distributed.engine.execute_unit`) draws from exactly the
per-circuit child stream the in-process executor would have used — which is
what makes distributed execution bitwise identical to in-process execution
regardless of which worker runs the unit, in what order, or how often it is
retried after a fault.

Units are keyed by ``(round_index, term_index)``.  The key is the unit's
identity: the coordinator deduplicates duplicate results by key (a worker
killed right after reporting may have had its unit re-queued) and merges
results in sorted-key order, never arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WorkUnit", "UnitResult"]


@dataclass(frozen=True)
class WorkUnit:
    """One per-term shot slice of one adaptive round.

    Attributes
    ----------
    round_index:
        Zero-based adaptive round the unit belongs to.
    term_index:
        Index of the QPD term whose shots this unit carries.
    shots:
        Number of shots to execute (strictly positive; zero-shot terms
        never become units).
    seed:
        The round's master :class:`numpy.random.SeedSequence`.  Workers
        spawn the full per-circuit child set from it and sample only the
        child at ``term_index``, so results do not depend on which worker
        executes the unit.
    device:
        Name of the home device queue the scheduler assigned the unit to
        (``""`` until assignment).
    trace:
        Optional picklable span context ``(trace_id, span_id)`` stamped by
        the coordinator, so the unit's execution can be attached to the
        round span of the submitting job's trace.  Telemetry-only: never
        read by the execution path.
    """

    round_index: int
    term_index: int
    shots: int
    seed: np.random.SeedSequence
    device: str = ""
    trace: tuple[str, str] | None = None

    @property
    def key(self) -> tuple[int, int]:
        """The unit's identity ``(round_index, term_index)``."""
        return (int(self.round_index), int(self.term_index))


@dataclass(frozen=True)
class UnitResult:
    """The outcome of executing one :class:`WorkUnit`.

    Attributes
    ----------
    round_index:
        Round the unit belonged to.
    term_index:
        QPD term the unit belonged to.
    shots:
        Shots the unit executed.
    mean:
        Empirical mean of the unit's ±1-valued outcomes.  Together with
        ``shots`` this is a lossless batch summary (the within-batch sum of
        squared deviations of a ±1 sample is ``shots · (1 − mean²)``
        exactly), so the coordinator can merge partials with Chan's
        algorithm without shipping raw counts.
    worker:
        Identifier of the worker that produced the result (diagnostic
        only; never feeds the merge).
    trace:
        The producing unit's span context, echoed back so the coordinator
        can synthesise a ``unit`` span under the right round (telemetry
        only; never feeds the merge).
    elapsed:
        Wall-clock seconds the worker spent executing the unit, measured on
        the worker's monotonic clock (telemetry only; never feeds the
        merge).
    """

    round_index: int
    term_index: int
    shots: int
    mean: float
    worker: str = ""
    trace: tuple[str, str] | None = None
    elapsed: float = 0.0

    @property
    def key(self) -> tuple[int, int]:
        """The producing unit's identity ``(round_index, term_index)``."""
        return (int(self.round_index), int(self.term_index))
