"""Distributed round execution: queue, workers, work stealing, mergeable partials.

The adaptive engine's round structure is the unit of distribution: each
round becomes a set of :class:`WorkUnit` shot slices (one per QPD term,
carrying the round's spawned seed stream), a
:class:`WorkStealingScheduler` apportions them onto per-device queues
(mirroring the fleet's ``plan_round_shares`` weights), a multi-process
:class:`WorkerPool` drains the queues — fast devices steal from slow
devices' backlogs — and the coordinator merges the
:class:`~repro.qpd.adaptive.TermStatistics` partials with Chan's algorithm
in sorted unit-key order.

The headline invariant: **distributed results are bitwise identical to
in-process results for the same seed**, regardless of worker count, steal
order, merge arrival order, worker deaths or retries.  See
:mod:`repro.distributed.engine` for the mechanism.

Entry points: ``run_adaptive_rounds(..., execution="distributed",
workers=N)``, ``CutPipeline.execute(..., execution="distributed")``,
``JobSpec(execution="distributed", workers=N)`` and the CLI's
``repro cut run --execution distributed --workers N``.
"""

from repro.distributed.engine import DistributedRoundExecutor
from repro.distributed.pool import WORKER_MODES, WorkerPool, execute_unit
from repro.distributed.queue import STEAL_POLICIES, RoundQueue
from repro.distributed.scheduler import WorkStealingScheduler
from repro.distributed.units import UnitResult, WorkUnit

__all__ = [
    "DistributedRoundExecutor",
    "RoundQueue",
    "STEAL_POLICIES",
    "UnitResult",
    "WORKER_MODES",
    "WorkUnit",
    "WorkerPool",
    "WorkStealingScheduler",
    "execute_unit",
]
