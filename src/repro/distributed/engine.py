"""The :class:`DistributedRoundExecutor`: adaptive rounds over a worker pool.

This is the bridge between the streaming adaptive engine
(:func:`repro.qpd.adaptive.run_adaptive_rounds`) and the distributed
machinery: it is itself a
:data:`~repro.qpd.adaptive.RoundExecutor` — ``(round_index,
shots_per_term, seed_sequence) → per-term means`` — that turns every round
into work units, schedules them onto per-device queues, drains the queues
through the :class:`~repro.distributed.pool.WorkerPool` and assembles the
per-term means in **sorted unit-key order**, never arrival order.

Determinism invariant
---------------------
For the same master seed, a distributed run is bitwise identical to the
in-process run — regardless of worker count, steal policy or order, merge
arrival order, worker deaths or retries.  Three mechanisms carry it:

1. every unit executes the full measured batch with a zero-padded shots
   vector seeded by the round seed, so its counts equal the in-process
   round's slice for that term (see
   :func:`~repro.distributed.pool.execute_unit`);
2. units are keyed by ``(round_index, term_index)`` and results are
   de-duplicated and merged by sorted key;
3. scheduling randomness (the ``"random"`` steal policy) draws from its
   own RNG that never touches the statistics.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

import repro.telemetry as telemetry
from repro.exceptions import DistributedError
from repro.circuits.backends import SimulatorBackend
from repro.circuits.circuit import QuantumCircuit
from repro.distributed.pool import WorkerPool
from repro.distributed.scheduler import WorkStealingScheduler
from repro.distributed.units import UnitResult, WorkUnit
from repro.qpd.adaptive import TermStatistics
from repro.telemetry.metrics import REGISTRY
from repro.utils.rng import SeedLike

__all__ = ["DistributedRoundExecutor"]

#: Units stolen across device queues (cumulative across executors).
_STEALS = REGISTRY.counter(
    "repro_distributed_steals_total",
    "Distributed work units stolen across device queues.",
)


class DistributedRoundExecutor:
    """Round executor distributing each adaptive round over a worker pool.

    Parameters
    ----------
    circuits:
        The measured term circuits of the estimation.
    selected_clbits:
        Per-term classical bits carrying the signed observable outcome.
    backend:
        Execution backend (name or instance, including a
        :class:`~repro.devices.DeviceFleet`); ``None`` selects the serial
        backend.  The backend also seeds the device layout: a fleet
        contributes its device names and split weights to the scheduler, so
        static assignment mirrors
        :meth:`~repro.devices.DeviceFleet.plan_round_shares`.
    workers:
        Number of worker processes (default 2).
    scheduler:
        Optional pre-built :class:`~repro.distributed.scheduler.WorkStealingScheduler`;
        overrides ``steal``/``steal_seed`` and the fleet-derived layout.
    steal:
        Steal policy for the per-round queues.
    steal_seed:
        Seed for the ``"random"`` steal policy's scheduling RNG.
    mode:
        Pool mode, ``"process"`` or ``"inline"``.
    latencies:
        Optional per-device simulated seconds-per-unit (benchmark knob).
    max_retries:
        Per-unit retry budget for backend faults.

    Notes
    -----
    The executor keeps its own per-term :class:`~repro.qpd.adaptive.TermStatistics`,
    merged from the unit partials with Chan's algorithm in sorted-key
    order.  The adaptive engine maintains the identical state from the
    returned round means; the duplication is deliberate — tests assert the
    two ledgers agree bitwise, which pins the merge algebra the
    distribution relies on.
    """

    def __init__(
        self,
        circuits: Sequence[QuantumCircuit],
        selected_clbits: Sequence[Sequence[int]],
        backend: SimulatorBackend | str | None = None,
        workers: int | None = None,
        scheduler: WorkStealingScheduler | None = None,
        steal: str = "max-backlog",
        steal_seed: SeedLike = None,
        mode: str = "process",
        latencies: Mapping[str, float] | None = None,
        max_retries: int = 3,
    ) -> None:
        self._circuits = list(circuits)
        self._selected_clbits = [list(bits) for bits in selected_clbits]
        workers = 2 if workers is None else int(workers)
        if workers < 1:
            raise DistributedError(f"workers must be at least 1, got {workers}")
        if scheduler is None:
            if _is_fleet(backend):
                scheduler = WorkStealingScheduler.from_fleet(
                    backend, steal=steal, steal_seed=steal_seed
                )
            else:
                scheduler = WorkStealingScheduler.for_workers(
                    workers, steal=steal, steal_seed=steal_seed
                )
        self._scheduler = scheduler
        self._pool = WorkerPool(
            self._circuits,
            self._selected_clbits,
            backend=backend,
            devices=scheduler.devices,
            workers=workers,
            mode=mode,
            latencies=latencies,
            max_retries=max_retries,
        )
        num_terms = len(self._circuits)
        #: Per-term running statistics merged from unit partials (Chan).
        self.term_statistics = [TermStatistics() for _ in range(num_terms)]
        #: Rounds executed through this executor.
        self.rounds_executed = 0
        #: Work-steal count accumulated across rounds.
        self.steals = 0

    # -- introspection -----------------------------------------------------------------

    @property
    def pool(self) -> WorkerPool:
        """The underlying worker pool (counters: requeues, retries, ...)."""
        return self._pool

    @property
    def scheduler(self) -> WorkStealingScheduler:
        """The unit-to-device scheduler."""
        return self._scheduler

    @property
    def num_workers(self) -> int:
        """Number of configured workers."""
        return self._pool.num_workers

    # -- RoundExecutor protocol --------------------------------------------------------

    def __call__(
        self,
        round_index: int,
        shots_per_term: Sequence[int],
        seed_sequence: np.random.SeedSequence,
    ) -> list[float]:
        """Execute one adaptive round across the pool; return per-term means.

        Builds one unit per (measured, non-zero-shot) term carrying the
        round seed, schedules the units onto per-device queues, drains the
        queues through the pool and assembles the means by term index —
        bitwise what the in-process round executor would have returned.
        """
        if len(shots_per_term) != len(self._circuits):
            raise DistributedError(
                f"round {round_index}: got {len(shots_per_term)} allocations for "
                f"{len(self._circuits)} terms"
            )
        # Stamp the ambient span context (the adaptive round span) into the
        # units, so worker results attach to the submitting job's trace.
        trace = telemetry.current_context_tuple()
        units = [
            WorkUnit(
                round_index=int(round_index),
                term_index=term_index,
                shots=int(count),
                seed=seed_sequence,
                trace=trace,
            )
            for term_index, count in enumerate(shots_per_term)
            if int(count) > 0 and self._selected_clbits[term_index]
        ]
        results: list[UnitResult] = []
        if units:
            queue = self._scheduler.build_queue(units)
            results = self._pool.run_round(queue)
            self.steals += queue.steals
            _STEALS.inc(float(queue.steals))
        self.rounds_executed += 1

        means = [0.0] * len(self._circuits)
        for term_index, count in enumerate(shots_per_term):
            if int(count) > 0 and not self._selected_clbits[term_index]:
                # Terms without measured bits are deterministic +1; the
                # in-process executor never pays simulator shots for them.
                means[term_index] = 1.0
        for result in results:  # already sorted by unit key
            means[result.term_index] = result.mean
            partial = TermStatistics()
            partial.merge_round(result.mean, result.shots)
            self.term_statistics[result.term_index] = _chan_merge(
                self.term_statistics[result.term_index], partial
            )
        return means

    # -- distribution hook -------------------------------------------------------------

    def distribute(self, workers: int | None = None) -> "DistributedRoundExecutor":
        """Return self (already distributed); ``workers`` must agree when given."""
        if workers is not None and int(workers) != self.num_workers:
            raise DistributedError(
                f"executor already distributed over {self.num_workers} workers; "
                f"cannot re-distribute over {workers}"
            )
        return self

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "DistributedRoundExecutor":
        """Start the pool on context entry."""
        self._pool.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the pool on context exit."""
        self.close()


def _chan_merge(left: TermStatistics, right: TermStatistics) -> TermStatistics:
    """Return the Chan merge of two term-statistics ledgers (non-mutating)."""
    merged = TermStatistics(shots=left.shots, mean=left.mean, m2=left.m2)
    merged.merge(right)
    return merged


def _is_fleet(backend) -> bool:
    """Return True when ``backend`` looks like a :class:`~repro.devices.DeviceFleet`."""
    return (
        backend is not None
        and not isinstance(backend, str)
        and hasattr(backend, "devices")
        and hasattr(backend, "split_policy")
    )
