"""The shared round queue: per-device backlogs with work stealing.

A :class:`RoundQueue` holds one round's :class:`~repro.distributed.units.WorkUnit`
backlog as one deque per device (the scheduler's apportionment).  Workers
pull from their own device's queue first; when it runs dry they *steal* from
another device's backlog according to the configured policy.  Stealing only
changes **scheduling** — every unit carries its own seed stream, so the
round's merged statistics are bitwise independent of who executed what.

Steal policies
--------------
``"max-backlog"`` (default)
    Steal from the device with the largest remaining backlog, ties broken
    by device declaration order.  This is the policy that converts a skewed
    fleet's idle time into throughput.
``"round-robin"``
    Cycle deterministically through victim devices.
``"random"``
    Pick a uniformly random non-empty victim from a dedicated scheduling
    RNG (results are unaffected; only the steal pattern varies).
``"none"``
    Never steal — static apportionment, the baseline the work-stealing
    benchmark measures against.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

import numpy as np

from repro.exceptions import DeviceError
from repro.distributed.units import WorkUnit
from repro.utils.rng import SeedLike

__all__ = ["RoundQueue", "STEAL_POLICIES"]

#: Steal policies accepted by :class:`RoundQueue` and everything above it.
STEAL_POLICIES = ("max-backlog", "round-robin", "random", "none")


class RoundQueue:
    """One round's work-unit backlog, partitioned per device.

    Parameters
    ----------
    devices:
        Device names, in declaration order (the order is the deterministic
        tie-break for ``"max-backlog"`` stealing and the cycle order for
        ``"round-robin"``).
    steal:
        Steal policy; one of :data:`STEAL_POLICIES`.
    steal_seed:
        Seed for the ``"random"`` policy's scheduling RNG.  Never touches
        result statistics.
    """

    def __init__(
        self,
        devices: Sequence[str],
        steal: str = "max-backlog",
        steal_seed: SeedLike = None,
    ) -> None:
        if not devices:
            raise DeviceError("a round queue needs at least one device")
        if len(set(devices)) != len(devices):
            raise DeviceError(f"duplicate device names in {list(devices)!r}")
        if steal not in STEAL_POLICIES:
            raise DeviceError(
                f"unknown steal policy {steal!r}; expected one of {STEAL_POLICIES}"
            )
        self._devices = tuple(str(name) for name in devices)
        self._queues: dict[str, deque[WorkUnit]] = {
            name: deque() for name in self._devices
        }
        self._steal = steal
        self._rng = np.random.default_rng(steal_seed)
        self._cursor = 0
        #: Number of units pulled from a foreign queue.
        self.steals = 0
        #: Steal history as ``(thief, victim, unit_key)`` tuples.
        self.steal_log: list[tuple[str, str, tuple[int, int]]] = []

    # -- introspection -----------------------------------------------------------------

    @property
    def devices(self) -> tuple[str, ...]:
        """The device names, in declaration order."""
        return self._devices

    @property
    def steal_policy(self) -> str:
        """The configured steal policy."""
        return self._steal

    def __len__(self) -> int:
        """Total units currently queued across all devices."""
        return sum(len(queue) for queue in self._queues.values())

    def backlog(self, device: str) -> int:
        """Return the number of units queued for ``device``."""
        return len(self._queues[device])

    def unit_keys(self) -> list[tuple[int, int]]:
        """Return the keys of every queued unit (the coordinator's ledger seed)."""
        return [
            unit.key for queue in self._queues.values() for unit in queue
        ]

    # -- mutation ----------------------------------------------------------------------

    def push(self, unit: WorkUnit) -> None:
        """Append ``unit`` to the back of its home device's queue."""
        if unit.device not in self._queues:
            raise DeviceError(
                f"unit {unit.key} is assigned to unknown device {unit.device!r}"
            )
        self._queues[unit.device].append(unit)

    def requeue(self, unit: WorkUnit) -> None:
        """Return a dispatched-but-unfinished unit to the *front* of its home queue.

        Used by the coordinator when a worker dies mid-unit or a backend
        fault is retried; front insertion keeps the recovered unit ahead of
        untouched backlog so retries do not starve.
        """
        if unit.device not in self._queues:
            raise DeviceError(
                f"unit {unit.key} is assigned to unknown device {unit.device!r}"
            )
        self._queues[unit.device].appendleft(unit)

    def next_unit(self, device: str) -> WorkUnit | None:
        """Pop the next unit for ``device``: its own backlog first, then a steal.

        Returns ``None`` when the device's queue is empty and no steal is
        possible (policy ``"none"``, or every other queue is empty too).

        Own-queue pulls pop from the *front* (FIFO); steals pop from the
        *back* of the victim's queue, the classic work-stealing discipline
        that minimises contention with the victim's own progress.
        """
        if device not in self._queues:
            raise DeviceError(f"unknown device {device!r}")
        own = self._queues[device]
        if own:
            return own.popleft()
        if self._steal == "none":
            return None
        victim = self._pick_victim(device)
        if victim is None:
            return None
        unit = self._queues[victim].pop()
        self.steals += 1
        self.steal_log.append((device, victim, unit.key))
        return unit

    def _pick_victim(self, thief: str) -> str | None:
        """Return the device to steal from, or ``None`` when nothing is stealable."""
        candidates = [
            name
            for name in self._devices
            if name != thief and self._queues[name]
        ]
        if not candidates:
            return None
        if self._steal == "max-backlog":
            return max(candidates, key=lambda name: len(self._queues[name]))
        if self._steal == "round-robin":
            # Advance a cursor over the declaration order until it lands on
            # a non-empty foreign queue.
            for _ in range(len(self._devices)):
                name = self._devices[self._cursor % len(self._devices)]
                self._cursor += 1
                if name in candidates:
                    return name
            return candidates[0]
        # "random": scheduling-only randomness from the dedicated RNG.
        return candidates[int(self._rng.integers(len(candidates)))]
