"""The multi-process :class:`WorkerPool`: pull units, execute, report partials.

Workers are OS processes.  Each one owns an inbox queue; the coordinator
(the process driving :meth:`WorkerPool.run_round`) pulls units from the
:class:`~repro.distributed.queue.RoundQueue` on a worker's behalf — own
backlog first, then steals — and mails them one at a time, so the stealing
decision always sees the queue's true state.  Workers execute units through
an ordinary :class:`~repro.circuits.backends.SimulatorBackend` (or a
:class:`~repro.devices.DeviceFleet`) and report
:class:`~repro.distributed.units.UnitResult` partials on a shared result
queue.

Fault tolerance
---------------
A worker that dies mid-unit (crash, OOM kill, ``SIGKILL``) is detected by a
liveness sweep; its in-flight unit is re-queued at the front of its home
backlog and the surviving workers absorb it.  A unit whose execution raises
(a flaky backend) is retried up to ``max_retries`` times.  Because every
unit carries its own seed stream and results merge by sorted unit key, *any*
interleaving of failures, retries and steals yields bitwise-identical round
statistics; duplicate results (a worker killed right after reporting while
its unit was conservatively re-queued) are de-duplicated by unit key.

The ``"inline"`` mode executes the same pull/steal/merge loop synchronously
in the coordinator process — no workers, no queues — which is what the
deterministic unit tests and the scheduling simulations use.
"""

from __future__ import annotations

import queue as stdlib_queue
import time
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import multiprocessing as mp

import numpy as np

from repro.exceptions import DistributedError
from repro.circuits.backends import SimulatorBackend, resolve_backend
from repro.circuits.circuit import QuantumCircuit
from repro.distributed.queue import RoundQueue
from repro.distributed.units import UnitResult, WorkUnit
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.tracing import record_span

__all__ = ["WorkerPool", "execute_unit", "WORKER_MODES"]

#: Execution modes of the pool: real OS processes or a synchronous loop.
WORKER_MODES = ("process", "inline")

#: Default per-unit retry budget for backend faults.
DEFAULT_MAX_RETRIES = 3

#: Coordinator-side pool counters (cumulative across pools in the process;
#: the per-pool attributes ``requeues``/``retries``/``units_completed`` stay
#: the per-instance view).
_UNITS_COMPLETED = REGISTRY.counter(
    "repro_distributed_units_completed_total",
    "Distributed work units completed (first result per unit key).",
)
_UNIT_RETRIES = REGISTRY.counter(
    "repro_distributed_unit_retries_total",
    "Distributed unit retries after backend faults.",
)
_UNIT_REQUEUES = REGISTRY.counter(
    "repro_distributed_unit_requeues_total",
    "Distributed units re-queued after a worker death.",
)


def _pristine_seed(seed):
    """Return a spawn-state-free copy of a :class:`~numpy.random.SeedSequence`.

    ``SeedSequence.spawn`` mutates the parent's child counter, so executing
    two units against the *same* round-seed object would hand the second
    unit shifted child streams.  Worker processes are immune (they receive
    pickled copies), but the inline mode and in-worker retries share one
    object — every unit execution therefore derives its children from a
    pristine reconstruction, exactly what the in-process round executor
    sees.
    """
    if not isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(
        entropy=seed.entropy, spawn_key=seed.spawn_key, pool_size=seed.pool_size
    )


def execute_unit(
    backend: SimulatorBackend,
    circuits: Sequence[QuantumCircuit],
    selected_clbits: Sequence[Sequence[int]],
    unit: WorkUnit,
    worker: str = "",
) -> UnitResult:
    """Execute one work unit bitwise-identically to the in-process round batch.

    The full measured batch is submitted with a zero-padded shots vector
    (shots only at ``unit.term_index``), seeded with the unit's round seed.
    ``run_batch`` spawns one child stream per circuit and samples circuit
    ``i`` exclusively from child ``i`` (the library-wide determinism
    contract), so the unit's counts equal the corresponding slice of the
    full in-process round — on every backend.  Zero-shot circuits are never
    simulated, so the padding costs nothing.

    Parameters
    ----------
    backend:
        Any simulator backend (including a :class:`~repro.devices.DeviceFleet`).
    circuits:
        The round's full measured term-circuit batch.
    selected_clbits:
        Per-term classical bits carrying the signed observable outcome.
    unit:
        The unit to execute.
    worker:
        Identifier stamped on the result (diagnostic only).

    Returns
    -------
    UnitResult
        The term's batch summary ``(mean, shots)`` for this round slice.
    """
    start = time.monotonic()
    term = int(unit.term_index)
    selected = list(selected_clbits[term])
    # Mirror the in-process executor exactly: terms without measured bits
    # are deterministic +1 and never pay simulator shots.
    submitted = [0] * len(circuits)
    if selected:
        submitted[term] = int(unit.shots)
    counts = backend.run_batch(circuits, submitted, seed=_pristine_seed(unit.seed))[term]
    mean = counts.expectation_z(selected) if selected else 1.0
    return UnitResult(
        round_index=int(unit.round_index),
        term_index=term,
        shots=int(unit.shots),
        mean=float(mean),
        worker=worker,
        trace=unit.trace,
        elapsed=float(time.monotonic() - start),
    )


def _worker_main(
    worker_name: str,
    circuits,
    selected_clbits,
    backend,
    latency: float,
    inbox,
    results,
) -> None:
    """Worker process loop: pull a unit from the inbox, execute, report.

    ``None`` on the inbox is the shutdown sentinel.  Failures are reported
    as ``("error", worker, key, message)`` so the coordinator can retry the
    unit elsewhere instead of losing the round.
    """
    while True:
        unit = inbox.get()
        if unit is None:
            return
        try:
            if latency > 0.0:
                time.sleep(latency)
            result = execute_unit(
                backend, circuits, selected_clbits, unit, worker=worker_name
            )
        except Exception as error:  # ship the failure, never kill the loop
            results.put(
                ("error", worker_name, unit.key, f"{type(error).__name__}: {error}")
            )
        else:
            results.put(("ok", worker_name, result))


@dataclass
class _WorkerHandle:
    """Coordinator-side state of one worker."""

    name: str
    device: str
    latency: float = 0.0
    process: mp.Process | None = None
    inbox: object | None = None
    in_flight: WorkUnit | None = field(default=None)
    dead: bool = False


class WorkerPool:
    """A pool of unit-executing workers over one measured term-circuit batch.

    Parameters
    ----------
    circuits:
        The measured term circuits of the estimation (shared by every
        round; workers receive them once at spawn).
    selected_clbits:
        Per-term classical bits carrying the signed observable outcome.
    backend:
        Execution backend (name or instance, including a
        :class:`~repro.devices.DeviceFleet`); ``None`` selects the serial
        backend.
    devices:
        Device names served by the pool, cycled over the workers (worker
        ``i`` serves ``devices[i % len(devices)]``).  ``None`` gives every
        worker its own synthetic device.
    workers:
        Number of worker processes; defaults to ``len(devices)`` (or 1).
    mode:
        ``"process"`` (real OS processes) or ``"inline"`` (synchronous
        loop, for deterministic tests and scheduling simulations).
    latencies:
        Optional per-device simulated seconds-per-unit (models slow QPUs in
        the work-stealing benchmark; scheduling-only, never part of the
        statistics).
    max_retries:
        Per-unit retry budget for backend faults.
    poll_interval:
        Seconds between liveness sweeps while waiting for results.
    """

    def __init__(
        self,
        circuits: Sequence[QuantumCircuit],
        selected_clbits: Sequence[Sequence[int]],
        backend: SimulatorBackend | str | None = None,
        devices: Sequence[str] | None = None,
        workers: int | None = None,
        mode: str = "process",
        latencies: Mapping[str, float] | None = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        poll_interval: float = 0.05,
    ) -> None:
        if mode not in WORKER_MODES:
            raise DistributedError(
                f"unknown worker mode {mode!r}; expected one of {WORKER_MODES}"
            )
        if workers is not None and workers < 1:
            raise DistributedError(f"workers must be at least 1, got {workers}")
        self._circuits = list(circuits)
        self._selected_clbits = [list(bits) for bits in selected_clbits]
        self._backend = resolve_backend(backend)
        if devices is None:
            count = int(workers) if workers is not None else 1
            devices = [f"worker-{index}" for index in range(count)]
        self._devices = tuple(str(name) for name in devices)
        count = int(workers) if workers is not None else len(self._devices)
        latencies = dict(latencies or {})
        self._handles = [
            _WorkerHandle(
                name=f"w{index}",
                device=self._devices[index % len(self._devices)],
                latency=float(latencies.get(self._devices[index % len(self._devices)], 0.0)),
            )
            for index in range(count)
        ]
        self.mode = mode
        self.max_retries = int(max_retries)
        self.poll_interval = float(poll_interval)
        self._ctx = mp.get_context()
        self._result_queue = None
        self._started = False
        self._closed = False
        #: Units returned to the queue after a worker death.
        self.requeues = 0
        #: Unit retries after backend faults.
        self.retries = 0
        #: Units completed across all rounds.
        self.units_completed = 0

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def num_workers(self) -> int:
        """Number of configured workers (dead ones included)."""
        return len(self._handles)

    @property
    def worker_devices(self) -> tuple[str, ...]:
        """The device each worker serves, in worker order."""
        return tuple(handle.device for handle in self._handles)

    def start(self) -> None:
        """Spawn the worker processes (idempotent; no-op in inline mode)."""
        if self._started or self.mode != "process":
            self._started = True
            return
        self._result_queue = self._ctx.Queue()
        for handle in self._handles:
            handle.inbox = self._ctx.Queue()
            handle.process = self._ctx.Process(
                target=_worker_main,
                args=(
                    handle.name,
                    self._circuits,
                    self._selected_clbits,
                    self._backend,
                    handle.latency,
                    handle.inbox,
                    self._result_queue,
                ),
                name=f"repro-distributed-{handle.name}",
            )
            handle.process.start()
        self._started = True

    def close(self) -> None:
        """Shut the workers down (idempotent; safe after worker deaths)."""
        if self._closed:
            return
        self._closed = True
        if self.mode != "process" or not self._started:
            return
        for handle in self._handles:
            if handle.process is None:
                continue
            if handle.process.is_alive() and handle.inbox is not None:
                try:
                    handle.inbox.put(None)
                except (ValueError, OSError):  # pragma: no cover - closed queue
                    pass
        for handle in self._handles:
            if handle.process is None:
                continue
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - stuck worker
                handle.process.terminate()
                handle.process.join(timeout=1.0)

    def __enter__(self) -> "WorkerPool":
        """Start the pool on context entry."""
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        """Close the pool on context exit."""
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        """Best-effort shutdown for pools dropped without ``close``."""
        try:
            self.close()
        except Exception:
            pass

    # -- round execution ---------------------------------------------------------------

    def run_round(self, round_queue: RoundQueue) -> list[UnitResult]:
        """Drain ``round_queue`` through the workers and return sorted results.

        Results are returned in sorted unit-key order — never arrival
        order — so the caller's merge is independent of scheduling.

        Raises
        ------
        DistributedError
            When every worker died with units outstanding, or a unit
            exhausted its retry budget.
        """
        if self._closed:
            raise DistributedError("the worker pool is closed")
        if self.mode == "inline":
            return self._run_round_inline(round_queue)
        return self._run_round_process(round_queue)

    # -- inline mode -------------------------------------------------------------------

    def _run_round_inline(self, round_queue: RoundQueue) -> list[UnitResult]:
        """Synchronous pull/steal loop: same scheduling, no processes."""
        results: dict[tuple[int, int], UnitResult] = {}
        remaining = set(round_queue.unit_keys())
        retries: dict[tuple[int, int], int] = {}
        while remaining:
            progressed = False
            for handle in self._handles:
                unit = round_queue.next_unit(handle.device)
                if unit is None:
                    continue
                progressed = True
                if handle.latency > 0.0:
                    time.sleep(handle.latency)
                try:
                    result = execute_unit(
                        self._backend,
                        self._circuits,
                        self._selected_clbits,
                        unit,
                        worker=handle.name,
                    )
                except Exception as error:
                    self._count_retry(unit, retries, f"{type(error).__name__}: {error}")
                    round_queue.requeue(unit)
                    continue
                if result.key in remaining:
                    remaining.discard(result.key)
                    results[result.key] = result
                    self.units_completed += 1
                    _UNITS_COMPLETED.inc()
                    self._record_unit_span(result, retries.get(result.key, 0))
            if not progressed and remaining:  # pragma: no cover - defensive
                raise DistributedError(
                    f"round queue drained with {len(remaining)} units outstanding"
                )
        return [results[key] for key in sorted(results)]

    # -- process mode ------------------------------------------------------------------

    def _run_round_process(self, round_queue: RoundQueue) -> list[UnitResult]:
        """Dispatch/collect loop over the worker processes, fault-tolerant."""
        self.start()
        results: dict[tuple[int, int], UnitResult] = {}
        remaining = set(round_queue.unit_keys())
        retries: dict[tuple[int, int], int] = {}
        requeued: dict[tuple[int, int], int] = {}
        self._fill_idle(round_queue)
        while remaining:
            message = self._poll_message(self.poll_interval)
            if message is not None:
                self._handle_message(
                    message, round_queue, remaining, results, retries, requeued
                )
                self._fill_idle(round_queue)
                continue
            # Timed out: sweep for dead workers, recover their units, retry
            # dispatch (a requeue may have made work available to idle
            # survivors).
            self._reap_dead(round_queue, requeued)
            self._fill_idle(round_queue)
            if not self._live_handles():
                # Drain any results that were already in the pipe before the
                # last worker died, then fail if units are still missing.
                while remaining:
                    message = self._poll_message(self.poll_interval)
                    if message is None:
                        break
                    self._handle_message(
                        message, round_queue, remaining, results, retries, requeued
                    )
                if remaining:
                    raise DistributedError(
                        f"all {self.num_workers} workers died with "
                        f"{len(remaining)} units outstanding"
                    )
        return [results[key] for key in sorted(results)]

    def _poll_message(self, timeout: float):
        """Return the next worker message, or ``None`` on timeout."""
        try:
            return self._result_queue.get(timeout=timeout)
        except stdlib_queue.Empty:
            return None

    def _handle_message(
        self,
        message,
        round_queue: RoundQueue,
        remaining: set,
        results: dict,
        retries: dict,
        requeued: dict | None = None,
    ) -> None:
        """Fold one worker message into the coordinator's ledger."""
        requeued = {} if requeued is None else requeued
        kind, worker_name, *payload = message
        handle = next(h for h in self._handles if h.name == worker_name)
        if kind == "ok":
            (result,) = payload
            handle.in_flight = None
            # De-duplicate by key: a worker killed right after reporting may
            # have had its unit conservatively re-executed elsewhere; both
            # results are bitwise identical, keep the first.
            if result.key in remaining:
                remaining.discard(result.key)
                results[result.key] = result
                self.units_completed += 1
                _UNITS_COMPLETED.inc()
                attempts = retries.get(result.key, 0) + requeued.get(result.key, 0)
                self._record_unit_span(result, attempts)
            return
        key, detail = payload
        unit = handle.in_flight
        handle.in_flight = None
        if unit is None or unit.key not in remaining:  # pragma: no cover - defensive
            return
        self._count_retry(unit, retries, detail)
        round_queue.requeue(unit)

    def _count_retry(self, unit: WorkUnit, retries: dict, detail: str) -> None:
        """Bump a unit's retry counter, failing the round when exhausted."""
        retries[unit.key] = retries.get(unit.key, 0) + 1
        self.retries += 1
        _UNIT_RETRIES.inc()
        if retries[unit.key] > self.max_retries:
            raise DistributedError(
                f"unit {unit.key} failed {retries[unit.key]} times "
                f"(max_retries={self.max_retries}); last error: {detail}"
            )

    def _live_handles(self) -> list[_WorkerHandle]:
        """Return the handles whose processes are still alive."""
        return [
            handle
            for handle in self._handles
            if not handle.dead
            and handle.process is not None
            and handle.process.is_alive()
        ]

    def _reap_dead(self, round_queue: RoundQueue, requeued: dict | None = None) -> None:
        """Mark newly dead workers and re-queue their in-flight units."""
        for handle in self._handles:
            if handle.dead or handle.process is None or handle.process.is_alive():
                continue
            handle.dead = True
            if handle.in_flight is not None:
                round_queue.requeue(handle.in_flight)
                if requeued is not None:
                    key = handle.in_flight.key
                    requeued[key] = requeued.get(key, 0) + 1
                handle.in_flight = None
                self.requeues += 1
                _UNIT_REQUEUES.inc()

    @staticmethod
    def _record_unit_span(result: UnitResult, attempts: int) -> None:
        """Synthesise a ``unit`` span from a completed result's telemetry.

        Worker monotonic clocks are not comparable across processes, so the
        span is placed on the coordinator's clock with the worker's measured
        duration: durations are exact, placement is approximate.  ``retry``
        counts every extra attempt the unit needed (backend faults plus
        worker-death requeues); a no-op when no tracer is active or the
        unit carried no trace context.
        """
        if result.trace is None:
            return
        record_span(
            "unit",
            duration=float(result.elapsed),
            parent=result.trace,
            worker=str(result.worker),
            round=int(result.round_index),
            term=int(result.term_index),
            shots=int(result.shots),
            retry=int(attempts),
        )

    def _fill_idle(self, round_queue: RoundQueue) -> None:
        """Mail one unit to every idle live worker (own queue first, then steal)."""
        for handle in self._live_handles():
            if handle.in_flight is not None:
                continue
            unit = round_queue.next_unit(handle.device)
            if unit is None:
                continue
            handle.in_flight = unit
            handle.inbox.put(unit)
