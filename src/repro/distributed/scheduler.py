"""The work-stealing scheduler: apportionment in, per-device queues out.

The :class:`WorkStealingScheduler` converts the fleet's shot apportionment
(the same capacity/fidelity weights behind
:meth:`repro.devices.DeviceFleet.plan_round_shares`) into per-device work
queues.  A round's work units are assigned to home devices by a
deterministic largest-deficit rule — each unit goes to the device whose
share of the round's shots is furthest from its weight target — and the
resulting :class:`~repro.distributed.queue.RoundQueue` lets fast devices
drain slow devices' backlogs at run time via stealing.

Assignment is a pure function of the unit set and the weights: no clock, no
RNG (the ``"random"`` steal policy's RNG lives in the queue and only affects
scheduling).  Together with per-unit seed streams this keeps the merged
round statistics bitwise independent of the device layout.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace

import numpy as np

from repro.exceptions import DeviceError
from repro.distributed.queue import STEAL_POLICIES, RoundQueue
from repro.distributed.units import WorkUnit
from repro.utils.rng import SeedLike

__all__ = ["WorkStealingScheduler"]


class WorkStealingScheduler:
    """Assign work units to per-device queues by weighted largest deficit.

    Parameters
    ----------
    devices:
        Device names, in declaration order.
    weights:
        Per-device throughput weights (positive, same length as
        ``devices``); ``None`` means equal weights.  These are the same
        weights a :class:`~repro.devices.DeviceFleet` split policy
        produces, so ``from_fleet`` builds a scheduler whose static
        assignment mirrors the fleet's shot apportionment.
    steal:
        Steal policy for the queues this scheduler builds; one of
        :data:`~repro.distributed.queue.STEAL_POLICIES`.
    steal_seed:
        Seed for the ``"random"`` policy's scheduling RNG.
    """

    def __init__(
        self,
        devices: Sequence[str],
        weights: Sequence[float] | None = None,
        steal: str = "max-backlog",
        steal_seed: SeedLike = None,
    ) -> None:
        if not devices:
            raise DeviceError("a scheduler needs at least one device")
        if len(set(devices)) != len(devices):
            raise DeviceError(f"duplicate device names in {list(devices)!r}")
        if steal not in STEAL_POLICIES:
            raise DeviceError(
                f"unknown steal policy {steal!r}; expected one of {STEAL_POLICIES}"
            )
        self.devices = tuple(str(name) for name in devices)
        if weights is None:
            weights = [1.0] * len(self.devices)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(self.devices),):
            raise DeviceError(
                f"got {len(self.devices)} devices but weights of shape {weights.shape}"
            )
        if np.any(weights <= 0.0) or weights.sum() <= 0.0:
            raise DeviceError(f"weights must be strictly positive, got {weights.tolist()}")
        self.weights = weights / weights.sum()
        self.steal = steal
        self._steal_seed = steal_seed

    @classmethod
    def for_workers(
        cls, workers: int, steal: str = "max-backlog", steal_seed: SeedLike = None
    ) -> "WorkStealingScheduler":
        """Return an equal-weight scheduler with one synthetic device per worker."""
        if workers < 1:
            raise DeviceError(f"workers must be at least 1, got {workers}")
        return cls(
            [f"worker-{index}" for index in range(int(workers))],
            steal=steal,
            steal_seed=steal_seed,
        )

    @classmethod
    def from_fleet(
        cls, fleet, steal: str = "max-backlog", steal_seed: SeedLike = None
    ) -> "WorkStealingScheduler":
        """Build a scheduler whose targets mirror a fleet's split apportionment.

        Parameters
        ----------
        fleet:
            A :class:`~repro.devices.DeviceFleet` (accepted structurally:
            anything with ``devices`` carrying ``.name`` and a
            ``split_policy.weights`` hook).
        steal:
            Steal policy for the built queues.
        steal_seed:
            Seed for the ``"random"`` policy's scheduling RNG.
        """
        names = [device.name for device in fleet.devices]
        weights = np.asarray(fleet.split_policy.weights(fleet.devices), dtype=float)
        if weights.sum() <= 0.0:
            raise DeviceError(
                f"the {fleet.split_policy.name!r} split policy assigns zero total weight; "
                "no work can be scheduled"
            )
        # Zero-weight devices cannot be queue homes, but largest-deficit
        # assignment already routes nothing to them as long as the weight is
        # merely tiny — clamp instead of dropping so worker affinity survives.
        floor = float(weights[weights > 0.0].min()) * 1e-9
        weights = np.maximum(weights, floor)
        return cls(names, weights=weights, steal=steal, steal_seed=steal_seed)

    # -- assignment --------------------------------------------------------------------

    def assign(self, units: Sequence[WorkUnit]) -> list[WorkUnit]:
        """Return the units with home devices set, by weighted largest deficit.

        Units are visited largest-first (ties broken by unit key), and each
        is homed on the device whose assigned shot total is furthest below
        its weight target — the greedy analogue of the fleet's
        largest-remainder shot apportionment.  The result is a pure
        function of the unit set and the weights.
        """
        total_shots = float(sum(int(unit.shots) for unit in units))
        targets = self.weights * total_shots
        assigned_shots = np.zeros(len(self.devices))
        ordered = sorted(units, key=lambda unit: (-int(unit.shots), unit.key))
        assigned: list[WorkUnit] = []
        for unit in ordered:
            deficits = targets - assigned_shots
            device_index = int(np.argmax(deficits))
            assigned_shots[device_index] += int(unit.shots)
            assigned.append(replace(unit, device=self.devices[device_index]))
        # Preserve the caller's unit order (assignment visited largest-first).
        assigned.sort(key=lambda unit: unit.key)
        return assigned

    def build_queue(self, units: Sequence[WorkUnit]) -> RoundQueue:
        """Assign ``units`` to home devices and load them into a fresh queue."""
        queue = RoundQueue(self.devices, steal=self.steal, steal_seed=self._steal_seed)
        for unit in self.assign(units):
            queue.push(unit)
        return queue
