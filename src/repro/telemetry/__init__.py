"""End-to-end telemetry: span tracing, metrics, and profiling hooks.

This package is the observability layer that cuts across the whole stack —
pipeline stages, adaptive rounds, distributed work units, and the HTTP
service:

:mod:`repro.telemetry.tracing`
    Span-based tracer with trace/span IDs, monotonic timings and structured
    attributes.  Context propagates through :mod:`contextvars` within a
    thread, explicitly (:func:`~repro.telemetry.tracing.activate`) across
    scheduler threads, and as a picklable ``(trace_id, span_id)`` tuple
    inside :class:`~repro.distributed.units.WorkUnit`, so one job yields a
    single connected span tree — submit → plan → decompose → execute →
    rounds → units → reconstruct — persisted as a RunStore artifact and
    rendered by ``repro trace show <fingerprint>``.
:mod:`repro.telemetry.metrics`
    Counters, gauges and fixed-bucket histograms on a process-global
    registry, exposed in Prometheus text format at ``GET /metrics``.
:mod:`repro.telemetry.profiling`
    Opt-in per-stage :mod:`cProfile` capture (``--profile``), persisted as
    a RunStore artifact.

**The hard invariant**: telemetry on vs. off is bitwise identical in every
result and fingerprint.  Spans, metrics and profiles only *observe* — they
never consume RNG state, reorder work, or enter any stage payload.
:func:`stage` combines a span and a profile capture for the pipeline's
stage boundaries.
"""

from contextlib import contextmanager

from repro.telemetry.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.profiling import (
    StageProfiler,
    activate_profiler,
    current_profiler,
    profile_stage,
)
from repro.telemetry.tracing import (
    Span,
    TraceContext,
    Tracer,
    activate,
    current_context,
    current_context_tuple,
    current_tracer,
    find_orphans,
    record_span,
    render_trace,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "StageProfiler",
    "TraceContext",
    "Tracer",
    "activate",
    "activate_profiler",
    "current_context",
    "current_context_tuple",
    "current_profiler",
    "current_tracer",
    "find_orphans",
    "profile_stage",
    "record_span",
    "render_trace",
    "span",
    "stage",
]


@contextmanager
def stage(name: str, **attributes):
    """Mark one pipeline-stage boundary: a span plus a profile capture.

    Both layers are ambient no-ops when inactive, so instrumented stages
    cost two context-variable reads in the telemetry-off path.
    """
    with span(name, **attributes) as span_record:
        with profile_stage(name):
            yield span_record
