"""Opt-in cProfile capture per pipeline stage.

A :class:`StageProfiler` wraps each pipeline stage in a
:class:`cProfile.Profile` and condenses the result into a small
JSON-serializable payload (top functions by cumulative time), which the job
runner persists as a RunStore artifact next to the trace.  Profiling is
strictly opt-in (``--profile``) because the interpreter-level tracing
overhead is far larger than span tracing; like every telemetry layer it
never touches payloads or fingerprints.

The ambient-activation pattern mirrors :mod:`repro.telemetry.tracing`:
instrumented code calls :func:`profile_stage`, which is a no-op unless a
profiler was activated with :func:`activate_profiler`.
"""

from __future__ import annotations

import cProfile
import contextvars
import pstats
import threading
from contextlib import contextmanager

__all__ = [
    "StageProfiler",
    "activate_profiler",
    "current_profiler",
    "profile_stage",
    "render_profile",
]

#: Functions kept per stage in the condensed payload.
DEFAULT_TOP = 20


class StageProfiler:
    """Collects per-stage cProfile captures into one condensed payload.

    Parameters
    ----------
    top:
        Number of functions (by cumulative time) kept per stage.
    """

    def __init__(self, top: int = DEFAULT_TOP):
        self.top = int(top)
        self._lock = threading.Lock()
        self._stages: dict[str, dict] = {}

    @contextmanager
    def stage(self, name: str):
        """Profile one stage; repeated stages accumulate under one key."""
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            self._ingest(str(name), profile)

    def _ingest(self, name: str, profile: cProfile.Profile) -> None:
        stats = pstats.Stats(profile)
        rows = []
        for (filename, lineno, function), (
            primitive_calls,
            total_calls,
            tottime,
            cumtime,
            _callers,
        ) in stats.stats.items():  # type: ignore[attr-defined]
            rows.append(
                {
                    "function": f"{filename}:{lineno}({function})",
                    "calls": int(total_calls),
                    "primitive_calls": int(primitive_calls),
                    "tottime": float(tottime),
                    "cumtime": float(cumtime),
                }
            )
        rows.sort(key=lambda row: row["cumtime"], reverse=True)
        condensed = {
            "total_calls": sum(row["calls"] for row in rows),
            "total_time": float(stats.total_tt),  # type: ignore[attr-defined]
            "top": rows[: self.top],
        }
        with self._lock:
            existing = self._stages.get(name)
            if existing is None:
                self._stages[name] = condensed
            else:
                existing["total_calls"] += condensed["total_calls"]
                existing["total_time"] += condensed["total_time"]
                merged = {row["function"]: row for row in existing["top"]}
                for row in condensed["top"]:
                    slot = merged.get(row["function"])
                    if slot is None:
                        merged[row["function"]] = dict(row)
                    else:
                        for key in ("calls", "primitive_calls", "tottime", "cumtime"):
                            slot[key] += row[key]
                existing["top"] = sorted(
                    merged.values(), key=lambda row: row["cumtime"], reverse=True
                )[: self.top]

    def to_payload(self) -> dict:
        """Return the JSON-serializable per-stage profile summary."""
        with self._lock:
            return {"stages": {name: dict(stage) for name, stage in self._stages.items()}}

    def render(self, lines_per_stage: int = 5) -> str:
        """Return a short human-readable summary (the CLI ``--profile`` output)."""
        return render_profile(self.to_payload(), lines_per_stage=lines_per_stage)


def render_profile(payload: dict, lines_per_stage: int = 5) -> str:
    """Render a stored profile payload (``repro trace show --profile``)."""
    out = []
    for name, stage in payload.get("stages", {}).items():
        out.append(
            f"stage {name}: {stage['total_time']:.4f}s cpu, "
            f"{stage['total_calls']} calls"
        )
        for row in stage["top"][:lines_per_stage]:
            out.append(
                f"  {row['cumtime']:.4f}s cum  {row['tottime']:.4f}s tot  "
                f"{row['calls']:>6}x  {row['function']}"
            )
    return "\n".join(out)


_ACTIVE_PROFILER: contextvars.ContextVar[StageProfiler | None] = contextvars.ContextVar(
    "repro_active_profiler", default=None
)


def current_profiler() -> StageProfiler | None:
    """Return the ambient profiler, or ``None``."""
    return _ACTIVE_PROFILER.get()


@contextmanager
def activate_profiler(profiler: StageProfiler | None):
    """Make ``profiler`` ambient inside the block (``None`` deactivates)."""
    token = _ACTIVE_PROFILER.set(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE_PROFILER.reset(token)


@contextmanager
def profile_stage(name: str):
    """Profile a stage on the ambient profiler; no-op when none is active."""
    profiler = _ACTIVE_PROFILER.get()
    if profiler is None:
        yield
        return
    with profiler.stage(name):
        yield
