"""A minimal metrics registry with Prometheus text exposition.

Three instrument types — :class:`Counter`, :class:`Gauge` and fixed-bucket
:class:`Histogram` — registered on a :class:`MetricsRegistry` and rendered in
the Prometheus text format (``text/plain; version=0.0.4``) by
:meth:`MetricsRegistry.render`, which is what ``GET /metrics`` on the asyncio
job server serves.

The process-global :data:`REGISTRY` is what library instrumentation writes
to: backend cache hits, adaptive round budgets, worker steals/retries, HTTP
request latencies, per-tenant submissions.  Everything is additive
observability — no metric ever feeds back into execution, so results and
fingerprints are bitwise identical with metrics on or off.

Registration is idempotent: asking the registry for an already-registered
name returns the existing instrument (type and labels must match), so
modules can declare their instruments at import time without coordination.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

from repro.exceptions import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram buckets for request/stage latencies, in seconds.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    """Format a sample value (integers without a trailing ``.0``)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _label_string(labelnames: tuple[str, ...], labelvalues: tuple[str, ...]) -> str:
    """Render ``{a="x",b="y"}`` (empty string for unlabeled samples)."""
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + pairs + "}"


class _Instrument:
    """Shared machinery: label handling, locking, sample storage."""

    type_name = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Sequence[str] = ()):
        self.name = str(name)
        self.help = str(help_text)
        self.labelnames = tuple(str(label) for label in labelnames)
        self._lock = threading.Lock()
        self._samples: dict[tuple[str, ...], float] = {}

    def _key(self, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ReproError(
                f"metric {self.name!r} takes labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def value(self, **labels) -> float:
        """Return the current value of one sample (``0.0`` when unseen)."""
        with self._lock:
            return self._samples.get(self._key(labels), 0.0)

    def samples(self) -> list[tuple[tuple[str, ...], float]]:
        """Return ``(labelvalues, value)`` pairs, sorted by label values."""
        with self._lock:
            return sorted(self._samples.items())

    def clear(self) -> None:
        """Drop every sample (registration survives)."""
        with self._lock:
            self._samples.clear()

    def render(self) -> str:
        """Render the instrument in the Prometheus text format."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.type_name}"]
        rendered = self.samples()
        if not rendered and not self.labelnames:
            rendered = [((), 0.0)]
        for labelvalues, value in rendered:
            labels = _label_string(self.labelnames, labelvalues)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return "\n".join(lines)


class Counter(_Instrument):
    """A monotonically increasing value (requests served, cache hits, ...)."""

    type_name = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (must be non-negative) to the labeled sample."""
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (got {amount})")
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + float(amount)


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, subscriber count, ...)."""

    type_name = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labeled sample to ``value``."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` to the labeled sample."""
        key = self._key(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + float(amount)

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from the labeled sample."""
        self.inc(-amount, **labels)


class Histogram(_Instrument):
    """Fixed-bucket distribution of observations (latencies, round budgets).

    Buckets are cumulative upper bounds, as in Prometheus; a terminal
    ``+Inf`` bucket is implicit.  ``observe`` is O(#buckets) with one lock
    acquisition, cheap enough for per-request instrumentation.
    """

    type_name = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ReproError(f"histogram {name!r} needs sorted, non-empty buckets")
        self.buckets = bounds
        # per label key: [bucket counts..., +Inf count, sum]
        self._hist: dict[tuple[str, ...], list[float]] = {}

    def clear(self) -> None:
        """Drop every sample (registration survives)."""
        with self._lock:
            self._samples.clear()
            self._hist.clear()

    def observe(self, value: float, **labels) -> None:
        """Record one observation."""
        key = self._key(labels)
        amount = float(value)
        with self._lock:
            row = self._hist.get(key)
            if row is None:
                row = [0.0] * (len(self.buckets) + 2)
                self._hist[key] = row
            for index, bound in enumerate(self.buckets):
                if amount <= bound:
                    row[index] += 1.0
            row[len(self.buckets)] += 1.0  # +Inf / count
            row[len(self.buckets) + 1] += amount  # sum
            self._samples[key] = row[len(self.buckets)]

    def count(self, **labels) -> float:
        """Return the number of observations of one labeled sample."""
        with self._lock:
            row = self._hist.get(self._key(labels))
            return 0.0 if row is None else row[len(self.buckets)]

    def sum(self, **labels) -> float:
        """Return the sum of observations of one labeled sample."""
        with self._lock:
            row = self._hist.get(self._key(labels))
            return 0.0 if row is None else row[len(self.buckets) + 1]

    def render(self) -> str:
        """Render buckets, sum and count in the Prometheus text format."""
        lines = [f"# HELP {self.name} {self.help}", f"# TYPE {self.name} {self.type_name}"]
        with self._lock:
            rows = sorted(self._hist.items())
        for labelvalues, row in rows:
            for index, bound in enumerate(self.buckets):
                labels = _label_string(
                    self.labelnames + ("le",), labelvalues + (_format_value(bound),)
                )
                lines.append(f"{self.name}_bucket{labels} {_format_value(row[index])}")
            inf_labels = _label_string(self.labelnames + ("le",), labelvalues + ("+Inf",))
            lines.append(f"{self.name}_bucket{inf_labels} {_format_value(row[len(self.buckets)])}")
            plain = _label_string(self.labelnames, labelvalues)
            lines.append(f"{self.name}_sum{plain} {_format_value(row[len(self.buckets) + 1])}")
            lines.append(f"{self.name}_count{plain} {_format_value(row[len(self.buckets)])}")
        return "\n".join(lines)


class MetricsRegistry:
    """A named collection of instruments with idempotent registration."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help_text: str, labelnames, **kwargs):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != tuple(labelnames):
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help_text, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Counter:
        """Register (or fetch) a counter."""
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Sequence[str] = ()) -> Gauge:
        """Register (or fetch) a gauge."""
        return self._register(Gauge, name, help_text, labelnames)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a fixed-bucket histogram."""
        return self._register(Histogram, name, help_text, labelnames, buckets=buckets)

    def get(self, name: str) -> _Instrument | None:
        """Return a registered instrument by name, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def render(self) -> str:
        """Render every instrument in the Prometheus text exposition format."""
        with self._lock:
            instruments = [self._instruments[name] for name in sorted(self._instruments)]
        blocks = [instrument.render() for instrument in instruments]
        return "\n".join(blocks) + ("\n" if blocks else "")

    def reset(self) -> None:
        """Clear every instrument's samples, keeping registrations intact.

        A test-isolation helper: module-level instrument handles held by
        library code stay registered and keep rendering, only the recorded
        values are dropped.
        """
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.clear()


#: The process-global registry all library instrumentation writes to.
REGISTRY = MetricsRegistry()
