"""Span-based tracing: trace/span IDs, monotonic timings, context propagation.

A :class:`Tracer` collects :class:`Span` records for one logical operation
(typically one job).  Spans carry a trace ID shared by the whole tree, a
per-span ID, the parent span ID and structured attributes; timings come from
:func:`time.monotonic` and **never** enter any stage payload or fingerprint —
telemetry on and telemetry off are bitwise identical in every result (the
library's hard invariant, asserted in ``tests/telemetry``).

Context propagation
-------------------
The active tracer and the current span travel in :mod:`contextvars`, so
nested :func:`span` calls parent correctly within a thread or asyncio task.
Crossing an explicit boundary is always *explicit*:

* scheduler worker threads re-enter with :func:`activate` using the
  ``(tracer, context)`` captured at submission,
* :class:`~repro.distributed.units.WorkUnit` carries the current context as
  a picklable ``(trace_id, span_id)`` tuple (see
  :func:`current_context_tuple`), so a unit executed by *any* worker
  process reports back under the submitting trace — even after a SIGKILL
  retry on a different worker,
* synthesized spans (e.g. a unit completion observed by the coordinator)
  are recorded with :func:`record_span` against such a tuple.

When no tracer is active every helper is a cheap no-op, so instrumented
library code pays almost nothing in the telemetry-off path.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "activate",
    "current_context",
    "current_context_tuple",
    "current_tracer",
    "record_span",
    "render_trace",
    "span",
]


@dataclass(frozen=True)
class TraceContext:
    """The picklable position inside one trace: ``(trace_id, span_id)``."""

    trace_id: str
    span_id: str

    def as_tuple(self) -> tuple[str, str]:
        """Return the plain-tuple form (what work units pickle)."""
        return (self.trace_id, self.span_id)


@dataclass
class Span:
    """One timed operation inside a trace.

    Attributes
    ----------
    trace_id:
        Identifier shared by every span of the tree.
    span_id:
        This span's identifier (unique within the trace).
    parent_id:
        The enclosing span's ID, or ``None`` for the root.
    name:
        Operation name (``"plan"``, ``"round"``, ``"unit"``, ...).
    start / end:
        :func:`time.monotonic` readings relative to the tracer's origin;
        ``end`` is ``None`` while the span is open.
    attributes:
        Structured JSON-serializable annotations (never timings-derived
        payload data).
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds between start and end (``0.0`` while the span is open)."""
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def set(self, **attributes) -> "Span":
        """Merge attributes into the span; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_payload(self) -> dict:
        """Return the JSON-serializable form."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": float(self.start),
            "end": None if self.end is None else float(self.end),
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Span":
        """Rebuild a span from its payload form."""
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=payload.get("parent_id"),
            name=str(payload["name"]),
            start=float(payload["start"]),
            end=None if payload.get("end") is None else float(payload["end"]),
            attributes=dict(payload.get("attributes", {})),
        )


class _NullSpan:
    """The no-op span yielded when no tracer is active."""

    __slots__ = ()

    attributes: dict = {}

    def set(self, **attributes) -> "_NullSpan":
        """Ignore the attributes (telemetry is off)."""
        return self


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects the spans of one trace; thread-safe.

    Parameters
    ----------
    trace_id:
        Identifier shared by every span; a job's content fingerprint when
        traced by the service (so ``repro trace show <fingerprint>`` finds
        it), a random UUID otherwise.
    """

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0

    # -- span lifecycle ----------------------------------------------------------------

    def _new_span_id(self) -> str:
        with self._lock:
            self._next_id += 1
            return f"s{self._next_id:04d}"

    def start_span(
        self,
        name: str,
        parent: TraceContext | tuple[str, str] | None = None,
        attributes: dict | None = None,
    ) -> Span:
        """Open a span under ``parent`` (or the root when ``None``)."""
        parent_id = None
        if parent is not None:
            parent_id = parent.span_id if isinstance(parent, TraceContext) else str(parent[1])
        span_record = Span(
            trace_id=self.trace_id,
            span_id=self._new_span_id(),
            parent_id=parent_id,
            name=str(name),
            start=time.monotonic(),
            attributes=dict(attributes or {}),
        )
        with self._lock:
            self._spans.append(span_record)
        return span_record

    def end_span(self, span_record: Span) -> None:
        """Close a span (idempotent)."""
        if span_record.end is None:
            span_record.end = time.monotonic()

    def record_span(
        self,
        name: str,
        duration: float,
        parent: TraceContext | tuple[str, str] | None = None,
        attributes: dict | None = None,
    ) -> Span:
        """Record an already-finished span of known ``duration`` seconds.

        Used for operations measured elsewhere (a worker process timing its
        own unit execution) and reported after the fact: the span is placed
        ending *now*, starting ``duration`` seconds earlier.  Cross-process
        monotonic clocks are not comparable, so the placement is
        approximate; the duration itself is exact.
        """
        end = time.monotonic()
        span_record = self.start_span(name, parent=parent, attributes=attributes)
        span_record.start = end - max(0.0, float(duration))
        span_record.end = end
        return span_record

    @contextmanager
    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        attributes: dict | None = None,
    ):
        """Open a span, activate it as the current context, close on exit."""
        span_record = self.start_span(
            name, parent=parent if parent is not None else current_context(), attributes=attributes
        )
        context = TraceContext(self.trace_id, span_record.span_id)
        token = _ACTIVE_CONTEXT.set(context)
        try:
            yield span_record
        finally:
            _ACTIVE_CONTEXT.reset(token)
            self.end_span(span_record)

    # -- export ------------------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """A snapshot of the recorded spans, in creation order."""
        with self._lock:
            return list(self._spans)

    def to_payload(self) -> dict:
        """Return the JSON-serializable trace (what the RunStore persists)."""
        return {
            "trace_id": self.trace_id,
            "spans": [span_record.to_payload() for span_record in self.spans],
        }

    def export_jsonl(self) -> str:
        """Return the trace as JSON-lines text, one span per line."""
        return "\n".join(
            json.dumps(span_record.to_payload(), sort_keys=True) for span_record in self.spans
        )

    def is_connected(self) -> bool:
        """True when every non-root span's parent exists (no orphan spans)."""
        return not find_orphans(self.to_payload())


# -- ambient context --------------------------------------------------------------------

_ACTIVE_TRACER: contextvars.ContextVar[Tracer | None] = contextvars.ContextVar(
    "repro_active_tracer", default=None
)
_ACTIVE_CONTEXT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_active_trace_context", default=None
)


def current_tracer() -> Tracer | None:
    """Return the tracer active in this thread/task, or ``None``."""
    return _ACTIVE_TRACER.get()


def current_context() -> TraceContext | None:
    """Return the current span position, or ``None`` outside any span."""
    return _ACTIVE_CONTEXT.get()


def current_context_tuple() -> tuple[str, str] | None:
    """Return the current position as a picklable tuple (for work units)."""
    context = _ACTIVE_CONTEXT.get()
    return None if context is None else context.as_tuple()


@contextmanager
def activate(tracer: Tracer | None, context: TraceContext | None = None):
    """Make ``tracer`` (and optionally a parent ``context``) ambient.

    The entry point for every explicit boundary crossing: scheduler worker
    threads, process-mode job workers, and tests.  ``None`` deactivates
    tracing inside the block.
    """
    tracer_token = _ACTIVE_TRACER.set(tracer)
    context_token = _ACTIVE_CONTEXT.set(context)
    try:
        yield tracer
    finally:
        _ACTIVE_CONTEXT.reset(context_token)
        _ACTIVE_TRACER.reset(tracer_token)


@contextmanager
def span(name: str, **attributes):
    """Open a span on the ambient tracer; a cheap no-op when none is active."""
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        yield _NULL_SPAN
        return
    with tracer.span(name, attributes=attributes or None) as span_record:
        yield span_record


def record_span(
    name: str,
    duration: float,
    parent: tuple[str, str] | TraceContext | None = None,
    **attributes,
) -> None:
    """Record a finished span on the ambient tracer; no-op when none is active.

    ``parent`` may be the picklable ``(trace_id, span_id)`` tuple a work
    unit carried across process boundaries; ``None`` parents the span under
    the current context.
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return
    if parent is None:
        parent = current_context()
    tracer.record_span(name, duration, parent=parent, attributes=attributes or None)


# -- tree rendering ---------------------------------------------------------------------


def find_orphans(payload: dict) -> list[dict]:
    """Return the span payloads whose parent ID is missing from the trace."""
    spans = list(payload.get("spans", ()))
    known = {entry["span_id"] for entry in spans}
    return [
        entry
        for entry in spans
        if entry.get("parent_id") is not None and entry["parent_id"] not in known
    ]


def render_trace(payload: dict) -> str:
    """Render a persisted trace payload as an indented tree with self-times.

    Each line shows the span name, its wall time, its *self* time (wall time
    minus the wall time of its direct children) and the attributes.  Orphan
    spans — parents missing from the trace — are listed under a separate
    heading so a disconnected tree is immediately visible.
    """
    spans = [dict(entry) for entry in payload.get("spans", ())]
    known = {entry["span_id"] for entry in spans}
    children: dict[str | None, list[dict]] = {}
    for entry in spans:
        parent = entry.get("parent_id")
        key = parent if parent in known else None if parent is None else "__orphan__"
        children.setdefault(key, []).append(entry)
    for siblings in children.values():
        siblings.sort(key=lambda entry: entry["start"])

    def wall(entry: dict) -> float:
        if entry.get("end") is None:
            return 0.0
        return max(0.0, entry["end"] - entry["start"])

    def self_time(entry: dict) -> float:
        direct = children.get(entry["span_id"], ())
        return max(0.0, wall(entry) - sum(wall(child) for child in direct))

    lines = [f"trace {payload.get('trace_id', '?')}"]

    def emit(entry: dict, depth: int) -> None:
        attributes = entry.get("attributes") or {}
        suffix = ""
        if attributes:
            rendered = ", ".join(f"{key}={value}" for key, value in sorted(attributes.items()))
            suffix = f"  [{rendered}]"
        lines.append(
            f"{'  ' * depth}{entry['name']}  "
            f"wall={wall(entry) * 1e3:.1f}ms self={self_time(entry) * 1e3:.1f}ms{suffix}"
        )
        for child in children.get(entry["span_id"], ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 1)
    orphans = children.get("__orphan__", ())
    if orphans:
        lines.append("  (orphan spans — parent missing from trace)")
        for entry in orphans:
            emit(entry, 2)
    return "\n".join(lines)
