"""repro — reproduction of *Cutting a Wire with Non-Maximally Entangled States*.

The package provides:

* :mod:`repro.quantum` — quantum-information substrate (states, gates,
  channels, entanglement measures, NME resource states),
* :mod:`repro.circuits` — a circuit IR plus statevector, density-matrix and
  shot-based simulators (the Qiskit Aer replacement),
* :mod:`repro.qpd` — quasiprobability decompositions and Monte-Carlo
  estimators,
* :mod:`repro.teleport` — quantum teleportation with arbitrary resource states,
* :mod:`repro.cutting` — wire-cutting protocols, including the paper's NME
  wire cut (Theorem 2), plus baselines and extensions,
* :mod:`repro.devices` — noisy virtual devices and the shot-wise
  :class:`~repro.devices.DeviceFleet` scheduler distributing cut circuits
  across heterogeneous (noisy, width-limited) backends,
* :mod:`repro.pipeline` — the :class:`~repro.pipeline.CutPipeline`
  orchestration layer running plan → decompose → execute → reconstruct for
  multi-cut workloads,
* :mod:`repro.distributed` — distributed adaptive-round execution: a
  work-unit queue, a multi-process work-stealing worker pool and a
  coordinator merging mergeable per-term statistics, bitwise identical to
  in-process execution,
* :mod:`repro.experiments` — the workloads and sweeps regenerating the
  paper's evaluation (Figure 6 and the analytic overhead relations).

Quickstart
----------
>>> from repro import cut_expectation_value, NMEWireCut
>>> from repro.quantum import random_statevector
>>> state = random_statevector(1, seed=7)
>>> protocol = NMEWireCut.from_overlap(0.9)
>>> result = cut_expectation_value(state, protocol, shots=4000, seed=11)
>>> abs(result.value - state.expectation_value([[1, 0], [0, -1]]).real) < 0.2
True
"""

from repro._version import __version__
from repro.cutting import (
    HaradaWireCut,
    NMEWireCut,
    PengWireCut,
    TeleportationWireCut,
    cut_expectation_value,
    nme_overhead,
    optimal_overhead,
)
from repro.pipeline import CutPipeline
from repro.quantum import DensityMatrix, Statevector

__all__ = [
    "__version__",
    "Statevector",
    "DensityMatrix",
    "NMEWireCut",
    "HaradaWireCut",
    "PengWireCut",
    "TeleportationWireCut",
    "CutPipeline",
    "cut_expectation_value",
    "optimal_overhead",
    "nme_overhead",
]
