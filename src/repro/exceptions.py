"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by the library derives from
:class:`ReproError` so downstream users can catch library failures with a
single ``except`` clause while still distinguishing programmer errors
(``TypeError``/``ValueError`` raised by NumPy itself) from domain errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DimensionError",
    "StateError",
    "GateError",
    "CircuitError",
    "SimulationError",
    "ChannelError",
    "DecompositionError",
    "CuttingError",
    "DeviceError",
    "DistributedError",
    "ExperimentError",
    "ServiceError",
    "ServiceBusyError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DimensionError(ReproError):
    """A linear-algebra object has an incompatible or non-power-of-two dimension."""


class StateError(ReproError):
    """A quantum state is malformed (not normalised, not PSD, wrong trace, ...)."""


class GateError(ReproError):
    """A gate definition is invalid (non-unitary matrix, unknown label, bad arity)."""


class CircuitError(ReproError):
    """A circuit is malformed (qubit index out of range, bad instruction, ...)."""


class SimulationError(ReproError):
    """A simulator could not execute a circuit."""


class ChannelError(ReproError):
    """A quantum channel specification is invalid (non-CP, non-TP when required, ...)."""


class DecompositionError(ReproError):
    """A quasiprobability decomposition is invalid or does not match its target."""


class CuttingError(ReproError):
    """A wire/gate cut could not be constructed or applied."""


class DeviceError(ReproError):
    """A virtual-device or fleet specification is invalid or cannot serve a circuit."""


class DistributedError(ReproError):
    """Distributed round execution failed (worker pool died, retries exhausted, ...)."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid."""


class ServiceError(ReproError):
    """A job-service request failed (bad job spec, unknown job, store corruption, ...)."""


class ServiceBusyError(ServiceError):
    """The service temporarily refused a request (rate limit, quota, drain).

    Attributes
    ----------
    retry_after:
        Seconds the client should wait before retrying (the HTTP
        ``Retry-After`` header value).
    status:
        The HTTP status to report: ``429`` for rate limits and quotas,
        ``503`` while the service drains for shutdown.
    """

    def __init__(self, message: str, retry_after: float = 1.0, status: int = 503):
        super().__init__(message)
        self.retry_after = float(retry_after)
        self.status = int(status)
