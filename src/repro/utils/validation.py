"""Argument-validation helpers.

These raise the library's own exception types with actionable messages so
that user-facing API entry points fail fast and clearly.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CuttingError, DimensionError

__all__ = [
    "check_square_matrix",
    "check_vector",
    "check_probability",
    "check_integer_in_range",
    "validate_positive_count",
    "validate_positive_float",
]


def check_square_matrix(matrix: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Return ``matrix`` as a complex 2-D square array or raise :class:`DimensionError`."""
    array = np.asarray(matrix, dtype=complex)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise DimensionError(f"{name} must be a square 2-D array, got shape {array.shape}")
    return array


def check_vector(vector: np.ndarray, name: str = "vector") -> np.ndarray:
    """Return ``vector`` as a complex 1-D array or raise :class:`DimensionError`."""
    array = np.asarray(vector, dtype=complex)
    if array.ndim != 1:
        raise DimensionError(f"{name} must be a 1-D array, got shape {array.shape}")
    return array


def check_probability(value: float, name: str = "probability", atol: float = 1e-9) -> float:
    """Return ``value`` if it lies in [0, 1] (within ``atol``), else raise ``ValueError``."""
    value = float(value)
    if value < -atol or value > 1.0 + atol:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return min(max(value, 0.0), 1.0)


def check_integer_in_range(
    value: int,
    low: int | None = None,
    high: int | None = None,
    name: str = "value",
) -> int:
    """Return ``value`` as an int if it lies in ``[low, high]`` (inclusive bounds)."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if low is not None and value < low:
        raise ValueError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise ValueError(f"{name} must be <= {high}, got {value}")
    return value


def validate_positive_count(value, name: str = "count") -> int:
    """Return ``value`` as a strictly positive int or raise :class:`CuttingError`.

    The boundary check for user-supplied budgets (``--shots``) and pool sizes
    (``--workers``): zero and negative values are rejected with an actionable
    message at the CLI and service entry points, mirroring
    :func:`repro.cutting.noise.validate_noise_strength`.
    """
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise CuttingError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 1:
        raise CuttingError(f"{name} must be a positive integer, got {value}")
    return value


def validate_positive_float(value, name: str = "value") -> float:
    """Return ``value`` as a strictly positive, finite float or raise :class:`CuttingError`.

    The boundary check for user-supplied tolerances (``--target-error``):
    zero, negative, non-finite and non-numeric values are rejected with an
    actionable message at the CLI and service entry points, mirroring
    :func:`validate_positive_count`.
    """
    if isinstance(value, bool) or not isinstance(value, (int, float, np.integer, np.floating)):
        raise CuttingError(f"{name} must be a number, got {value!r}")
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise CuttingError(f"{name} must be a positive finite number, got {value}")
    return value
