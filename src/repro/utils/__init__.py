"""Low-level numerical utilities shared across the library.

The submodules are intentionally dependency-free (NumPy/SciPy only) and are
safe to import from anywhere inside :mod:`repro` without creating import
cycles.

Modules
-------
linalg
    Tensor products, dagger, projectors, matrix predicates and basis helpers.
rng
    Deterministic random-number-generator plumbing used by every stochastic
    component (simulators, samplers, workload generators).
validation
    Argument checking helpers that raise the library's exception types.
"""

from repro.utils.linalg import (
    dagger,
    is_density_matrix,
    is_hermitian,
    is_power_of_two,
    is_projector,
    is_psd,
    is_statevector,
    is_unitary,
    ket,
    bra,
    kron_all,
    num_qubits_from_dim,
    outer,
    projector,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_integer_in_range,
    check_probability,
    check_square_matrix,
    check_vector,
)

__all__ = [
    "dagger",
    "is_density_matrix",
    "is_hermitian",
    "is_power_of_two",
    "is_projector",
    "is_psd",
    "is_statevector",
    "is_unitary",
    "ket",
    "bra",
    "kron_all",
    "num_qubits_from_dim",
    "outer",
    "projector",
    "as_generator",
    "spawn_generators",
    "check_integer_in_range",
    "check_probability",
    "check_square_matrix",
    "check_vector",
]
