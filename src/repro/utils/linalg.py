"""Linear-algebra helpers used throughout the library.

All functions operate on plain ``numpy.ndarray`` objects with ``complex128``
dtype and avoid unnecessary copies (views are returned where safe), following
the NumPy performance guidance of preferring vectorised expressions and
in-place work over Python-level loops.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import DimensionError

__all__ = [
    "ATOL_DEFAULT",
    "dagger",
    "outer",
    "ket",
    "bra",
    "projector",
    "kron_all",
    "is_power_of_two",
    "num_qubits_from_dim",
    "is_hermitian",
    "is_unitary",
    "is_psd",
    "is_projector",
    "is_statevector",
    "is_density_matrix",
    "normalize_vector",
    "basis_state",
    "expand_operator",
]

#: Default absolute tolerance for all floating-point predicates in the library.
ATOL_DEFAULT: float = 1e-10


def dagger(matrix: np.ndarray) -> np.ndarray:
    """Return the conjugate transpose of ``matrix``.

    Parameters
    ----------
    matrix:
        Any 1-D or 2-D complex array.  For a 1-D array (a ket) the result is
        the corresponding bra as a 1-D conjugated array.
    """
    array = np.asarray(matrix)
    if array.ndim == 1:
        return array.conj()
    return array.conj().T


def outer(left: np.ndarray, right: np.ndarray | None = None) -> np.ndarray:
    """Return the outer product ``|left><right|``.

    When ``right`` is omitted the projector ``|left><left|`` is returned.
    """
    left = np.asarray(left, dtype=complex).ravel()
    right = left if right is None else np.asarray(right, dtype=complex).ravel()
    return np.outer(left, right.conj())


def ket(bitstring: str | int, num_qubits: int | None = None) -> np.ndarray:
    """Return the computational-basis ket for ``bitstring``.

    Parameters
    ----------
    bitstring:
        Either a string such as ``"010"`` or an integer basis index.  When an
        integer is given, ``num_qubits`` must be provided.
    num_qubits:
        Number of qubits; inferred from the string length when a string is
        given.

    Returns
    -------
    numpy.ndarray
        A complex vector of length ``2**num_qubits`` with a single unit entry.
    """
    if isinstance(bitstring, str):
        if bitstring and set(bitstring) - {"0", "1"}:
            raise ValueError(f"bitstring must contain only 0/1, got {bitstring!r}")
        n = len(bitstring)
        index = int(bitstring, 2) if bitstring else 0
    else:
        if num_qubits is None:
            raise ValueError("num_qubits is required when an integer index is given")
        n = num_qubits
        index = int(bitstring)
    if num_qubits is not None and isinstance(bitstring, str) and num_qubits != n:
        raise DimensionError(f"bitstring length {n} does not match num_qubits {num_qubits}")
    dim = 2**n
    if not 0 <= index < dim:
        raise DimensionError(f"basis index {index} out of range for {n} qubits")
    vec = np.zeros(dim, dtype=complex)
    vec[index] = 1.0
    return vec


def bra(bitstring: str | int, num_qubits: int | None = None) -> np.ndarray:
    """Return the computational-basis bra (conjugated row vector) for ``bitstring``."""
    return ket(bitstring, num_qubits).conj()


def basis_state(index: int, dim: int) -> np.ndarray:
    """Return the ``index``-th standard basis vector of dimension ``dim``."""
    if not 0 <= index < dim:
        raise DimensionError(f"basis index {index} out of range for dimension {dim}")
    vec = np.zeros(dim, dtype=complex)
    vec[index] = 1.0
    return vec


def projector(state: np.ndarray) -> np.ndarray:
    """Return the rank-1 projector ``|state><state|`` for a (normalised) ket."""
    return outer(state)


def kron_all(matrices: Iterable[np.ndarray]) -> np.ndarray:
    """Return the Kronecker product of the given matrices, in order.

    ``kron_all([A, B, C])`` computes ``A ⊗ B ⊗ C``.  An empty iterable returns
    the 1×1 identity so the function can be used as a fold seed.
    """
    result: np.ndarray | None = None
    for matrix in matrices:
        matrix = np.asarray(matrix, dtype=complex)
        result = matrix if result is None else np.kron(result, matrix)
    if result is None:
        return np.array([[1.0 + 0.0j]])
    return result


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def num_qubits_from_dim(dim: int) -> int:
    """Return ``log2(dim)`` checking the dimension is a power of two."""
    if not is_power_of_two(dim):
        raise DimensionError(f"dimension {dim} is not a power of two")
    return int(dim).bit_length() - 1


def is_hermitian(matrix: np.ndarray, atol: float = ATOL_DEFAULT) -> bool:
    """Return True when ``matrix`` equals its conjugate transpose within ``atol``."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    return bool(np.allclose(matrix, matrix.conj().T, atol=atol))


def is_unitary(matrix: np.ndarray, atol: float = ATOL_DEFAULT) -> bool:
    """Return True when ``matrix`` is unitary within ``atol``."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    identity = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix @ matrix.conj().T, identity, atol=atol))


def is_psd(matrix: np.ndarray, atol: float = ATOL_DEFAULT) -> bool:
    """Return True when ``matrix`` is Hermitian positive semidefinite within ``atol``."""
    if not is_hermitian(matrix, atol=atol):
        return False
    eigenvalues = np.linalg.eigvalsh(np.asarray(matrix, dtype=complex))
    return bool(np.all(eigenvalues >= -atol))


def is_projector(matrix: np.ndarray, atol: float = ATOL_DEFAULT) -> bool:
    """Return True when ``matrix`` is an orthogonal projector (Hermitian, idempotent)."""
    matrix = np.asarray(matrix, dtype=complex)
    return is_hermitian(matrix, atol=atol) and bool(np.allclose(matrix @ matrix, matrix, atol=atol))


def is_statevector(vector: np.ndarray, atol: float = ATOL_DEFAULT) -> bool:
    """Return True when ``vector`` is a normalised complex vector of power-of-two length."""
    vector = np.asarray(vector)
    if vector.ndim != 1 or not is_power_of_two(vector.shape[0]):
        return False
    return bool(abs(np.vdot(vector, vector).real - 1.0) <= atol)


def is_density_matrix(matrix: np.ndarray, atol: float = ATOL_DEFAULT) -> bool:
    """Return True when ``matrix`` is a valid density operator (PSD, unit trace)."""
    matrix = np.asarray(matrix, dtype=complex)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if not is_power_of_two(matrix.shape[0]):
        return False
    if abs(np.trace(matrix).real - 1.0) > atol or abs(np.trace(matrix).imag) > atol:
        return False
    return is_psd(matrix, atol=atol)


def normalize_vector(vector: np.ndarray) -> np.ndarray:
    """Return ``vector`` scaled to unit 2-norm.

    Raises
    ------
    DimensionError
        If the vector has (numerically) zero norm.
    """
    vector = np.asarray(vector, dtype=complex)
    norm = np.linalg.norm(vector)
    if norm < ATOL_DEFAULT:
        raise DimensionError("cannot normalise a zero vector")
    return vector / norm


def expand_operator(
    operator: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Embed ``operator`` acting on ``qubits`` into an ``num_qubits``-qubit operator.

    The qubit ordering convention is big-endian: qubit 0 is the most
    significant tensor factor (leftmost in a ket label ``|q0 q1 ... q_{n-1}>``).
    ``qubits`` lists the circuit qubits the operator acts on, in the order of
    the operator's own tensor factors.

    This is an O(4^n) dense construction intended for small verification
    work; the simulators use reshaped tensor contractions instead.
    """
    operator = np.asarray(operator, dtype=complex)
    k = len(qubits)
    if operator.shape != (2**k, 2**k):
        raise DimensionError(
            f"operator shape {operator.shape} does not match {k} target qubits"
        )
    if len(set(qubits)) != k:
        raise DimensionError(f"duplicate qubits in {qubits}")
    if any(q < 0 or q >= num_qubits for q in qubits):
        raise DimensionError(f"qubit indices {qubits} out of range for {num_qubits} qubits")

    # Build by reshaping into a 2n-dimensional tensor and permuting axes.
    op_tensor = operator.reshape([2] * (2 * k))
    identity = np.eye(2 ** (num_qubits - k), dtype=complex)
    id_tensor = identity.reshape([2] * (2 * (num_qubits - k)))
    # Full operator acting on (qubits..., rest...) in that order.
    full = np.tensordot(op_tensor, id_tensor, axes=0)
    # Axes of `full`: first k row-axes for `qubits`, k col-axes for `qubits`,
    # then (n-k) row-axes for the rest, (n-k) col-axes for the rest.
    rest = [q for q in range(num_qubits) if q not in qubits]
    order = list(qubits) + rest
    # Current row-axis positions in `full` for the qubit order `order`:
    row_axes = list(range(k)) + list(range(2 * k, 2 * k + (num_qubits - k)))
    col_axes = list(range(k, 2 * k)) + list(
        range(2 * k + (num_qubits - k), 2 * (num_qubits))
    )
    # We need the permutation that sorts `order` into 0..n-1.
    perm = np.argsort(order)
    new_row_axes = [row_axes[p] for p in perm]
    new_col_axes = [col_axes[p] for p in perm]
    full = np.transpose(full, axes=new_row_axes + new_col_axes)
    dim = 2**num_qubits
    return full.reshape(dim, dim)
