"""Deterministic random-number-generator plumbing.

Every stochastic component of the library (shot simulator, QPD sampler,
workload generators, benchmark harness) accepts a ``seed`` argument that is
converted into a :class:`numpy.random.Generator` by :func:`as_generator`.
Passing an existing generator threads the same stream through nested
components, which keeps full experiments reproducible end-to-end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator", "spawn_generators", "spawn_seed_sequences", "SeedLike"]

#: Types accepted wherever a seed is expected.
SeedLike = int | np.random.Generator | np.random.SeedSequence | None


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    * ``None`` → a fresh OS-entropy generator,
    * an ``int`` or :class:`numpy.random.SeedSequence` → a seeded PCG64 generator,
    * an existing :class:`numpy.random.Generator` → returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Return ``count`` independent child :class:`~numpy.random.SeedSequence` objects.

    This is the picklable form of :func:`spawn_generators`: execution backends
    ship these to worker processes (or consume them in-process) so that every
    circuit in a batch is sampled from the same per-circuit stream no matter
    which backend, chunking or evaluation order is used.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator to preserve determinism.
        root = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return list(root.spawn(count))


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Return ``count`` statistically independent child generators.

    Independent streams are required when workload items are evaluated in an
    order-independent way (e.g. parameter sweeps) so that reordering the sweep
    does not change per-item results.
    """
    return [np.random.default_rng(child) for child in spawn_seed_sequences(seed, count)]
