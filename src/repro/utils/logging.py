"""Shared logging setup for the CLI, tools and service front-ends.

Everything user-facing that is *progress*, not *output*, goes through one
``repro`` logger hierarchy configured here, so diagnostics interleave
cleanly with span traces and can be switched to structured JSON for log
aggregation (``--json-logs``).  Data output — result tables, JSON payloads
— stays on stdout.

``configure_logging`` is idempotent per process: repeated calls reconfigure
the handler in place (the CLI calls it once per invocation), and libraries
calling :func:`get_logger` before configuration inherit the standard
``lastResort`` behaviour instead of crashing.
"""

from __future__ import annotations

import json
import logging
import sys

__all__ = ["configure_logging", "get_logger", "LOG_LEVELS"]

#: Accepted ``--log-level`` values, mapped onto the stdlib levels.
LOG_LEVELS = ("debug", "info", "warning", "error")

_HANDLER_NAME = "repro-cli"


class JsonFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message."""

    def format(self, record: logging.LogRecord) -> str:
        """Render the record as a single-line JSON object."""
        entry = {
            "ts": self.formatTime(record, datefmt="%Y-%m-%dT%H:%M:%S%z"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        if record.exc_info:
            entry["exception"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True)


def configure_logging(
    level: str = "info",
    json_logs: bool = False,
    stream=None,
) -> logging.Logger:
    """Configure the ``repro`` logger hierarchy; return its root.

    Parameters
    ----------
    level:
        One of :data:`LOG_LEVELS` (case-insensitive).
    json_logs:
        Emit one JSON object per record instead of the human-readable line
        format.
    stream:
        Output stream; defaults to ``sys.stderr`` so logs never mix with
        data output on stdout.

    Raises
    ------
    ValueError
        For an unknown ``level``.
    """
    name = str(level).lower()
    if name not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; expected one of {LOG_LEVELS}")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, name.upper()))
    handler = None
    for existing in logger.handlers:
        if existing.get_name() == _HANDLER_NAME:
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        handler.set_name(_HANDLER_NAME)
        logger.addHandler(handler)
    else:
        # Rebind on every call so a reconfiguration after the interpreter's
        # stderr was replaced (pytest's capsys, IDE consoles) writes to the
        # *current* stream instead of a stale capture buffer.
        target = stream if stream is not None else sys.stderr
        try:
            handler.setStream(target)  # type: ignore[attr-defined]
        except ValueError:
            # setStream flushes the old stream first; a closed capture
            # buffer raises, in which case we swap the stream directly.
            handler.stream = target  # type: ignore[attr-defined]
    if json_logs:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s"))
    logger.propagate = False
    return logger


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the shared ``repro`` hierarchy."""
    if not name:
        return logging.getLogger("repro")
    if name == "repro" or name.startswith("repro."):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
