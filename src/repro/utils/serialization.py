"""Canonical JSON serialization and content fingerprints.

Persistent-store keys must be *stable*: the same logical payload has to map
to the same byte string in every process, on every platform, forever.  This
module provides the two primitives the run store and job service build on:

:func:`canonical_json`
    Deterministic JSON text — keys sorted, no whitespace, ``NaN``/``Inf``
    rejected.  Python's ``repr``-based float formatting is shortest-round-trip
    exact, so floats survive a dump/load cycle bit-for-bit.
:func:`payload_fingerprint`
    A BLAKE2b content hash of a payload's canonical JSON, used as the
    content address of jobs and stage artifacts.
"""

from __future__ import annotations

import hashlib
import json

__all__ = ["canonical_json", "payload_fingerprint"]


def canonical_json(payload) -> str:
    """Return the canonical (sorted, compact) JSON text of ``payload``.

    Parameters
    ----------
    payload:
        Any JSON-serializable object (dicts, lists, strings, numbers,
        booleans, ``None``).

    Returns
    -------
    str
        Deterministic JSON text: identical payloads always produce identical
        text, so the text can be hashed or compared byte-wise.

    Raises
    ------
    ValueError
        When the payload contains ``NaN`` or infinite floats (they have no
        JSON representation and would silently break round-tripping).
    TypeError
        When the payload contains non-JSON-serializable objects.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def payload_fingerprint(payload, digest_size: int = 16) -> str:
    """Return a stable content hash of a JSON-serializable payload.

    Parameters
    ----------
    payload:
        Any JSON-serializable object.
    digest_size:
        BLAKE2b digest size in bytes (the hex string is twice as long).

    Returns
    -------
    str
        Hex digest identifying the payload's canonical JSON content.
    """
    digest = hashlib.blake2b(digest_size=digest_size)
    digest.update(canonical_json(payload).encode())
    return digest.hexdigest()
