"""Axis-local simulation kernels: gate application without full-space operators.

Historically every simulator in the stack applied a k-qubit gate by embedding
it into a full ``2^n × 2^n`` operator (:func:`~repro.utils.linalg.expand_operator`)
and doing dense full-space matmuls — O(8^n) per gate on a density matrix.
The kernels in this module instead reshape the state into a rank-``n`` (or
rank-``2n``) tensor of 2-dimensional axes and contract each gate against its
*target axes only*:

* a unitary on a statevector is one ``(2^k × 2^k) @ (2^k × 2^{n-k})`` matmul,
* a unitary on a density matrix is two such matmuls (left multiply on the ket
  axes, conjugate right multiply on the bra axes) — O(4^n · 2^k) per gate,
* a Kraus channel is the same contraction per Kraus operator, accumulated in
  the dense path's order,
* measurement/reset/initialise move *blocks* of the state tensor instead of
  sandwiching full-space projectors, which makes them pure memory traffic.

All density-matrix kernels accept an optional leading batch axis (shape
``(batch, dim, dim)``), so the serial and vectorized simulators share one
code path and stay bitwise identical per slice.

Two kernels are exposed through every simulator and backend seam:

``einsum`` (default)
    The axis-local contractions above.

``dense``
    The legacy full-space-operator path, kept verbatim as the reference
    implementation and escape hatch (``kernel="dense"``).

Prepared-operator cache
-----------------------

:func:`prepare_operator` reshapes a gate matrix into its rank-``2k`` tensor
form, precomputes the conjugate transpose and fingerprints the payload; the
results are memoised in a process-wide LRU keyed by
``(matrix_fingerprint, k)``.  The same cache serves the gate-noise path (the
local Kraus operators of :class:`repro.devices.NoiseModel` are prepared
through it), so sweeps touching the same gates and channels thousands of
times pay the preparation cost once.

Telemetry
---------

:func:`record_gate_application` feeds two instruments on the process-global
metrics registry — a dispatch counter labelled by ``(kernel, arity)`` and a
per-gate-application latency histogram labelled by ``kernel`` — giving
``GET /metrics`` a live view of which kernels run and what each application
costs.  Purely additive observability: results are bitwise identical with
telemetry on or off.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from collections.abc import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.telemetry.metrics import REGISTRY

__all__ = [
    "KERNEL_NAMES",
    "DEFAULT_KERNEL",
    "resolve_kernel",
    "matrix_fingerprint",
    "PreparedOperator",
    "prepare_operator",
    "prepared_cache_info",
    "clear_prepared_cache",
    "apply_unitary",
    "apply_kraus",
    "apply_unitary_statevector",
    "project_qubit",
    "apply_reset",
    "apply_initialize",
    "record_gate_application",
]

#: Kernel names accepted by every simulator/backend ``kernel=`` parameter.
KERNEL_NAMES = ("einsum", "dense")

#: The kernel used when none is requested explicitly.
DEFAULT_KERNEL = "einsum"

#: Capacity of the prepared-operator LRU (distinct (matrix, arity) payloads).
_PREPARED_CACHE_MAXSIZE = 1024

#: Dispatch counter: one increment per gate applied to one state (batched
#: applications count every slice, so serial and vectorized runs of the same
#: workload report the same totals).
_GATE_DISPATCH = REGISTRY.counter(
    "repro_kernel_gate_applications_total",
    "Gate applications by simulation kernel and gate arity.",
    labelnames=("kernel", "arity"),
)

#: Per-gate-application wall time.  Buckets reach down to 10 µs because an
#: axis-local application of a small-circuit gate is microseconds, not the
#: milliseconds of the HTTP-latency default buckets.
_GATE_SECONDS = REGISTRY.histogram(
    "repro_kernel_gate_seconds",
    "Wall-clock seconds per gate application, by simulation kernel.",
    labelnames=("kernel",),
    buckets=(1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
             1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
)


def resolve_kernel(kernel: str | None) -> str:
    """Return a validated kernel name, defaulting to :data:`DEFAULT_KERNEL`."""
    if kernel is None:
        return DEFAULT_KERNEL
    name = str(kernel).lower()
    if name not in KERNEL_NAMES:
        raise SimulationError(
            f"unknown kernel {kernel!r}; expected one of {KERNEL_NAMES}"
        )
    return name


def record_gate_application(kernel: str, arity: int, seconds: float, count: int = 1) -> None:
    """Record ``count`` gate applications taking ``seconds`` total on ``kernel``."""
    _GATE_DISPATCH.inc(count, kernel=kernel, arity=str(arity))
    _GATE_SECONDS.observe(seconds, kernel=kernel)


# -- prepared operators ------------------------------------------------------------


def matrix_fingerprint(matrix: np.ndarray) -> str:
    """Return a content hash of a numeric operator payload (shape + bytes)."""
    array = np.ascontiguousarray(matrix, dtype=complex)
    digest = hashlib.blake2b(digest_size=16)
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


class PreparedOperator:
    """A gate matrix pre-shaped for axis-local contraction.

    Attributes
    ----------
    matrix:
        The contiguous ``(2^k, 2^k)`` operator.
    dagger:
        Its contiguous conjugate transpose.
    num_qubits:
        The operator arity ``k``.
    fingerprint:
        Content hash of the payload (the LRU key, shared with the noise
        layer's Kraus preparation).
    """

    __slots__ = ("matrix", "dagger", "num_qubits", "fingerprint")

    def __init__(self, matrix: np.ndarray, fingerprint: str):
        array = np.ascontiguousarray(matrix, dtype=complex)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise SimulationError(f"operator must be square, got shape {array.shape}")
        k = int(array.shape[0]).bit_length() - 1
        if 2**k != array.shape[0]:
            raise SimulationError(
                f"operator dimension {array.shape[0]} is not a power of two"
            )
        self.matrix = array
        self.dagger = np.ascontiguousarray(array.conj().T)
        self.num_qubits = k
        self.fingerprint = fingerprint


_prepared_lock = threading.Lock()
_prepared_cache: OrderedDict[tuple[str, int], PreparedOperator] = OrderedDict()
_prepared_hits = 0
_prepared_misses = 0


def prepare_operator(matrix: np.ndarray) -> PreparedOperator:
    """Return the (memoised) :class:`PreparedOperator` for ``matrix``.

    The LRU is keyed by ``(matrix_fingerprint, k)`` and shared process-wide;
    both gate unitaries and local Kraus operators go through it.
    """
    global _prepared_hits, _prepared_misses
    array = np.ascontiguousarray(matrix, dtype=complex)
    fingerprint = matrix_fingerprint(array)
    key = (fingerprint, int(array.shape[0]).bit_length() - 1)
    with _prepared_lock:
        cached = _prepared_cache.get(key)
        if cached is not None:
            _prepared_cache.move_to_end(key)
            _prepared_hits += 1
            return cached
        _prepared_misses += 1
    prepared = PreparedOperator(array, fingerprint)
    with _prepared_lock:
        _prepared_cache[key] = prepared
        _prepared_cache.move_to_end(key)
        while len(_prepared_cache) > _PREPARED_CACHE_MAXSIZE:
            _prepared_cache.popitem(last=False)
    return prepared


def prepared_cache_info() -> dict[str, int]:
    """Return hit/miss/size counters of the prepared-operator LRU."""
    with _prepared_lock:
        return {
            "hits": _prepared_hits,
            "misses": _prepared_misses,
            "size": len(_prepared_cache),
            "maxsize": _PREPARED_CACHE_MAXSIZE,
        }


def clear_prepared_cache() -> None:
    """Drop all prepared operators and reset the hit/miss counters."""
    global _prepared_hits, _prepared_misses
    with _prepared_lock:
        _prepared_cache.clear()
        _prepared_hits = 0
        _prepared_misses = 0


# -- axis bookkeeping --------------------------------------------------------------


def _tensor_view(state: np.ndarray, num_qubits: int, rank: int) -> tuple[np.ndarray, int]:
    """Return ``state`` viewed as ``prefix + (2,)*(rank*num_qubits)`` axes.

    ``rank`` is 1 for statevectors and 2 for density matrices.  The returned
    prefix length is 1 when a leading batch axis is present, else 0.
    """
    prefix = state.ndim - rank
    if prefix not in (0, 1):
        raise SimulationError(
            f"state must have {rank} dims (plus an optional batch axis), got shape {state.shape}"
        )
    shape = state.shape[:prefix] + (2,) * (rank * num_qubits)
    return state.reshape(shape), prefix


def _axis_matmul_left(
    tensor: np.ndarray, prefix: int, op: np.ndarray, axes: Sequence[int]
) -> np.ndarray:
    """Contract ``op``'s columns with the given tensor axes (left multiply).

    ``axes`` are positions relative to the qubit-axis block (after the batch
    prefix); ``op`` may carry its own leading batch axis for per-slice
    operators.
    """
    k = len(axes)
    total = tensor.ndim - prefix
    abs_axes = [prefix + a for a in axes]
    rest = [prefix + a for a in range(total) if a not in axes]
    perm = list(range(prefix)) + abs_axes + rest
    moved = np.transpose(tensor, perm)
    moved_shape = moved.shape
    mat = moved.reshape(moved_shape[:prefix] + (2**k, -1))
    out = op @ mat
    out = out.reshape(moved_shape)
    return np.transpose(out, np.argsort(perm))


def _axis_matmul_right(
    tensor: np.ndarray, prefix: int, op: np.ndarray, axes: Sequence[int]
) -> np.ndarray:
    """Contract the given tensor axes with ``op``'s rows (right multiply)."""
    k = len(axes)
    total = tensor.ndim - prefix
    abs_axes = [prefix + a for a in axes]
    rest = [prefix + a for a in range(total) if a not in axes]
    perm = list(range(prefix)) + rest + abs_axes
    moved = np.transpose(tensor, perm)
    moved_shape = moved.shape
    mat = moved.reshape(moved_shape[:prefix] + (-1, 2**k))
    out = mat @ op
    out = out.reshape(moved_shape)
    return np.transpose(out, np.argsort(perm))


def _block_index(
    ndim: int, axes: Sequence[int], bits: Sequence[int], prefix: int
) -> tuple:
    """Return an index tuple fixing each of ``axes`` (post-prefix) to ``bits``."""
    index: list = [slice(None)] * ndim
    for axis, bit in zip(axes, bits):
        index[prefix + axis] = bit
    return tuple(index)


# -- density-matrix kernels --------------------------------------------------------


def apply_unitary(
    rho: np.ndarray,
    operator: PreparedOperator | np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Return ``U ρ U†`` with ``U`` contracted on the target axes only.

    ``rho`` is a ``(dim, dim)`` density matrix or a ``(batch, dim, dim)``
    stack; ``operator`` is a prepared ``2^k``-dimensional unitary or a
    ``(batch, 2^k, 2^k)`` stack of per-slice unitaries.
    """
    qubits = list(qubits)
    if isinstance(operator, PreparedOperator):
        op, op_dagger = operator.matrix, operator.dagger
    else:
        op = np.ascontiguousarray(operator, dtype=complex)
        op_dagger = np.ascontiguousarray(op.conj().swapaxes(-1, -2))
    tensor, prefix = _tensor_view(rho, num_qubits, rank=2)
    ket_axes = qubits
    bra_axes = [num_qubits + q for q in qubits]
    out = _axis_matmul_left(tensor, prefix, op, ket_axes)
    out = _axis_matmul_right(out, prefix, op_dagger, bra_axes)
    return np.ascontiguousarray(out).reshape(rho.shape)


def apply_kraus(
    rho: np.ndarray,
    operators: Sequence[PreparedOperator | np.ndarray],
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Return ``Σ_i K_i ρ K_i†`` contracted on the target axes only.

    The Kraus terms are accumulated sequentially in the given order, matching
    the dense reference path's accumulation.
    """
    total: np.ndarray | None = None
    for operator in operators:
        piece = apply_unitary(rho, operator, qubits, num_qubits)
        total = piece if total is None else total + piece
    if total is None:
        raise SimulationError("apply_kraus requires at least one Kraus operator")
    return total


def project_qubit(rho: np.ndarray, qubit: int, num_qubits: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the unnormalised post-measurement pieces ``(P₀ρP₀, P₁ρP₁)``.

    Implemented as axis-sliced block copies — no projector matrices are
    built, and each piece is bitwise identical to the dense projector
    sandwich (whose only products are by exact 0/1 entries).
    """
    tensor, prefix = _tensor_view(rho, num_qubits, rank=2)
    pieces = []
    for outcome in (0, 1):
        index = _block_index(tensor.ndim, (qubit, num_qubits + qubit), (outcome, outcome), prefix)
        piece = np.zeros_like(tensor)
        piece[index] = tensor[index]
        pieces.append(piece.reshape(rho.shape))
    return pieces[0], pieces[1]


def apply_reset(rho: np.ndarray, qubit: int, num_qubits: int) -> np.ndarray:
    """Return the state after resetting ``qubit`` to ``|0⟩``.

    The reset channel ``K₀=|0⟩⟨0|, K₁=|0⟩⟨1|`` folds the two diagonal blocks
    of the target axes into the ``(0, 0)`` block; the off-diagonal blocks
    vanish.  Block arithmetic matches the dense Kraus sandwich bitwise.
    """
    tensor, prefix = _tensor_view(rho, num_qubits, rank=2)
    axes = (qubit, num_qubits + qubit)
    out = np.zeros_like(tensor)
    zero_block = _block_index(tensor.ndim, axes, (0, 0), prefix)
    one_block = _block_index(tensor.ndim, axes, (1, 1), prefix)
    out[zero_block] = tensor[zero_block] + tensor[one_block]
    return out.reshape(rho.shape)


def apply_initialize(
    rho: np.ndarray,
    targets: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Return the state after resetting ``qubits`` and preparing ``targets``.

    The reset-to-state channel ``ρ → Σ_j (|t⟩⟨j|) ρ (|j⟩⟨t|)`` is applied as
    a sum over the ``2^k`` diagonal blocks of the target axes, each block
    broadcast against the outer product of the target amplitudes — no
    identity matrix and no full-space Kraus operators are materialised.

    ``targets`` is the local ``(2^k,)`` state (or a ``(batch, 2^k)`` stack
    matching a batched ``rho``).
    """
    qubits = list(qubits)
    k = len(qubits)
    tensor, prefix = _tensor_view(rho, num_qubits, rank=2)
    targets = np.asarray(targets, dtype=complex)
    if prefix and targets.ndim == 1:
        targets = np.broadcast_to(targets, (tensor.shape[0], targets.shape[0]))
    ket_axes = qubits
    bra_axes = [num_qubits + q for q in qubits]
    rest_ket = [q for q in range(num_qubits) if q not in qubits]
    rest_bra = [num_qubits + q for q in rest_ket]

    # Work in the layout [batch?, ket_Q, rest_ket, bra_Q, rest_bra]; one final
    # inverse transpose restores the canonical axis order.
    n_rest = num_qubits - k
    ket_shape = (2,) * k
    # Target amplitudes broadcast over [ket_Q] and [bra_Q] respectively.
    batch_shape = tensor.shape[:prefix]
    t_ket = targets.reshape(batch_shape + ket_shape + (1,) * (n_rest + k + n_rest))
    t_bra = targets.conj().reshape(batch_shape + (1,) * (k + n_rest) + ket_shape + (1,) * n_rest)

    out = None
    for j in range(2**k):
        bits = [(j >> (k - 1 - position)) & 1 for position in range(k)]
        index = _block_index(tensor.ndim, ket_axes + bra_axes, bits + bits, prefix)
        block = tensor[index]  # shape: batch? + rest_ket + rest_bra
        block = block.reshape(
            batch_shape + (1,) * k + (2,) * n_rest + (1,) * k + (2,) * n_rest
        )
        # Mirror the dense Kraus sandwich's product order: (t ⊗ block) ⊗ t†.
        piece = (t_ket * block) * t_bra
        out = piece if out is None else out + piece
    # `out` axes: [batch?, ket_Q, rest_ket, bra_Q, rest_bra] → canonical order.
    order = list(qubits) + rest_ket + [num_qubits + q for q in qubits] + rest_bra
    perm = [prefix + position for position in np.argsort(order)]
    out = np.transpose(out, list(range(prefix)) + perm)
    return np.ascontiguousarray(out).reshape(rho.shape)


# -- statevector kernel ------------------------------------------------------------


def apply_unitary_statevector(
    state: np.ndarray,
    operator: PreparedOperator | np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Return ``U |ψ⟩`` with ``U`` contracted on the target axes only."""
    qubits = list(qubits)
    op = operator.matrix if isinstance(operator, PreparedOperator) else np.ascontiguousarray(operator, dtype=complex)
    tensor, prefix = _tensor_view(state, num_qubits, rank=1)
    out = _axis_matmul_left(tensor, prefix, op, qubits)
    return np.ascontiguousarray(out).reshape(state.shape)
