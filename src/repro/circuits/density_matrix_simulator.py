"""Exact density-matrix simulation with classical branching.

This simulator executes the *full* instruction set — gates, mid-circuit
measurement, classically conditioned gates, reset and initialise — exactly.
It maintains one (sub-normalised) density matrix per classical-register
value reached so far, which keeps feed-forward exact: a conditioned gate is
applied only to the branches whose classical bits satisfy the condition.

The number of branches is at most ``2^{#measurements}``, which is tiny for
the teleportation and wire-cut circuits (≤ 3 measurements), so this is both
exact and fast.  The exact classical-outcome distribution it produces is what
the fast "exact sampling" mode of :class:`~repro.circuits.shot_simulator.ShotSimulator`
draws from.

Simulation kernels
------------------

Two gate-application kernels are available (see
:mod:`repro.circuits.kernels`):

``einsum`` (default)
    Axis-local tensor contraction: the density matrix is viewed as a
    rank-``2n`` tensor and each k-qubit gate touches only its target axes —
    O(4^n · 2^k) per gate instead of O(8^n).  Measurement, reset and
    initialise are axis-sliced block moves.

``dense``
    The legacy full-space path: every operator is embedded into ``2^n × 2^n``
    with :func:`~repro.utils.linalg.expand_operator` and applied with dense
    matmuls.  Kept as the reference implementation and escape hatch.

Gate noise
----------

The simulator accepts an optional ``gate_noise`` hook: a callable receiving
each ``gate`` instruction and returning *local* Kraus operators (acting on
the instruction's qubits, in instruction order) to apply immediately after
the gate, or ``None`` for no noise.  Because a density matrix is evolved,
arbitrary CPTP noise — depolarising, amplitude damping, their compositions —
is exact, not sampled.  This is the mechanism behind
:class:`repro.devices.NoisyDeviceBackend`; the hook lives here so the
circuits layer stays ignorant of device modelling.  Under the ``einsum``
kernel the Kraus operators are applied locally (and their prepared tensor
forms are memoised in the shared operator LRU); under ``dense`` they are
expanded to the full space exactly as before.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import BARRIER, GATE, INITIALIZE, MEASURE, RESET
from repro.circuits.kernels import (
    apply_initialize,
    apply_kraus,
    apply_reset,
    apply_unitary,
    prepare_operator,
    project_qubit,
    record_gate_application,
    resolve_kernel,
)
from repro.quantum.states import DensityMatrix, Statevector
from repro.utils.linalg import expand_operator

__all__ = [
    "DensityMatrixSimulator",
    "BranchedResult",
    "Branch",
    "GateNoiseHook",
    "expanded_projectors",
    "expanded_reset_kraus",
]


@lru_cache(maxsize=256)
def expanded_projectors(qubit: int, num_qubits: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the full-space ``(P₀, P₁)`` projectors for one qubit, memoised.

    Repeated mid-circuit measurements of the same ``(qubit, num_qubits)``
    pair previously re-ran the O(4^n) expansion on every instruction; the
    cache builds each pair once per process.  The returned arrays are shared
    — callers must not mutate them.
    """
    p0 = expand_operator(np.diag([1.0, 0.0]).astype(complex), [qubit], num_qubits)
    p1 = expand_operator(np.diag([0.0, 1.0]).astype(complex), [qubit], num_qubits)
    return p0, p1


@lru_cache(maxsize=256)
def expanded_reset_kraus(qubit: int, num_qubits: int) -> tuple[np.ndarray, np.ndarray]:
    """Return the full-space reset Kraus pair ``(K₀, K₁)`` for one qubit, memoised.

    ``K₀ = |0⟩⟨0|`` and ``K₁ = |0⟩⟨1|`` on the target qubit.  As with
    :func:`expanded_projectors`, the arrays are shared and must not be
    mutated.
    """
    k0 = expand_operator(np.array([[1, 0], [0, 0]], dtype=complex), [qubit], num_qubits)
    k1 = expand_operator(np.array([[0, 1], [0, 0]], dtype=complex), [qubit], num_qubits)
    return k0, k1


def _local_initialize_kraus(target: np.ndarray) -> list[np.ndarray]:
    """Return the local reset-to-state Kraus family ``|target⟩⟨j|``.

    Each operator is written column-by-column — no ``dim × dim`` identity is
    materialised to pick out the basis bras.
    """
    target = np.asarray(target, dtype=complex).ravel()
    dim = target.shape[0]
    operators = []
    for j in range(dim):
        kraus = np.zeros((dim, dim), dtype=complex)
        kraus[:, j] = target
        operators.append(kraus)
    return operators


@dataclass(frozen=True)
class Branch:
    """One classical branch of an executed circuit.

    Attributes
    ----------
    clbits:
        The classical register value of this branch (bit 0 first).
    probability:
        The probability of ending in this branch.
    state:
        The *normalised* conditional quantum state of the branch; ``None``
        when the branch has zero probability.
    """

    clbits: tuple[int, ...]
    probability: float
    state: DensityMatrix | None

    @property
    def bitstring(self) -> str:
        """The branch's classical value as a bitstring (clbit 0 leftmost)."""
        return "".join(str(b) for b in self.clbits)


@dataclass(frozen=True)
class BranchedResult:
    """Exact result of a density-matrix simulation.

    Attributes
    ----------
    branches:
        All classical branches with non-zero probability.
    num_clbits:
        Width of the classical register.
    """

    branches: tuple[Branch, ...]
    num_clbits: int

    def classical_distribution(self) -> dict[str, float]:
        """Return the exact probability of each classical-register value."""
        distribution: dict[str, float] = {}
        for branch in self.branches:
            distribution[branch.bitstring] = distribution.get(branch.bitstring, 0.0) + branch.probability
        return distribution

    def average_state(self) -> DensityMatrix:
        """Return the ensemble-average density matrix over all branches."""
        total = None
        for branch in self.branches:
            if branch.state is None:
                continue
            contribution = branch.probability * branch.state.data
            total = contribution if total is None else total + contribution
        if total is None:
            raise SimulationError("no branch carries probability")
        return DensityMatrix(total, validate=False)

    def expectation_value(self, observable: np.ndarray) -> complex:
        """Return ``Tr[O ρ_avg]`` over the branch-averaged state."""
        return self.average_state().expectation_value(observable)

    def conditional_state(self, bitstring: str) -> DensityMatrix:
        """Return the normalised state conditioned on a classical outcome."""
        matches = [b for b in self.branches if b.bitstring == bitstring and b.state is not None]
        if not matches:
            raise SimulationError(f"no branch with classical value {bitstring!r}")
        weight = sum(b.probability for b in matches)
        total = sum(b.probability * b.state.data for b in matches)
        return DensityMatrix(total / weight, validate=False)


#: Signature of the optional gate-noise hook: instruction -> local Kraus
#: operators on the instruction's qubits, or None for a noiseless gate.
GateNoiseHook = Callable[..., "Sequence[np.ndarray] | None"]


class DensityMatrixSimulator:
    """Exact simulator supporting the full instruction set.

    Parameters
    ----------
    gate_noise:
        Optional hook called with every ``gate`` instruction; when it returns
        a sequence of Kraus operators (acting on the gate's qubits, in
        instruction order) the corresponding channel is applied right after
        the gate, on exactly the branches the gate acted on (classically
        conditioned gates stay noiseless on branches that skip them).
    kernel:
        Gate-application kernel: ``"einsum"`` (axis-local contraction, the
        default) or ``"dense"`` (legacy full-space operators).
    """

    def __init__(self, gate_noise: GateNoiseHook | None = None, kernel: str | None = None):
        self._gate_noise = gate_noise
        self.kernel = resolve_kernel(kernel)

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: DensityMatrix | Statevector | np.ndarray | None = None,
    ) -> BranchedResult:
        """Execute ``circuit`` exactly and return all classical branches."""
        rho = self._initial_density(circuit, initial_state)
        num_qubits = circuit.num_qubits
        num_clbits = circuit.num_clbits
        # Branch table: classical value (tuple of bits) -> unnormalised density matrix.
        branches: dict[tuple[int, ...], np.ndarray] = {tuple([0] * num_clbits): rho}

        for instruction in circuit.instructions:
            if instruction.kind == BARRIER:
                continue
            if instruction.kind == GATE:
                branches = self._apply_gate(branches, instruction, num_qubits)
            elif instruction.kind == MEASURE:
                branches = self._apply_measure(branches, instruction, num_qubits)
            elif instruction.kind == RESET:
                branches = self._apply_reset(branches, instruction, num_qubits)
            elif instruction.kind == INITIALIZE:
                branches = self._apply_initialize(branches, instruction, num_qubits)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unsupported instruction kind {instruction.kind!r}")

        result_branches = []
        for clbits, matrix in branches.items():
            probability = float(np.real(np.trace(matrix)))
            if probability <= 1e-15:
                continue
            state = DensityMatrix(matrix / probability, validate=False)
            result_branches.append(Branch(clbits=clbits, probability=probability, state=state))
        result_branches.sort(key=lambda b: b.clbits)
        return BranchedResult(branches=tuple(result_branches), num_clbits=num_clbits)

    # -- instruction handlers ---------------------------------------------------

    @staticmethod
    def _initial_density(
        circuit: QuantumCircuit,
        initial_state: DensityMatrix | Statevector | np.ndarray | None,
    ) -> np.ndarray:
        if initial_state is None:
            dim = 2**circuit.num_qubits
            rho = np.zeros((dim, dim), dtype=complex)
            rho[0, 0] = 1.0
            return rho
        if isinstance(initial_state, Statevector):
            rho = initial_state.to_density_matrix().data
        elif isinstance(initial_state, DensityMatrix):
            rho = initial_state.data.copy()
        else:
            array = np.asarray(initial_state, dtype=complex)
            rho = np.outer(array, array.conj()) if array.ndim == 1 else array.copy()
        if rho.shape != (2**circuit.num_qubits,) * 2:
            raise SimulationError(
                f"initial state dimension {rho.shape} does not match circuit "
                f"({circuit.num_qubits} qubits)"
            )
        return rho

    def _apply_gate(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        instruction,
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        qubits = list(instruction.qubits)
        kraus_local = None
        if self._gate_noise is not None:
            kraus_local = self._gate_noise(instruction)

        if self.kernel == "einsum":
            prepared = prepare_operator(instruction.matrix)
            prepared_kraus = (
                None
                if kraus_local is None
                else [prepare_operator(np.asarray(k, dtype=complex)) for k in kraus_local]
            )
        else:
            unitary = expand_operator(instruction.matrix, qubits, num_qubits)
            unitary_dag = unitary.conj().T
            kraus_full = (
                None
                if kraus_local is None
                else [
                    expand_operator(np.asarray(k, dtype=complex), qubits, num_qubits)
                    for k in kraus_local
                ]
            )

        updated: dict[tuple[int, ...], np.ndarray] = {}
        applications = 0
        start = time.perf_counter()
        for clbits, matrix in branches.items():
            if instruction.condition is not None:
                clbit, value = instruction.condition
                if clbits[clbit] != value:
                    updated[clbits] = matrix
                    continue
            if self.kernel == "einsum":
                evolved = apply_unitary(matrix, prepared, qubits, num_qubits)
                if prepared_kraus is not None:
                    evolved = apply_kraus(evolved, prepared_kraus, qubits, num_qubits)
            else:
                evolved = unitary @ matrix @ unitary_dag
                if kraus_full is not None:
                    evolved = sum(k @ evolved @ k.conj().T for k in kraus_full)
            updated[clbits] = evolved
            applications += 1
        if applications:
            record_gate_application(
                self.kernel, len(qubits), time.perf_counter() - start, count=applications
            )
        return updated

    @staticmethod
    def _projectors(qubit: int, num_qubits: int) -> tuple[np.ndarray, np.ndarray]:
        return expanded_projectors(qubit, num_qubits)

    def _apply_measure(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        instruction,
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        qubit = instruction.qubits[0]
        clbit = instruction.clbits[0]
        if self.kernel == "dense":
            p0, p1 = self._projectors(qubit, num_qubits)
        updated: dict[tuple[int, ...], np.ndarray] = {}
        for clbits, matrix in branches.items():
            if self.kernel == "einsum":
                pieces = project_qubit(matrix, qubit, num_qubits)
            else:
                pieces = (p0 @ matrix @ p0, p1 @ matrix @ p1)
            for outcome, piece in enumerate(pieces):
                if np.trace(piece).real <= 1e-16:
                    continue
                new_clbits = list(clbits)
                new_clbits[clbit] = outcome
                key = tuple(new_clbits)
                updated[key] = updated.get(key, 0) + piece
        return updated

    def _apply_reset(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        instruction,
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        qubit = instruction.qubits[0]
        if self.kernel == "einsum":
            return {
                clbits: apply_reset(matrix, qubit, num_qubits)
                for clbits, matrix in branches.items()
            }
        # Reset channel: K0 = |0><0|, K1 = |0><1| on the target qubit.
        k0, k1 = expanded_reset_kraus(qubit, num_qubits)
        updated: dict[tuple[int, ...], np.ndarray] = {}
        for clbits, matrix in branches.items():
            updated[clbits] = k0 @ matrix @ k0.conj().T + k1 @ matrix @ k1.conj().T
        return updated

    def _apply_initialize(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        instruction,
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        qubits = list(instruction.qubits)
        target = np.asarray(instruction.matrix, dtype=complex).ravel()
        if self.kernel == "einsum":
            return {
                clbits: apply_initialize(matrix, target, qubits, num_qubits)
                for clbits, matrix in branches.items()
            }
        kraus_local = _local_initialize_kraus(target)
        kraus_full = [expand_operator(k, qubits, num_qubits) for k in kraus_local]
        updated: dict[tuple[int, ...], np.ndarray] = {}
        for clbits, matrix in branches.items():
            updated[clbits] = sum(k @ matrix @ k.conj().T for k in kraus_full)
        return updated


def simulate_density_matrix(
    circuit: QuantumCircuit,
    initial_state: DensityMatrix | Statevector | np.ndarray | None = None,
    kernel: str | None = None,
) -> BranchedResult:
    """Convenience wrapper: run :class:`DensityMatrixSimulator` on ``circuit``."""
    return DensityMatrixSimulator(kernel=kernel).run(circuit, initial_state)
