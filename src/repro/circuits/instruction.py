"""Circuit instruction set.

An :class:`Instruction` is an immutable record of one operation in a
:class:`~repro.circuits.circuit.QuantumCircuit`.  Five kinds exist:

``gate``
    A unitary on one or more qubits, optionally classically conditioned.
``measure``
    A projective computational-basis measurement of one qubit into one
    classical bit.
``reset``
    Reset of one qubit to ``|0⟩`` (measure and flip).
``initialize``
    Reset of a group of qubits followed by preparation of an arbitrary
    pure state on them.
``barrier``
    A no-op scheduling marker (kept so circuit diagrams/fragments round-trip).

Classical conditioning (``condition``) mirrors Qiskit's ``c_if``: the
instruction is applied only when the given classical bit currently holds the
given value.  This is how the classically controlled corrections of
teleportation and the wire-cut circuits are expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import CircuitError

__all__ = ["Instruction", "GATE", "MEASURE", "RESET", "INITIALIZE", "BARRIER"]

GATE = "gate"
MEASURE = "measure"
RESET = "reset"
INITIALIZE = "initialize"
BARRIER = "barrier"

_KINDS = {GATE, MEASURE, RESET, INITIALIZE, BARRIER}


@dataclass(frozen=True)
class Instruction:
    """A single circuit operation.

    Attributes
    ----------
    kind:
        One of ``gate``, ``measure``, ``reset``, ``initialize``, ``barrier``.
    name:
        Human-readable name (gate name, or the kind itself for non-gates).
    qubits:
        Target qubit indices, in operator order (first index = most
        significant tensor factor of ``matrix``).
    clbits:
        Classical bits written by the instruction (only ``measure`` writes).
    params:
        Gate parameters (angles) for parameterised gates.
    matrix:
        Dense unitary for ``gate`` instructions; statevector for
        ``initialize``; ``None`` otherwise.
    condition:
        Optional ``(clbit, value)`` pair; the instruction is skipped unless
        the classical bit equals ``value`` at execution time.
    """

    kind: str
    name: str
    qubits: tuple[int, ...]
    clbits: tuple[int, ...] = ()
    params: tuple[float, ...] = ()
    matrix: np.ndarray | None = field(default=None, compare=False)
    condition: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise CircuitError(f"unknown instruction kind {self.kind!r}")
        if self.kind == GATE and self.matrix is None:
            raise CircuitError(f"gate instruction {self.name!r} requires a matrix")
        if self.kind == MEASURE and (len(self.qubits) != 1 or len(self.clbits) != 1):
            raise CircuitError("measure acts on exactly one qubit and one classical bit")
        if self.kind == RESET and len(self.qubits) != 1:
            raise CircuitError("reset acts on exactly one qubit")
        if self.kind == INITIALIZE and self.matrix is None:
            raise CircuitError("initialize requires a target statevector in `matrix`")
        if self.condition is not None:
            clbit, value = self.condition
            if value not in (0, 1):
                raise CircuitError(f"condition value must be 0 or 1, got {value}")
            if clbit < 0:
                raise CircuitError(f"condition clbit must be non-negative, got {clbit}")
        if self.kind == GATE and self.matrix is not None:
            expected = 2 ** len(self.qubits)
            if self.matrix.shape != (expected, expected):
                raise CircuitError(
                    f"gate {self.name!r} matrix shape {self.matrix.shape} does not match "
                    f"{len(self.qubits)} qubits"
                )

    @property
    def num_qubits(self) -> int:
        """Number of qubits the instruction touches."""
        return len(self.qubits)

    @property
    def is_conditional(self) -> bool:
        """True when the instruction carries a classical condition."""
        return self.condition is not None

    def with_condition(self, clbit: int, value: int = 1) -> "Instruction":
        """Return a copy of the instruction conditioned on ``clbits[clbit] == value``."""
        if self.kind in (MEASURE, BARRIER):
            raise CircuitError(f"{self.kind} instructions cannot be conditioned")
        return replace(self, condition=(clbit, value))

    def remap(self, qubit_map: dict[int, int], clbit_map: dict[int, int] | None = None) -> "Instruction":
        """Return a copy with qubit (and optionally clbit) indices remapped.

        Returns ``self`` unchanged when the mapping is the identity on every
        index the instruction touches — instructions are immutable, so the
        shared object is safe, and composition of already-aligned fragments
        (the circuit builder's hot path) skips the dataclass copy.
        """
        clbit_map = clbit_map or {}
        new_qubits = tuple(qubit_map.get(q, q) for q in self.qubits)
        new_clbits = tuple(clbit_map.get(c, c) for c in self.clbits)
        new_condition = self.condition
        if new_condition is not None:
            new_condition = (clbit_map.get(new_condition[0], new_condition[0]), new_condition[1])
        if (
            new_qubits == self.qubits
            and new_clbits == self.clbits
            and new_condition == self.condition
        ):
            return self
        return replace(self, qubits=new_qubits, clbits=new_clbits, condition=new_condition)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [self.name, f"q={list(self.qubits)}"]
        if self.clbits:
            parts.append(f"c={list(self.clbits)}")
        if self.params:
            parts.append(f"params={list(np.round(self.params, 4))}")
        if self.condition is not None:
            parts.append(f"if c[{self.condition[0]}]=={self.condition[1]}")
        return " ".join(parts)
