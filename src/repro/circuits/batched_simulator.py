"""Batched exact simulation of structurally identical circuits.

The QPD term circuits of a parameter sweep are *structurally* identical: for
a fixed (protocol, term) the instruction stream — gate positions, measured
qubits, classical conditions — is the same for every input state, and only
the numeric payload (the state-preparation unitary or ``initialize`` vector)
differs.  :class:`BatchedDensityMatrixSimulator` exploits this by stacking
all circuits of such a *structure group* into one ``(batch, dim, dim)``
density-matrix array and executing the shared instruction stream once, with
every linear-algebra step broadcast over the batch axis.

The per-slice arithmetic is kept operation-for-operation identical to
:class:`~repro.circuits.density_matrix_simulator.DensityMatrixSimulator`
*under the same kernel* (same operators, same Kraus accumulation order, same
trace and pruning thresholds; the axis-local kernels are shared functions
that broadcast over an optional batch axis), so the classical distributions
produced for a batch of size 1 match the serial simulator bitwise; this is
what lets the vectorized execution backend guarantee seed-identical results
to the serial one.

Like the serial simulator, the batched one accepts ``kernel="einsum"``
(axis-local contraction, default) or ``kernel="dense"`` (legacy full-space
operators) — see :mod:`repro.circuits.kernels`.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.density_matrix_simulator import (
    _local_initialize_kraus,
    expanded_projectors,
    expanded_reset_kraus,
)
from repro.circuits.instruction import BARRIER, GATE, INITIALIZE, MEASURE, RESET, Instruction
from repro.circuits.kernels import (
    apply_initialize,
    apply_reset,
    apply_unitary,
    prepare_operator,
    project_qubit,
    record_gate_application,
    resolve_kernel,
)
from repro.utils.linalg import expand_operator

__all__ = ["BatchedDensityMatrixSimulator", "structure_signature"]

#: Branch probabilities at or below this value are dropped from the final
#: classical distribution (matches ``DensityMatrixSimulator.run``).
_PRUNE_FINAL = 1e-15
#: Measurement pieces whose probability is at or below this value across the
#: whole batch are not tracked (matches ``DensityMatrixSimulator._apply_measure``).
_PRUNE_MEASURE = 1e-16


def _active_instructions(circuit: QuantumCircuit) -> list[Instruction]:
    """Return the circuit's instructions with no-op barriers removed."""
    return [ins for ins in circuit.instructions if ins.kind != BARRIER]


def structure_signature(circuit: QuantumCircuit) -> tuple:
    """Return a hashable key identifying the circuit's batchable structure.

    Two circuits with equal signatures run the same instruction stream over
    the same registers and differ at most in gate unitaries and ``initialize``
    vectors — exactly the condition under which they can share one batched
    execution.
    """
    ops = tuple(
        (ins.kind, ins.qubits, ins.clbits, ins.condition, None if ins.matrix is None else ins.matrix.shape)
        for ins in _active_instructions(circuit)
    )
    return (circuit.num_qubits, circuit.num_clbits, ops)


def _stack_expand(matrices: list[np.ndarray], qubits: Sequence[int], num_qubits: int) -> np.ndarray:
    """Expand one small operator per batch element into a ``(batch, dim, dim)`` stack.

    Vectorised counterpart of :func:`~repro.utils.linalg.expand_operator`: the
    same tensor embedding is applied to the whole stack at once, and because
    the embedding only places (multiplies by 0/1) the input entries, each
    slice is bitwise identical to the serial expansion.
    """
    qubits = list(qubits)
    k = len(qubits)
    batch = len(matrices)
    stack = np.ascontiguousarray(matrices, dtype=complex)
    op_tensor = stack.reshape([batch] + [2] * (2 * k))
    identity = np.eye(2 ** (num_qubits - k), dtype=complex)
    id_tensor = identity.reshape([2] * (2 * (num_qubits - k)))
    full = np.tensordot(op_tensor, id_tensor, axes=0)
    # Axes of `full`: 0 = batch, then k row-axes for `qubits`, k col-axes for
    # `qubits`, then (n-k) row-axes for the rest, (n-k) col-axes for the rest
    # (mirroring expand_operator, shifted by the leading batch axis).
    rest = [q for q in range(num_qubits) if q not in qubits]
    order = qubits + rest
    row_axes = list(range(1, k + 1)) + list(range(2 * k + 1, 2 * k + 1 + (num_qubits - k)))
    col_axes = list(range(k + 1, 2 * k + 1)) + list(
        range(2 * k + 1 + (num_qubits - k), 2 * num_qubits + 1)
    )
    perm = np.argsort(order)
    new_row_axes = [row_axes[p] for p in perm]
    new_col_axes = [col_axes[p] for p in perm]
    full = np.transpose(full, axes=[0] + new_row_axes + new_col_axes)
    dim = 2**num_qubits
    return np.ascontiguousarray(full.reshape(batch, dim, dim))


def _all_equal(matrices: list[np.ndarray]) -> bool:
    first = matrices[0]
    return all(matrix is first or np.array_equal(matrix, first) for matrix in matrices[1:])


class BatchedDensityMatrixSimulator:
    """Exact branching density-matrix simulation of a batch of circuits.

    All circuits handed to :meth:`run_group` must share the same
    :func:`structure_signature`; callers group arbitrary circuit batches with
    that key (see :class:`~repro.circuits.backends.VectorizedBackend`).

    Parameters
    ----------
    kernel:
        Gate-application kernel: ``"einsum"`` (axis-local, default) or
        ``"dense"`` (legacy full-space operators).
    """

    def __init__(self, kernel: str | None = None):
        self.kernel = resolve_kernel(kernel)

    def run_group(self, circuits: Sequence[QuantumCircuit]) -> list[dict[str, float]]:
        """Execute structurally identical ``circuits`` and return per-circuit
        exact classical-outcome distributions (bitstring → probability)."""
        if not circuits:
            return []
        signature = structure_signature(circuits[0])
        for circuit in circuits[1:]:
            if structure_signature(circuit) != signature:
                raise SimulationError(
                    "run_group requires structurally identical circuits; "
                    f"{circuit.name!r} does not match {circuits[0].name!r}"
                )
        batch = len(circuits)
        num_qubits = circuits[0].num_qubits
        num_clbits = circuits[0].num_clbits
        dim = 2**num_qubits

        rho = np.zeros((batch, dim, dim), dtype=complex)
        rho[:, 0, 0] = 1.0
        # Branch table: classical value (tuple of bits) -> (batch, dim, dim) stack.
        branches: dict[tuple[int, ...], np.ndarray] = {tuple([0] * num_clbits): rho}

        streams = [_active_instructions(circuit) for circuit in circuits]
        for position, template in enumerate(streams[0]):
            matrices = [stream[position].matrix for stream in streams]
            if template.kind == GATE:
                branches = self._apply_gate(branches, template, matrices, num_qubits)
            elif template.kind == MEASURE:
                branches = self._apply_measure(branches, template, num_qubits)
            elif template.kind == RESET:
                branches = self._apply_reset(branches, template, num_qubits)
            elif template.kind == INITIALIZE:
                branches = self._apply_initialize(branches, template, matrices, num_qubits)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unsupported instruction kind {template.kind!r}")

        return self._distributions(branches, batch)

    # -- instruction handlers ---------------------------------------------------

    def _apply_gate(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        template: Instruction,
        matrices: list[np.ndarray],
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        qubits = list(template.qubits)
        shared = _all_equal(matrices)
        if self.kernel == "einsum":
            if shared:
                operator = prepare_operator(matrices[0])
            else:
                operator = np.ascontiguousarray(matrices, dtype=complex)
        elif shared:
            unitary = expand_operator(matrices[0], qubits, num_qubits)
            unitary_dag = unitary.conj().T
        else:
            unitary = _stack_expand(matrices, qubits, num_qubits)
            unitary_dag = unitary.conj().transpose(0, 2, 1)
        updated: dict[tuple[int, ...], np.ndarray] = {}
        applications = 0
        start = time.perf_counter()
        for clbits, stack in branches.items():
            if template.condition is not None:
                clbit, value = template.condition
                if clbits[clbit] != value:
                    updated[clbits] = stack
                    continue
            if self.kernel == "einsum":
                updated[clbits] = apply_unitary(stack, operator, qubits, num_qubits)
            else:
                updated[clbits] = unitary @ stack @ unitary_dag
            applications += stack.shape[0]
        if applications:
            record_gate_application(
                self.kernel, len(qubits), time.perf_counter() - start, count=applications
            )
        return updated

    def _apply_measure(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        template: Instruction,
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        qubit = template.qubits[0]
        clbit = template.clbits[0]
        if self.kernel == "dense":
            p0, p1 = expanded_projectors(qubit, num_qubits)
        updated: dict[tuple[int, ...], np.ndarray] = {}
        for clbits, stack in branches.items():
            if self.kernel == "einsum":
                pieces = project_qubit(stack, qubit, num_qubits)
            else:
                pieces = (p0 @ stack @ p0, p1 @ stack @ p1)
            for outcome, piece in enumerate(pieces):
                traces = np.trace(piece, axis1=1, axis2=2).real
                dead = traces <= _PRUNE_MEASURE
                if np.all(dead):
                    # This branch is impossible for every circuit in the batch
                    # (e.g. a deterministic correction bit); skip it entirely.
                    continue
                if np.any(dead):
                    # Zero the slices the serial simulator would have dropped,
                    # so downstream merges see exactly its contributions.
                    piece[dead] = 0.0
                new_clbits = list(clbits)
                new_clbits[clbit] = outcome
                key = tuple(new_clbits)
                if key in updated:
                    updated[key] = updated[key] + piece
                else:
                    updated[key] = piece
        return updated

    def _apply_reset(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        template: Instruction,
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        qubit = template.qubits[0]
        if self.kernel == "einsum":
            return {
                clbits: apply_reset(stack, qubit, num_qubits)
                for clbits, stack in branches.items()
            }
        k0, k1 = expanded_reset_kraus(qubit, num_qubits)
        k0_dag = k0.conj().T
        k1_dag = k1.conj().T
        return {
            clbits: k0 @ stack @ k0_dag + k1 @ stack @ k1_dag
            for clbits, stack in branches.items()
        }

    def _apply_initialize(
        self,
        branches: dict[tuple[int, ...], np.ndarray],
        template: Instruction,
        matrices: list[np.ndarray],
        num_qubits: int,
    ) -> dict[tuple[int, ...], np.ndarray]:
        qubits = list(template.qubits)
        targets = [np.asarray(matrix, dtype=complex).ravel() for matrix in matrices]
        shared = _all_equal(targets)
        if self.kernel == "einsum":
            # A shared target broadcasts; distinct targets stack along the
            # batch axis.  Either way the block arithmetic matches the serial
            # kernel slice for slice.
            payload = targets[0] if shared else np.ascontiguousarray(targets)
            return {
                clbits: apply_initialize(stack, payload, qubits, num_qubits)
                for clbits, stack in branches.items()
            }
        dim_sub = 2 ** len(qubits)
        # One Kraus operator |target><j| per subsystem basis state j, expanded
        # and accumulated in the same order as the serial simulator.
        local_families = [
            _local_initialize_kraus(target) for target in (targets[:1] if shared else targets)
        ]
        kraus: list[np.ndarray] = []
        for j in range(dim_sub):
            if shared:
                kraus.append(expand_operator(local_families[0][j], qubits, num_qubits))
            else:
                kraus.append(_stack_expand([family[j] for family in local_families], qubits, num_qubits))
        updated: dict[tuple[int, ...], np.ndarray] = {}
        for clbits, stack in branches.items():
            total = None
            for k in kraus:
                k_dag = k.conj().T if k.ndim == 2 else k.conj().transpose(0, 2, 1)
                piece = k @ stack @ k_dag
                total = piece if total is None else total + piece
            updated[clbits] = total
        return updated

    # -- result assembly --------------------------------------------------------

    @staticmethod
    def _distributions(
        branches: dict[tuple[int, ...], np.ndarray], batch: int
    ) -> list[dict[str, float]]:
        ordered = sorted(branches.items(), key=lambda item: item[0])
        keys = ["".join(str(b) for b in clbits) for clbits, _ in ordered]
        # (num_branches, batch) probability matrix.
        probabilities = np.stack(
            [np.trace(stack, axis1=1, axis2=2).real for _, stack in ordered]
        )
        results: list[dict[str, float]] = []
        for element in range(batch):
            distribution = {
                key: float(probabilities[row, element])
                for row, key in enumerate(keys)
                if probabilities[row, element] > _PRUNE_FINAL
            }
            results.append(distribution)
        return results
