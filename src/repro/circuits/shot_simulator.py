"""Shot-based circuit sampling — the Qiskit Aer replacement.

Two execution methods are provided:

``exact`` (default)
    The circuit is executed once, exactly, with the branching density-matrix
    simulator; the exact probability distribution over classical-register
    values is then sampled with a multinomial draw.  This is statistically
    identical to running independent shots (each shot is an i.i.d. draw from
    the same outcome distribution) but costs one exact simulation per
    circuit instead of one trajectory per shot — the vectorised-over-shots
    strategy recommended by the HPC guidance.

``trajectory``
    Every shot is simulated as an independent statevector trajectory with
    real mid-circuit collapse, classical feed-forward, reset and initialise.
    Slower, but makes no structural assumptions; used by tests to validate
    the ``exact`` method and available for workloads where per-shot state
    evolution matters.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.counts import Counts
from repro.circuits.density_matrix_simulator import DensityMatrixSimulator
from repro.circuits.instruction import BARRIER, GATE, INITIALIZE, MEASURE, RESET
from repro.circuits.kernels import resolve_kernel
from repro.quantum.states import Statevector
from repro.utils.rng import SeedLike, as_generator

__all__ = ["ShotSimulator", "run_and_sample"]


def _preparation_unitary(target: np.ndarray) -> np.ndarray:
    """Return a unitary whose first column is ``target`` (maps ``|0..0⟩`` to it)."""
    target = np.asarray(target, dtype=complex).ravel()
    dim = target.shape[0]
    # Complete `target` to an orthonormal basis with a QR decomposition of a
    # matrix whose first column is the target vector.
    matrix = np.eye(dim, dtype=complex)
    matrix[:, 0] = target
    q, _ = np.linalg.qr(matrix)
    # QR may flip the phase of the first column; correct it so q[:,0] == target.
    phase = np.vdot(q[:, 0], target)
    q[:, 0] = q[:, 0] * (phase / abs(phase)) if abs(phase) > 1e-12 else target
    # Re-orthonormalise defensively (numerically q is already unitary).
    return q


class ShotSimulator:
    """Samples measurement outcomes of circuits containing measurements."""

    def __init__(self, method: str = "exact", kernel: str | None = None):
        if method not in {"exact", "trajectory"}:
            raise SimulationError(f"unknown method {method!r}; use 'exact' or 'trajectory'")
        self.method = method
        #: Simulation kernel forwarded to the exact density-matrix run (the
        #: trajectory method contracts axis-locally regardless).
        self.kernel = resolve_kernel(kernel)

    def run(
        self,
        circuit: QuantumCircuit,
        shots: int,
        seed: SeedLike = None,
        initial_state: Statevector | np.ndarray | None = None,
    ) -> Counts:
        """Execute ``circuit`` for ``shots`` shots and return outcome counts.

        The counts keys are classical-register bitstrings with clbit 0 as the
        leftmost character.
        """
        if shots < 0:
            raise ValueError(f"shots must be non-negative, got {shots}")
        if circuit.num_clbits == 0:
            raise SimulationError("circuit has no classical bits to sample")
        if shots == 0:
            return Counts({}, num_clbits=circuit.num_clbits)
        rng = as_generator(seed)
        if self.method == "exact":
            return self._run_exact(circuit, shots, rng, initial_state)
        return self._run_trajectories(circuit, shots, rng, initial_state)

    # -- exact sampling -----------------------------------------------------------

    def _run_exact(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng: np.random.Generator,
        initial_state: Statevector | np.ndarray | None,
    ) -> Counts:
        result = DensityMatrixSimulator(kernel=self.kernel).run(circuit, initial_state)
        distribution = result.classical_distribution()
        return Counts.from_probabilities(
            distribution, shots=shots, num_clbits=circuit.num_clbits, seed=rng
        )

    # -- trajectory sampling ---------------------------------------------------------

    def _run_trajectories(
        self,
        circuit: QuantumCircuit,
        shots: int,
        rng: np.random.Generator,
        initial_state: Statevector | np.ndarray | None,
    ) -> Counts:
        counts: dict[str, int] = {}
        for _ in range(shots):
            clbits = self._run_single_trajectory(circuit, rng, initial_state)
            key = "".join(str(b) for b in clbits)
            counts[key] = counts.get(key, 0) + 1
        return Counts(counts, num_clbits=circuit.num_clbits)

    def _run_single_trajectory(
        self,
        circuit: QuantumCircuit,
        rng: np.random.Generator,
        initial_state: Statevector | np.ndarray | None,
    ) -> list[int]:
        num_qubits = circuit.num_qubits
        if initial_state is None:
            state = Statevector.zero_state(num_qubits)
        else:
            state = (
                initial_state
                if isinstance(initial_state, Statevector)
                else Statevector(initial_state)
            )
            if state.num_qubits != num_qubits:
                raise SimulationError(
                    f"initial state has {state.num_qubits} qubits, circuit has {num_qubits}"
                )
        clbits = [0] * circuit.num_clbits

        for instruction in circuit.instructions:
            if instruction.kind == BARRIER:
                continue
            if instruction.condition is not None:
                clbit, value = instruction.condition
                if clbits[clbit] != value:
                    continue
            if instruction.kind == GATE:
                state = state.evolve(instruction.matrix, instruction.qubits)
            elif instruction.kind == MEASURE:
                outcome, state = self._measure_qubit(state, instruction.qubits[0], rng)
                clbits[instruction.clbits[0]] = outcome
            elif instruction.kind == RESET:
                outcome, state = self._measure_qubit(state, instruction.qubits[0], rng)
                if outcome == 1:
                    state = state.evolve(np.array([[0, 1], [1, 0]], dtype=complex), [instruction.qubits[0]])
            elif instruction.kind == INITIALIZE:
                state = self._initialize(state, instruction, rng)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unsupported instruction kind {instruction.kind!r}")
        return clbits

    @staticmethod
    def _measure_qubit(
        state: Statevector, qubit: int, rng: np.random.Generator
    ) -> tuple[int, Statevector]:
        """Sample a computational-basis measurement of one qubit and collapse."""
        num_qubits = state.num_qubits
        tensor = state.data.reshape([2] * num_qubits)
        # Probability of outcome 1: sum of |amplitudes|² where the qubit index is 1.
        amplitudes_one = np.take(tensor, 1, axis=qubit)
        p_one = float(np.sum(np.abs(amplitudes_one) ** 2))
        outcome = 1 if rng.random() < p_one else 0
        probability = p_one if outcome == 1 else 1.0 - p_one
        if probability <= 0:
            # Numerically impossible branch; keep the state unchanged.
            return outcome, state
        collapsed = np.zeros_like(tensor)
        index = [slice(None)] * num_qubits
        index[qubit] = outcome
        collapsed[tuple(index)] = np.take(tensor, outcome, axis=qubit)
        collapsed = collapsed / np.sqrt(probability)
        return outcome, Statevector(collapsed.reshape(-1), validate=False)

    def _initialize(
        self, state: Statevector, instruction, rng: np.random.Generator
    ) -> Statevector:
        """Reset the target qubits and prepare the requested pure state on them."""
        x_gate = np.array([[0, 1], [1, 0]], dtype=complex)
        for qubit in instruction.qubits:
            outcome, state = self._measure_qubit(state, qubit, rng)
            if outcome == 1:
                state = state.evolve(x_gate, [qubit])
        preparation = _preparation_unitary(instruction.matrix)
        return state.evolve(preparation, instruction.qubits)


def run_and_sample(
    circuit: QuantumCircuit,
    shots: int,
    seed: SeedLike = None,
    method: str = "exact",
    initial_state: Statevector | np.ndarray | None = None,
    kernel: str | None = None,
) -> Counts:
    """Convenience wrapper: sample ``circuit`` with a fresh :class:`ShotSimulator`."""
    return ShotSimulator(method=method, kernel=kernel).run(
        circuit, shots, seed=seed, initial_state=initial_state
    )
