"""Exact statevector simulation of measurement-free circuits.

The statevector simulator evolves an initial state through every gate of a
unitary circuit.  Circuits containing measurement, reset or initialize
instructions must use the density-matrix or shot simulators instead — except
that *trailing* measurements are tolerated and simply ignored, which lets a
single circuit be reused for exact and sampled evaluation.

Two gate-application kernels are available (see
:mod:`repro.circuits.kernels`):

``einsum`` (default)
    Axis-local tensor contraction: the statevector is viewed as a rank-``n``
    tensor and each k-qubit gate is one ``(2^k × 2^k) @ (2^k × 2^{n-k})``
    matmul on its target axes — O(2^n · 2^k) per gate.  Gate matrices are
    memoised through the shared prepared-operator LRU.

``dense``
    The legacy full-space path: each gate is embedded into ``2^n × 2^n`` with
    :func:`~repro.utils.linalg.expand_operator` and applied as a full
    matrix-vector product.  Kept as the reference implementation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import BARRIER, GATE, MEASURE
from repro.circuits.kernels import (
    apply_unitary_statevector,
    prepare_operator,
    record_gate_application,
    resolve_kernel,
)
from repro.quantum.states import Statevector
from repro.utils.linalg import expand_operator

__all__ = ["StatevectorSimulator", "simulate_statevector"]


class StatevectorSimulator:
    """Exact simulator for unitary circuits.

    Parameters
    ----------
    kernel:
        Gate-application kernel: ``"einsum"`` (axis-local contraction, the
        default) or ``"dense"`` (legacy full-space operators).
    """

    def __init__(self, kernel: str | None = None):
        self.kernel = resolve_kernel(kernel)

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Statevector | np.ndarray | None = None,
    ) -> Statevector:
        """Return the final statevector of ``circuit``.

        Parameters
        ----------
        circuit:
            The circuit to simulate.  Only ``gate``/``barrier`` instructions
            (and trailing measurements, which are ignored) are supported.
        initial_state:
            Optional initial state; defaults to ``|0...0⟩``.
        """
        num_qubits = circuit.num_qubits
        state = self._initial_state(circuit, initial_state).data
        seen_measurement = False
        for instruction in circuit.instructions:
            if instruction.kind == BARRIER:
                continue
            if instruction.kind == MEASURE:
                seen_measurement = True
                continue
            if instruction.kind != GATE:
                raise SimulationError(
                    f"StatevectorSimulator cannot execute {instruction.kind!r} instructions; "
                    "use DensityMatrixSimulator or ShotSimulator"
                )
            if seen_measurement:
                raise SimulationError(
                    "circuit applies gates after measurement; use DensityMatrixSimulator "
                    "or ShotSimulator for mid-circuit measurement"
                )
            if instruction.is_conditional:
                raise SimulationError(
                    "classically conditioned gates require ShotSimulator or "
                    "DensityMatrixSimulator"
                )
            qubits = list(instruction.qubits)
            start = time.perf_counter()
            if self.kernel == "einsum":
                prepared = prepare_operator(instruction.matrix)
                state = apply_unitary_statevector(state, prepared, qubits, num_qubits)
            else:
                full = expand_operator(
                    np.asarray(instruction.matrix, dtype=complex), qubits, num_qubits
                )
                state = full @ state
            record_gate_application(self.kernel, len(qubits), time.perf_counter() - start)
        return Statevector(state, validate=False)

    @staticmethod
    def _initial_state(
        circuit: QuantumCircuit, initial_state: Statevector | np.ndarray | None
    ) -> Statevector:
        if initial_state is None:
            return Statevector.zero_state(circuit.num_qubits)
        state = initial_state if isinstance(initial_state, Statevector) else Statevector(initial_state)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )
        return state


def simulate_statevector(
    circuit: QuantumCircuit,
    initial_state: Statevector | np.ndarray | None = None,
    kernel: str | None = None,
) -> Statevector:
    """Convenience wrapper: run :class:`StatevectorSimulator` on ``circuit``."""
    return StatevectorSimulator(kernel=kernel).run(circuit, initial_state)
