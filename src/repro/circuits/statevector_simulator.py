"""Exact statevector simulation of measurement-free circuits.

The statevector simulator evolves an initial state through every gate of a
unitary circuit using tensor-reshape contractions (no full ``2^n × 2^n``
matrices are built).  Circuits containing measurement, reset or initialize
instructions must use the density-matrix or shot simulators instead — except
that *trailing* measurements are tolerated and simply ignored, which lets a
single circuit be reused for exact and sampled evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import BARRIER, GATE, MEASURE
from repro.quantum.states import Statevector

__all__ = ["StatevectorSimulator", "simulate_statevector"]


class StatevectorSimulator:
    """Exact simulator for unitary circuits."""

    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: Statevector | np.ndarray | None = None,
    ) -> Statevector:
        """Return the final statevector of ``circuit``.

        Parameters
        ----------
        circuit:
            The circuit to simulate.  Only ``gate``/``barrier`` instructions
            (and trailing measurements, which are ignored) are supported.
        initial_state:
            Optional initial state; defaults to ``|0...0⟩``.
        """
        state = self._initial_state(circuit, initial_state)
        seen_measurement = False
        for instruction in circuit.instructions:
            if instruction.kind == BARRIER:
                continue
            if instruction.kind == MEASURE:
                seen_measurement = True
                continue
            if instruction.kind != GATE:
                raise SimulationError(
                    f"StatevectorSimulator cannot execute {instruction.kind!r} instructions; "
                    "use DensityMatrixSimulator or ShotSimulator"
                )
            if seen_measurement:
                raise SimulationError(
                    "circuit applies gates after measurement; use DensityMatrixSimulator "
                    "or ShotSimulator for mid-circuit measurement"
                )
            if instruction.is_conditional:
                raise SimulationError(
                    "classically conditioned gates require ShotSimulator or "
                    "DensityMatrixSimulator"
                )
            state = state.evolve(instruction.matrix, instruction.qubits)
        return state

    @staticmethod
    def _initial_state(
        circuit: QuantumCircuit, initial_state: Statevector | np.ndarray | None
    ) -> Statevector:
        if initial_state is None:
            return Statevector.zero_state(circuit.num_qubits)
        state = initial_state if isinstance(initial_state, Statevector) else Statevector(initial_state)
        if state.num_qubits != circuit.num_qubits:
            raise SimulationError(
                f"initial state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )
        return state


def simulate_statevector(
    circuit: QuantumCircuit, initial_state: Statevector | np.ndarray | None = None
) -> Statevector:
    """Convenience wrapper: run :class:`StatevectorSimulator` on ``circuit``."""
    return StatevectorSimulator().run(circuit, initial_state)
