"""Measurement outcome containers.

:class:`Counts` stores a histogram of classical-register bitstrings, keyed in
the library-wide convention of classical bit 0 being the *leftmost* character
of the bitstring.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = ["Counts"]


class Counts(Mapping[str, int]):
    """A histogram of measurement outcomes.

    Parameters
    ----------
    data:
        Mapping of bitstrings to non-negative integer counts.
    num_clbits:
        Width of the classical register; inferred from the keys when omitted.
    """

    def __init__(self, data: Mapping[str, int] | None = None, num_clbits: int | None = None):
        data = dict(data or {})
        for key, value in data.items():
            if value < 0:
                raise ValueError(f"count for {key!r} must be non-negative, got {value}")
            if set(key) - {"0", "1"}:
                raise ValueError(f"outcome keys must be bitstrings, got {key!r}")
        lengths = {len(key) for key in data}
        if len(lengths) > 1:
            raise ValueError(f"inconsistent bitstring lengths {sorted(lengths)}")
        if num_clbits is None:
            num_clbits = lengths.pop() if lengths else 0
        elif lengths and lengths.pop() != num_clbits:
            raise ValueError("bitstring length does not match num_clbits")
        self._data = {key: int(value) for key, value in data.items() if value > 0}
        self.num_clbits = int(num_clbits)

    # -- mapping protocol ------------------------------------------------------

    def __getitem__(self, key: str) -> int:
        return self._data.get(key, 0)

    def __contains__(self, key: object) -> bool:
        # Missing keys read as zero via __getitem__, but membership reflects
        # only outcomes that were actually observed.
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counts({self._data}, num_clbits={self.num_clbits})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counts):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == {k: v for k, v in other.items() if v > 0}
        return NotImplemented

    # -- aggregation ------------------------------------------------------------

    @property
    def shots(self) -> int:
        """Total number of shots recorded."""
        return sum(self._data.values())

    def probabilities(self) -> dict[str, float]:
        """Return the empirical outcome distribution."""
        total = self.shots
        if total == 0:
            return {}
        return {key: value / total for key, value in self._data.items()}

    def most_frequent(self) -> str:
        """Return the most frequent outcome (ties broken lexicographically)."""
        if not self._data:
            raise ValueError("no outcomes recorded")
        return min(self._data, key=lambda key: (-self._data[key], key))

    def marginal(self, clbits: Sequence[int]) -> "Counts":
        """Return counts marginalised onto the given classical bits (in that order)."""
        result: dict[str, int] = {}
        for key, value in self._data.items():
            reduced = "".join(key[c] for c in clbits)
            result[reduced] = result.get(reduced, 0) + value
        return Counts(result, num_clbits=len(clbits))

    def add(self, other: "Counts | Mapping[str, int]") -> "Counts":
        """Return the elementwise sum of two count histograms."""
        result = dict(self._data)
        for key, value in dict(other).items():
            result[key] = result.get(key, 0) + value
        width = max(self.num_clbits, getattr(other, "num_clbits", self.num_clbits))
        return Counts(result, num_clbits=width)

    def expectation_z(self, clbits: Sequence[int] | None = None) -> float:
        """Return the empirical mean of ``(-1)^{parity of selected bits}``.

        With ``clbits=None`` the parity of the whole register is used.  This
        is the estimator for a tensor product of Z observables measured in the
        computational basis.
        """
        if self.shots == 0:
            raise ValueError("no outcomes recorded")
        selected = list(range(self.num_clbits)) if clbits is None else list(clbits)
        accumulator = 0
        for key, value in self._data.items():
            parity = sum(int(key[c]) for c in selected) % 2
            accumulator += ((-1) ** parity) * value
        return accumulator / self.shots

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_probabilities(
        cls,
        probabilities: Mapping[str, float] | np.ndarray,
        shots: int,
        num_clbits: int | None = None,
        seed: SeedLike = None,
    ) -> "Counts":
        """Sample a multinomial histogram of ``shots`` outcomes from a distribution.

        ``probabilities`` can be a bitstring → probability mapping or a dense
        vector indexed by the integer value of the bitstring.
        """
        if shots < 0:
            raise ValueError(f"shots must be non-negative, got {shots}")
        rng = as_generator(seed)
        if isinstance(probabilities, np.ndarray):
            vector = np.asarray(probabilities, dtype=float)
            if num_clbits is None:
                num_clbits = max(1, int(np.ceil(np.log2(vector.shape[0]))))
            keys = [format(i, f"0{num_clbits}b") for i in range(vector.shape[0])]
        else:
            keys = list(probabilities.keys())
            vector = np.array([probabilities[k] for k in keys], dtype=float)
            if num_clbits is None:
                num_clbits = len(keys[0]) if keys else 0
        if shots == 0 or vector.size == 0:
            return cls({}, num_clbits=num_clbits)
        total = vector.sum()
        if total <= 0:
            raise ValueError("probabilities must have positive total weight")
        sampled = rng.multinomial(shots, vector / total)
        data = {keys[i]: int(sampled[i]) for i in np.flatnonzero(sampled)}
        return cls(data, num_clbits=num_clbits)
