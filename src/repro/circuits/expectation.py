"""Expectation-value helpers bridging circuits, observables and counts.

The paper's experiments estimate ``⟨Z⟩`` of the wire-cut qubit; these helpers
compute exact reference values (statevector / density-matrix simulation) and
sampled estimates (diagonalise the observable with a basis-change circuit and
average parities over counts).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import SimulationError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.counts import Counts
from repro.circuits.density_matrix_simulator import DensityMatrixSimulator
from repro.circuits.shot_simulator import ShotSimulator
from repro.circuits.statevector_simulator import StatevectorSimulator
from repro.quantum.paulis import PauliString
from repro.quantum.states import Statevector
from repro.utils.rng import SeedLike

__all__ = [
    "exact_expectation",
    "sampled_pauli_expectation",
    "measurement_basis_change",
]

_BASIS_CHANGE: dict[str, list[tuple[str, tuple[float, ...]]]] = {
    "I": [],
    "Z": [],
    "X": [("h", ())],
    "Y": [("sdg", ()), ("h", ())],
}


def exact_expectation(
    circuit: QuantumCircuit,
    observable: np.ndarray | PauliString,
    initial_state: Statevector | np.ndarray | None = None,
) -> float:
    """Return the exact expectation value of ``observable`` after ``circuit``.

    For unitary circuits the statevector simulator is used; otherwise the
    branch-averaged density matrix is used.
    """
    matrix = observable.to_matrix() if isinstance(observable, PauliString) else np.asarray(observable, dtype=complex)
    if circuit.is_unitary_only():
        state = StatevectorSimulator().run(circuit, initial_state)
        return float(np.real(state.expectation_value(matrix)))
    result = DensityMatrixSimulator().run(circuit, initial_state)
    return float(np.real(result.expectation_value(matrix)))


def measurement_basis_change(pauli: str, qubit: int, num_qubits: int, num_clbits: int) -> QuantumCircuit:
    """Return a circuit rotating the ``pauli`` eigenbasis of ``qubit`` to the Z basis."""
    if pauli not in _BASIS_CHANGE:
        raise SimulationError(f"unsupported Pauli label {pauli!r}")
    circuit = QuantumCircuit(num_qubits, num_clbits, name=f"meas_{pauli.lower()}")
    for gate_name, params in _BASIS_CHANGE[pauli]:
        circuit.gate(gate_name, qubit, params)
    return circuit


def sampled_pauli_expectation(
    circuit: QuantumCircuit,
    pauli_labels: str,
    shots: int,
    qubits: Sequence[int] | None = None,
    seed: SeedLike = None,
    method: str = "exact",
    initial_state: Statevector | np.ndarray | None = None,
) -> float:
    """Estimate a Pauli expectation value of the circuit output by sampling.

    Parameters
    ----------
    circuit:
        Circuit *without* the measurement of the observable (it is appended
        here after the appropriate basis change).
    pauli_labels:
        One Pauli label per entry of ``qubits`` (default: per circuit qubit).
    shots:
        Number of measurement shots.
    qubits:
        Which qubits carry the observable; defaults to all qubits.
    """
    qubits = list(range(circuit.num_qubits)) if qubits is None else list(qubits)
    if len(pauli_labels) != len(qubits):
        raise SimulationError(
            f"{len(pauli_labels)} Pauli labels given for {len(qubits)} qubits"
        )
    active = [(q, p) for q, p in zip(qubits, pauli_labels) if p != "I"]
    if not active:
        return 1.0
    # New classical bits for the observable measurement sit after existing ones.
    clbit_offset = circuit.num_clbits
    num_clbits = clbit_offset + len(active)
    measured = QuantumCircuit(circuit.num_qubits, num_clbits, name=f"{circuit.name}_meas")
    measured.compose(circuit, inplace=True)
    observable_clbits = []
    for position, (qubit, pauli) in enumerate(active):
        for gate_name, params in _BASIS_CHANGE[pauli]:
            measured.gate(gate_name, qubit, params)
        clbit = clbit_offset + position
        measured.measure(qubit, clbit)
        observable_clbits.append(clbit)
    counts: Counts = ShotSimulator(method=method).run(
        measured, shots=shots, seed=seed, initial_state=initial_state
    )
    return counts.expectation_z(observable_clbits)
