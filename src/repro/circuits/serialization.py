"""Lossless JSON serialization of :class:`~repro.circuits.circuit.QuantumCircuit`.

The run store and the job service persist circuits to disk and ship them over
HTTP, so circuits need a stable, dependency-free wire format.  The payload
produced here is plain JSON (dicts, lists, numbers) and round-trips *exactly*:
matrices and statevectors are stored as ``[real, imag]`` pairs whose floats
survive JSON via shortest-round-trip ``repr`` formatting, so a deserialized
circuit has the same :func:`~repro.circuits.backends.circuit_fingerprint` as
the original — cache keys and job fingerprints are stable across the wire.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CircuitError
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import Instruction

__all__ = ["circuit_to_payload", "circuit_from_payload"]


def _array_to_payload(array: np.ndarray) -> dict:
    """Return the JSON payload of a complex matrix or statevector."""
    array = np.asarray(array, dtype=complex)
    return {
        "shape": list(array.shape),
        "data": [[float(value.real), float(value.imag)] for value in array.ravel()],
    }


def _array_from_payload(payload: dict) -> np.ndarray:
    """Rebuild a complex array from its :func:`_array_to_payload` form."""
    flat = np.array(
        [complex(real, imag) for real, imag in payload["data"]], dtype=complex
    )
    return flat.reshape(tuple(payload["shape"]))


def _instruction_to_payload(instruction: Instruction) -> dict:
    """Return the JSON payload of one instruction."""
    payload: dict = {
        "kind": instruction.kind,
        "name": instruction.name,
        "qubits": list(instruction.qubits),
    }
    if instruction.clbits:
        payload["clbits"] = list(instruction.clbits)
    if instruction.params:
        payload["params"] = [float(p) for p in instruction.params]
    if instruction.matrix is not None:
        payload["matrix"] = _array_to_payload(instruction.matrix)
    if instruction.condition is not None:
        payload["condition"] = list(instruction.condition)
    return payload


def _instruction_from_payload(payload: dict) -> Instruction:
    """Rebuild one instruction from its payload form."""
    matrix = payload.get("matrix")
    condition = payload.get("condition")
    return Instruction(
        kind=payload["kind"],
        name=payload["name"],
        qubits=tuple(int(q) for q in payload["qubits"]),
        clbits=tuple(int(c) for c in payload.get("clbits", ())),
        params=tuple(float(p) for p in payload.get("params", ())),
        matrix=None if matrix is None else _array_from_payload(matrix),
        condition=None if condition is None else (int(condition[0]), int(condition[1])),
    )


def circuit_to_payload(circuit: QuantumCircuit) -> dict:
    """Return a lossless JSON-serializable payload of ``circuit``.

    Parameters
    ----------
    circuit:
        The circuit to serialize.

    Returns
    -------
    dict
        Plain-JSON payload accepted by :func:`circuit_from_payload`.  The
        round trip preserves the circuit's
        :func:`~repro.circuits.backends.circuit_fingerprint` exactly.
    """
    return {
        "name": circuit.name,
        "num_qubits": circuit.num_qubits,
        "num_clbits": circuit.num_clbits,
        "instructions": [
            _instruction_to_payload(instruction) for instruction in circuit.instructions
        ],
    }


def circuit_from_payload(payload: dict) -> QuantumCircuit:
    """Rebuild a :class:`~repro.circuits.circuit.QuantumCircuit` from its payload.

    Parameters
    ----------
    payload:
        A payload produced by :func:`circuit_to_payload` (e.g. parsed back
        from a store file or an HTTP job submission).

    Returns
    -------
    QuantumCircuit
        The reconstructed circuit (instruction indices re-validated on
        append).

    Raises
    ------
    CircuitError
        When the payload is structurally invalid.
    """
    if not isinstance(payload, dict):
        raise CircuitError(f"a circuit payload must be a JSON object, got {type(payload).__name__}")
    try:
        circuit = QuantumCircuit(
            int(payload["num_qubits"]),
            int(payload.get("num_clbits", 0)),
            str(payload.get("name", "circuit")),
        )
        for entry in payload.get("instructions", []):
            circuit.append(_instruction_from_payload(entry))
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise CircuitError(f"malformed circuit payload: {error}") from error
    return circuit
