"""The :class:`QuantumCircuit` intermediate representation.

A minimal but complete gate-level circuit model supporting everything the
wire-cutting experiments need: arbitrary unitaries, mid-circuit measurement,
classically conditioned gates, qubit reset and arbitrary state
initialisation.  The builder API mirrors Qiskit's so that circuits from the
paper translate line-by-line.

Qubit ordering is big-endian: qubit 0 is the most significant bit of a basis
label and the leftmost bit of result bitstrings.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.circuits.instruction import (
    BARRIER,
    GATE,
    INITIALIZE,
    MEASURE,
    RESET,
    Instruction,
)
from repro.quantum.gates import cached_gate_matrix
from repro.utils.linalg import is_statevector, is_unitary

__all__ = ["QuantumCircuit"]


class QuantumCircuit:
    """A quantum circuit over ``num_qubits`` qubits and ``num_clbits`` classical bits."""

    def __init__(self, num_qubits: int, num_clbits: int = 0, name: str = "circuit"):
        if num_qubits < 0 or num_clbits < 0:
            raise CircuitError("register sizes must be non-negative")
        self.num_qubits = int(num_qubits)
        self.num_clbits = int(num_clbits)
        self.name = name
        self._instructions: list[Instruction] = []

    # -- container protocol ---------------------------------------------------

    @property
    def instructions(self) -> list[Instruction]:
        """The instruction list (treat as read-only; use builder methods to modify)."""
        return self._instructions

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self):
        return iter(self._instructions)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_clbits={self.num_clbits}, depth={self.depth()})"
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [repr(self)]
        lines.extend(f"  {instruction}" for instruction in self._instructions)
        return "\n".join(lines)

    # -- validation helpers ----------------------------------------------------

    def _check_qubits(self, qubits: Iterable[int]) -> tuple[int, ...]:
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"qubit index {q} out of range (num_qubits={self.num_qubits})")
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubit indices {qubits}")
        return qubits

    def _check_clbits(self, clbits: Iterable[int]) -> tuple[int, ...]:
        clbits = tuple(int(c) for c in clbits)
        for c in clbits:
            if not 0 <= c < self.num_clbits:
                raise CircuitError(f"clbit index {c} out of range (num_clbits={self.num_clbits})")
        return clbits

    # -- generic appenders -------------------------------------------------------

    def append(self, instruction: Instruction) -> "QuantumCircuit":
        """Append a pre-built instruction (validating indices against this circuit)."""
        self._check_qubits(instruction.qubits)
        self._check_clbits(instruction.clbits)
        if instruction.condition is not None:
            self._check_clbits([instruction.condition[0]])
        self._instructions.append(instruction)
        return self

    def gate(
        self,
        name: str,
        qubits: Sequence[int] | int,
        params: Sequence[float] = (),
        condition: tuple[int, int] | None = None,
    ) -> "QuantumCircuit":
        """Append a named gate from the standard library."""
        if isinstance(qubits, (int, np.integer)):
            qubits = (int(qubits),)
        matrix = cached_gate_matrix(name.lower(), tuple(float(p) for p in params))
        return self.append(
            Instruction(
                kind=GATE,
                name=name.lower(),
                qubits=self._check_qubits(qubits),
                params=tuple(float(p) for p in params),
                matrix=matrix,
                condition=condition,
            )
        )

    def unitary(
        self,
        matrix: np.ndarray,
        qubits: Sequence[int] | int,
        name: str = "unitary",
        condition: tuple[int, int] | None = None,
    ) -> "QuantumCircuit":
        """Append an arbitrary unitary matrix acting on ``qubits``."""
        if isinstance(qubits, (int, np.integer)):
            qubits = (int(qubits),)
        matrix = np.asarray(matrix, dtype=complex)
        if not is_unitary(matrix, atol=1e-8):
            raise CircuitError(f"matrix for {name!r} is not unitary")
        return self.append(
            Instruction(
                kind=GATE,
                name=name,
                qubits=self._check_qubits(qubits),
                matrix=matrix,
                condition=condition,
            )
        )

    # -- named single-qubit gates -------------------------------------------------

    def i(self, qubit: int) -> "QuantumCircuit":
        """Identity gate."""
        return self.gate("i", qubit)

    def x(self, qubit: int, condition: tuple[int, int] | None = None) -> "QuantumCircuit":
        """Pauli X."""
        return self.gate("x", qubit, condition=condition)

    def y(self, qubit: int, condition: tuple[int, int] | None = None) -> "QuantumCircuit":
        """Pauli Y."""
        return self.gate("y", qubit, condition=condition)

    def z(self, qubit: int, condition: tuple[int, int] | None = None) -> "QuantumCircuit":
        """Pauli Z."""
        return self.gate("z", qubit, condition=condition)

    def h(self, qubit: int, condition: tuple[int, int] | None = None) -> "QuantumCircuit":
        """Hadamard."""
        return self.gate("h", qubit, condition=condition)

    def s(self, qubit: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self.gate("s", qubit)

    def sdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse phase gate S†."""
        return self.gate("sdg", qubit)

    def t(self, qubit: int) -> "QuantumCircuit":
        """T gate."""
        return self.gate("t", qubit)

    def tdg(self, qubit: int) -> "QuantumCircuit":
        """Inverse T gate."""
        return self.gate("tdg", qubit)

    def sx(self, qubit: int) -> "QuantumCircuit":
        """Square root of X."""
        return self.gate("sx", qubit)

    def rx(self, theta: float, qubit: int) -> "QuantumCircuit":
        """X rotation."""
        return self.gate("rx", qubit, (theta,))

    def ry(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Y rotation."""
        return self.gate("ry", qubit, (theta,))

    def rz(self, theta: float, qubit: int) -> "QuantumCircuit":
        """Z rotation."""
        return self.gate("rz", qubit, (theta,))

    def p(self, lam: float, qubit: int) -> "QuantumCircuit":
        """Phase gate with angle λ."""
        return self.gate("p", qubit, (lam,))

    def u(self, theta: float, phi: float, lam: float, qubit: int) -> "QuantumCircuit":
        """Generic single-qubit unitary U(θ, φ, λ)."""
        return self.gate("u", qubit, (theta, phi, lam))

    # -- named multi-qubit gates ----------------------------------------------------

    def cx(self, control: int, target: int, condition: tuple[int, int] | None = None) -> "QuantumCircuit":
        """Controlled-NOT."""
        return self.gate("cx", (control, target), condition=condition)

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self.gate("cz", (control, target))

    def cy(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Y."""
        return self.gate("cy", (control, target))

    def swap(self, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """SWAP."""
        return self.gate("swap", (qubit_a, qubit_b))

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        """Toffoli."""
        return self.gate("ccx", (control_a, control_b, target))

    def rzz(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """ZZ interaction."""
        return self.gate("rzz", (qubit_a, qubit_b), (theta,))

    def rxx(self, theta: float, qubit_a: int, qubit_b: int) -> "QuantumCircuit":
        """XX interaction."""
        return self.gate("rxx", (qubit_a, qubit_b), (theta,))

    # -- non-unitary instructions -----------------------------------------------------

    def measure(self, qubit: int, clbit: int) -> "QuantumCircuit":
        """Measure ``qubit`` in the computational basis into ``clbit``."""
        return self.append(
            Instruction(
                kind=MEASURE,
                name="measure",
                qubits=self._check_qubits([qubit]),
                clbits=self._check_clbits([clbit]),
            )
        )

    def measure_all(self) -> "QuantumCircuit":
        """Measure every qubit into the classical bit with the same index.

        The circuit must have at least ``num_qubits`` classical bits.
        """
        if self.num_clbits < self.num_qubits:
            raise CircuitError(
                "measure_all requires num_clbits >= num_qubits "
                f"({self.num_clbits} < {self.num_qubits})"
            )
        for qubit in range(self.num_qubits):
            self.measure(qubit, qubit)
        return self

    def reset(self, qubit: int) -> "QuantumCircuit":
        """Reset ``qubit`` to ``|0⟩``."""
        return self.append(
            Instruction(kind=RESET, name="reset", qubits=self._check_qubits([qubit]))
        )

    def initialize(self, state: np.ndarray, qubits: Sequence[int] | int) -> "QuantumCircuit":
        """Reset ``qubits`` and prepare the given pure state on them."""
        if isinstance(qubits, (int, np.integer)):
            qubits = (int(qubits),)
        qubits = self._check_qubits(qubits)
        state = np.asarray(state, dtype=complex).ravel()
        if state.shape[0] != 2 ** len(qubits):
            raise CircuitError(
                f"initialize state of dim {state.shape[0]} does not match {len(qubits)} qubits"
            )
        if not is_statevector(state, atol=1e-8):
            raise CircuitError("initialize state must be a normalised statevector")
        return self.append(
            Instruction(kind=INITIALIZE, name="initialize", qubits=qubits, matrix=state)
        )

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Append a barrier (no-op marker)."""
        targets = self._check_qubits(qubits) if qubits else tuple(range(self.num_qubits))
        return self.append(Instruction(kind=BARRIER, name="barrier", qubits=targets))

    # -- composition -------------------------------------------------------------------

    def compose(
        self,
        other: "QuantumCircuit",
        qubits: Sequence[int] | None = None,
        clbits: Sequence[int] | None = None,
        inplace: bool = False,
    ) -> "QuantumCircuit":
        """Append ``other``'s instructions, remapping its qubits/clbits onto this circuit.

        ``qubits[i]`` is the qubit of ``self`` that ``other``'s qubit ``i``
        maps onto (identity mapping by default); similarly for ``clbits``.
        """
        qubits = list(range(other.num_qubits)) if qubits is None else list(qubits)
        clbits = list(range(other.num_clbits)) if clbits is None else list(clbits)
        if len(qubits) != other.num_qubits:
            raise CircuitError(
                f"qubit mapping has {len(qubits)} entries, expected {other.num_qubits}"
            )
        if len(clbits) != other.num_clbits:
            raise CircuitError(
                f"clbit mapping has {len(clbits)} entries, expected {other.num_clbits}"
            )
        target = self if inplace else self.copy()
        if qubits == list(range(other.num_qubits)) and clbits == list(range(other.num_clbits)):
            # Identity mapping: instructions are immutable, so share them.
            for instruction in other._instructions:
                target.append(instruction)
            return target
        qubit_map = {i: q for i, q in enumerate(qubits)}
        clbit_map = {i: c for i, c in enumerate(clbits)}
        for instruction in other._instructions:
            target.append(instruction.remap(qubit_map, clbit_map))
        return target

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Return a shallow copy (instructions are immutable, so sharing is safe)."""
        clone = QuantumCircuit(self.num_qubits, self.num_clbits, name or self.name)
        clone._instructions = list(self._instructions)
        return clone

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (unitary-only circuits)."""
        if not self.is_unitary_only():
            raise CircuitError("only unitary circuits can be inverted")
        inverse = QuantumCircuit(self.num_qubits, self.num_clbits, f"{self.name}_dg")
        for instruction in reversed(self._instructions):
            if instruction.kind == BARRIER:
                inverse.append(instruction)
                continue
            inverse.append(
                Instruction(
                    kind=GATE,
                    name=f"{instruction.name}_dg",
                    qubits=instruction.qubits,
                    matrix=instruction.matrix.conj().T,
                )
            )
        return inverse

    # -- analysis ------------------------------------------------------------------------

    def is_unitary_only(self) -> bool:
        """True when the circuit contains only gates and barriers (no measurement/reset)."""
        return all(inst.kind in (GATE, BARRIER) for inst in self._instructions)

    def has_conditionals(self) -> bool:
        """True when any instruction is classically conditioned."""
        return any(inst.is_conditional for inst in self._instructions)

    def count_ops(self) -> dict[str, int]:
        """Return a histogram of instruction names."""
        counts: dict[str, int] = {}
        for instruction in self._instructions:
            counts[instruction.name] = counts.get(instruction.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Return the circuit depth (longest path of instructions per qubit/clbit)."""
        levels: dict[str, int] = {}
        depth = 0
        for instruction in self._instructions:
            if instruction.kind == BARRIER:
                continue
            wires = [f"q{q}" for q in instruction.qubits] + [f"c{c}" for c in instruction.clbits]
            if instruction.condition is not None:
                wires.append(f"c{instruction.condition[0]}")
            level = 1 + max((levels.get(w, 0) for w in wires), default=0)
            for wire in wires:
                levels[wire] = level
            depth = max(depth, level)
        return depth

    def to_matrix(self) -> np.ndarray:
        """Return the overall unitary of a measurement-free circuit."""
        if not self.is_unitary_only():
            raise CircuitError("to_matrix is only defined for unitary circuits")
        from repro.utils.linalg import expand_operator

        dim = 2**self.num_qubits
        total = np.eye(dim, dtype=complex)
        for instruction in self._instructions:
            if instruction.kind == BARRIER:
                continue
            full = expand_operator(instruction.matrix, list(instruction.qubits), self.num_qubits)
            total = full @ total
        return total
