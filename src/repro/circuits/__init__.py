"""Circuit model and simulators (the Qiskit / Qiskit Aer replacement).

Public API
----------
:class:`QuantumCircuit`
    Gate-level circuit IR with mid-circuit measurement, classical
    conditioning, reset and state initialisation.
:class:`StatevectorSimulator`
    Exact statevector simulation of unitary circuits.
:class:`DensityMatrixSimulator`
    Exact simulation of the full instruction set with per-classical-branch
    density matrices.
:class:`ShotSimulator`
    Finite-shot sampling (exact-distribution or trajectory methods).
:class:`Counts`
    Outcome histograms.
:class:`SimulatorBackend` implementations
    Batched execution of circuit collections (serial, vectorized,
    process-pool) behind one interface; see :mod:`repro.circuits.backends`.

Every simulator and backend accepts ``kernel="einsum"`` (axis-local tensor
contraction, the default) or ``kernel="dense"`` (legacy full-space
operators, the reference implementation); see :mod:`repro.circuits.kernels`.
"""

from repro.circuits.backends import (
    BACKEND_NAMES,
    DistributionCache,
    ProcessPoolBackend,
    SerialBackend,
    SimulatorBackend,
    VectorizedBackend,
    circuit_fingerprint,
    default_distribution_cache,
    kernel_cache_key,
    resolve_backend,
)
from repro.circuits.batched_simulator import BatchedDensityMatrixSimulator, structure_signature
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.counts import Counts
from repro.circuits.drawer import draw
from repro.circuits.density_matrix_simulator import (
    Branch,
    BranchedResult,
    DensityMatrixSimulator,
    simulate_density_matrix,
)
from repro.circuits.expectation import (
    exact_expectation,
    measurement_basis_change,
    sampled_pauli_expectation,
)
from repro.circuits.instruction import Instruction
from repro.circuits.kernels import (
    DEFAULT_KERNEL,
    KERNEL_NAMES,
    clear_prepared_cache,
    prepared_cache_info,
    resolve_kernel,
)
from repro.circuits.serialization import circuit_from_payload, circuit_to_payload
from repro.circuits.shot_simulator import ShotSimulator, run_and_sample
from repro.circuits.statevector_simulator import StatevectorSimulator, simulate_statevector

__all__ = [
    "QuantumCircuit",
    "Instruction",
    "Counts",
    "draw",
    "StatevectorSimulator",
    "simulate_statevector",
    "DensityMatrixSimulator",
    "simulate_density_matrix",
    "BranchedResult",
    "Branch",
    "ShotSimulator",
    "run_and_sample",
    "exact_expectation",
    "sampled_pauli_expectation",
    "measurement_basis_change",
    "SimulatorBackend",
    "SerialBackend",
    "VectorizedBackend",
    "ProcessPoolBackend",
    "DistributionCache",
    "default_distribution_cache",
    "circuit_fingerprint",
    "circuit_to_payload",
    "circuit_from_payload",
    "resolve_backend",
    "BACKEND_NAMES",
    "BatchedDensityMatrixSimulator",
    "structure_signature",
    "KERNEL_NAMES",
    "DEFAULT_KERNEL",
    "resolve_kernel",
    "kernel_cache_key",
    "prepared_cache_info",
    "clear_prepared_cache",
]
