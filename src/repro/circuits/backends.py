"""Execution backends: batched evaluation of circuit collections.

Every consumer of finite-shot results (the cut executor, the experiment
harnesses, the CLI) routes through a :class:`SimulatorBackend`, which turns a
*batch* of measured circuits into per-circuit :class:`~repro.circuits.counts.Counts`
(or exact outcome distributions).  Centralising execution behind this seam is
what lets a parameter sweep evaluate thousands of QPD term circuits without
the caller knowing — or caring — how they are scheduled.

Available backends
------------------

=====================  ======================================================
``SerialBackend``      One :class:`~repro.circuits.shot_simulator.ShotSimulator`
                       run per circuit, in submission order.  Supports the
                       ``trajectory`` method; the reference implementation
                       every other backend must agree with.
``VectorizedBackend``  Groups structurally identical circuits, executes each
                       group as one ``(batch, dim, dim)`` NumPy computation
                       (:class:`~repro.circuits.batched_simulator.BatchedDensityMatrixSimulator`),
                       samples each term's full shot budget with a single
                       multinomial draw over its exact outcome distribution,
                       and memoises distributions in an LRU cache so sweeps
                       never re-simulate identical term circuits.
``ProcessPoolBackend`` Chunks the batch across worker processes, each running
                       the vectorized path; for wide multi-group sweeps on
                       multi-core machines.
=====================  ======================================================

Two further implementations live in :mod:`repro.devices` and slot into the
same seam: :class:`~repro.devices.NoisyDeviceBackend` (any backend above plus
a per-device noise model) and :class:`~repro.devices.DeviceFleet` (shot-wise
distribution of every circuit across several noisy devices).  Pass their
*instances* wherever a backend is accepted — :func:`resolve_backend` forwards
any object implementing the protocol.

Determinism contract
--------------------

``run_batch(circuits, shots, seed)`` derives one independent child stream per
circuit from ``seed`` (:func:`~repro.utils.rng.spawn_seed_sequences`) and
samples circuit ``i`` exclusively from stream ``i``.  Consequently the same
seed yields the *same* :class:`~repro.circuits.counts.Counts` list from every
backend, regardless of grouping, chunking or worker count — cross-backend
agreement is a hard guarantee, not a statistical one.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Protocol, runtime_checkable

import numpy as np

from repro.exceptions import SimulationError
from repro.telemetry.metrics import REGISTRY
from repro.circuits.batched_simulator import BatchedDensityMatrixSimulator, structure_signature
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.counts import Counts
from repro.circuits.density_matrix_simulator import DensityMatrixSimulator
from repro.circuits.kernels import DEFAULT_KERNEL, resolve_kernel
from repro.circuits.shot_simulator import ShotSimulator
from repro.utils.rng import SeedLike, spawn_seed_sequences

__all__ = [
    "SimulatorBackend",
    "SerialBackend",
    "VectorizedBackend",
    "ProcessPoolBackend",
    "DistributionCache",
    "default_distribution_cache",
    "circuit_fingerprint",
    "kernel_cache_key",
    "resolve_backend",
    "BACKEND_NAMES",
]

#: Backend names accepted by :func:`resolve_backend` (and the CLI ``--backend`` flag).
BACKEND_NAMES = ("serial", "vectorized", "process-pool")

#: Process-wide cache hit/miss counters (additive observability — every
#: in-process :class:`DistributionCache` reports here regardless of which
#: backend owns it, so sweeps see uniform accounting on ``GET /metrics``).
_CACHE_HITS = REGISTRY.counter(
    "repro_distribution_cache_hits_total",
    "Exact-distribution cache hits across all in-process caches.",
)
_CACHE_MISSES = REGISTRY.counter(
    "repro_distribution_cache_misses_total",
    "Exact-distribution cache misses across all in-process caches.",
)


def circuit_fingerprint(circuit: QuantumCircuit) -> str:
    """Return a content hash identifying a circuit's exact physical action.

    Two circuits with the same fingerprint produce the same classical-outcome
    distribution: the hash covers register sizes and, per instruction, the
    kind, targets, condition and the full numeric payload (gate unitary or
    ``initialize`` vector).  Cosmetic attributes (circuit/gate names) are
    excluded so that identically-acting circuits hit the same cache entry.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(f"{circuit.num_qubits}|{circuit.num_clbits}".encode())
    for instruction in circuit.instructions:
        if instruction.kind == "barrier":
            continue
        digest.update(
            f"|{instruction.kind};{instruction.qubits};{instruction.clbits};"
            f"{instruction.condition}".encode()
        )
        if instruction.matrix is not None:
            matrix = np.ascontiguousarray(instruction.matrix, dtype=complex)
            digest.update(str(matrix.shape).encode())
            digest.update(matrix.tobytes())
    return digest.hexdigest()


def kernel_cache_key(fingerprint: str, kernel: str) -> str:
    """Return a distribution-cache key scoped to a simulation kernel.

    The default kernel keeps the bare fingerprint — preserving every existing
    cache key (including the noisy composition of
    :func:`repro.devices.backend.noisy_cache_key`) — while non-default
    kernels get a suffixed key so a ``kernel="dense"`` run can share a cache
    with default sweeps without poisoning their entries.
    """
    if kernel == DEFAULT_KERNEL:
        return fingerprint
    return f"{fingerprint}|kernel={kernel}"


class DistributionCache:
    """LRU cache of exact per-circuit outcome distributions.

    Keys are :func:`circuit_fingerprint` hashes of *measured* term circuits
    (the observable's basis change and measurement are part of the circuit,
    so the key effectively covers the (term circuit, observable) pair); values
    are bitstring → probability dictionaries.  Parameter sweeps that revisit
    a term circuit — repeated estimates at growing shot budgets, repeated CLI
    invocations in one process — skip the simulation entirely on a hit.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 0:
            raise ValueError(f"maxsize must be non-negative, got {maxsize}")
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[str, dict[str, float]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> dict[str, float] | None:
        """Return the cached distribution for ``key`` (marking it recently used)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _CACHE_MISSES.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _CACHE_HITS.inc()
        return entry

    def put(self, key: str, distribution: dict[str, float]) -> None:
        """Insert a distribution, evicting the least recently used entry when full."""
        if self.maxsize == 0:
            return
        self._entries[key] = distribution
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters.

        Only the *instance* counters reset; the process-wide metrics
        counters on :data:`repro.telemetry.metrics.REGISTRY` are cumulative,
        so sweep accounting survives cache resets and backend reuse.
        """
        self._entries.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide cache shared by every :class:`VectorizedBackend` that does not
#: bring its own.
default_distribution_cache = DistributionCache()


@runtime_checkable
class SimulatorBackend(Protocol):
    """Protocol every execution backend implements."""

    name: str

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: Sequence[int],
        seed: SeedLike = None,
    ) -> list[Counts]:
        """Sample ``shots[i]`` outcomes of ``circuits[i]`` for every ``i``."""
        ...

    def exact_distributions(
        self, circuits: Sequence[QuantumCircuit]
    ) -> list[dict[str, float]]:
        """Return the exact classical-outcome distribution of every circuit."""
        ...


def _check_batch(circuits: Sequence[QuantumCircuit], shots: Sequence[int]) -> None:
    if len(circuits) != len(shots):
        raise SimulationError(
            f"got {len(circuits)} circuits but {len(shots)} shot counts"
        )
    for count in shots:
        if count < 0:
            raise ValueError(f"shots must be non-negative, got {count}")


def _sample_distribution(
    distribution: dict[str, float],
    shots: int,
    num_clbits: int,
    seed: np.random.SeedSequence,
) -> Counts:
    """Draw a circuit's full shot budget with one multinomial over its distribution."""
    if shots == 0:
        return Counts({}, num_clbits=num_clbits)
    return Counts.from_probabilities(
        distribution, shots=shots, num_clbits=num_clbits, seed=np.random.default_rng(seed)
    )


def _sample_batch(
    backend: "SimulatorBackend",
    circuits: Sequence[QuantumCircuit],
    shots: Sequence[int],
    children: Sequence[np.random.SeedSequence],
) -> list[Counts]:
    """Sample every circuit from its own stream, simulating only sampled ones.

    Circuits allocated zero shots return empty counts without paying for a
    distribution (mirroring the serial backend, which never simulates them).
    """
    active = [index for index, count in enumerate(shots) if count > 0]
    distributions = dict(
        zip(active, backend.exact_distributions([circuits[index] for index in active]))
    )
    return [
        _sample_distribution(distributions[index], int(count), circuit.num_clbits, child)
        if index in distributions
        else Counts({}, num_clbits=circuit.num_clbits)
        for index, (circuit, count, child) in enumerate(zip(circuits, shots, children))
    ]


class SerialBackend:
    """Reference backend: one shot-simulator run per circuit, in order.

    This is the seed repository's original execution path behind the batch
    interface, and the only backend supporting the ``trajectory`` method.
    """

    name = "serial"

    def __init__(self, method: str = "exact", kernel: str | None = None):
        self.kernel = resolve_kernel(kernel)
        self._simulator = ShotSimulator(method=method, kernel=self.kernel)
        self.method = method

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: Sequence[int],
        seed: SeedLike = None,
    ) -> list[Counts]:
        _check_batch(circuits, shots)
        children = spawn_seed_sequences(seed, len(circuits))
        return [
            self._simulator.run(circuit, shots=int(count), seed=np.random.default_rng(child))
            if count > 0
            else Counts({}, num_clbits=circuit.num_clbits)
            for circuit, count, child in zip(circuits, shots, children)
        ]

    def exact_distributions(
        self, circuits: Sequence[QuantumCircuit]
    ) -> list[dict[str, float]]:
        simulator = DensityMatrixSimulator(kernel=self.kernel)
        return [simulator.run(circuit).classical_distribution() for circuit in circuits]


class VectorizedBackend:
    """Batched backend: group, simulate as one NumPy batch, cache, sample.

    Structurally identical circuits (same instruction stream, differing only
    in numeric payloads — the shape of every QPD parameter sweep) are stacked
    into a single ``(batch, dim, dim)`` density-matrix computation.  Exact
    distributions are memoised in a :class:`DistributionCache`, and each
    circuit's shots are then drawn with a single multinomial over its exact
    distribution using the circuit's own child stream.
    """

    name = "vectorized"

    def __init__(self, cache: DistributionCache | None = None, kernel: str | None = None):
        self.cache = default_distribution_cache if cache is None else cache
        self.kernel = resolve_kernel(kernel)
        self._simulator = BatchedDensityMatrixSimulator(kernel=self.kernel)

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: Sequence[int],
        seed: SeedLike = None,
    ) -> list[Counts]:
        _check_batch(circuits, shots)
        children = spawn_seed_sequences(seed, len(circuits))
        return _sample_batch(self, circuits, shots, children)

    def exact_distributions(
        self, circuits: Sequence[QuantumCircuit]
    ) -> list[dict[str, float]]:
        results: list[dict[str, float] | None] = [None] * len(circuits)
        # Cache lookup; identical circuits inside the batch simulate only once.
        # Keys are kernel-scoped so dense reference runs never poison (or
        # reuse) entries computed by the default kernel.
        pending_by_key: dict[str, list[int]] = {}
        for index, circuit in enumerate(circuits):
            key = kernel_cache_key(circuit_fingerprint(circuit), self.kernel)
            cached = self.cache.get(key)
            if cached is not None:
                results[index] = cached
            else:
                pending_by_key.setdefault(key, []).append(index)

        # Group the remaining unique circuits by batchable structure.
        groups: dict[tuple, list[str]] = {}
        for key, indices in pending_by_key.items():
            signature = structure_signature(circuits[indices[0]])
            groups.setdefault(signature, []).append(key)

        for keys in groups.values():
            group_circuits = [circuits[pending_by_key[key][0]] for key in keys]
            distributions = self._simulator.run_group(group_circuits)
            for key, distribution in zip(keys, distributions):
                self.cache.put(key, distribution)
                for index in pending_by_key[key]:
                    results[index] = distribution
        return results  # type: ignore[return-value]


def _pool_worker_distributions(
    payload: tuple[list[QuantumCircuit], str],
) -> list[dict[str, float]]:
    """Worker entry point: exact distributions of one chunk (fresh local cache)."""
    circuits, kernel = payload
    return VectorizedBackend(cache=DistributionCache(), kernel=kernel).exact_distributions(circuits)


def _pool_worker_run(
    payload: tuple[list[QuantumCircuit], list[int], list[np.random.SeedSequence], str],
) -> list[Counts]:
    """Worker entry point: sample one chunk with pre-spawned per-circuit streams."""
    circuits, shots, children, kernel = payload
    return _sample_batch(
        VectorizedBackend(cache=DistributionCache(), kernel=kernel), circuits, shots, children
    )


class ProcessPoolBackend:
    """Multi-process backend: chunk the batch across worker processes.

    Each worker runs the vectorized path on its chunk.  Because per-circuit
    sample streams are spawned in the parent and shipped with the chunk, the
    results are identical to the other backends for the same seed, whatever
    the chunking or worker count.  Worth it for wide sweeps whose batch
    splits into many structure groups; for small batches the fork/pickle
    overhead dominates and :class:`VectorizedBackend` is the better choice.

    The backend owns a persistent :class:`DistributionCache` used whenever a
    batch is small enough to run in-process (the single-chunk fast path), so
    repeated sweep points reuse distributions *and* the ``cache.hits`` /
    ``cache.misses`` accounting survives across calls — previously every
    call built a throwaway cache and the stats were lost.  Multi-chunk
    batches still use worker-local caches (worker processes cannot share
    the parent's), whose stats only surface through the process-wide
    metrics counters of each worker.
    """

    name = "process-pool"

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        kernel: str | None = None,
    ):
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.kernel = resolve_kernel(kernel)
        #: Persistent cache of the in-process (single-chunk) path; stats
        #: accumulate across sweep points instead of resetting per call.
        self.cache = DistributionCache()

    def _chunks(self, total: int) -> list[range]:
        if total == 0:
            return []
        import os

        workers = self.max_workers or min(8, os.cpu_count() or 1)
        size = self.chunk_size or max(1, -(-total // workers))
        return [range(start, min(start + size, total)) for start in range(0, total, size)]

    def run_batch(
        self,
        circuits: Sequence[QuantumCircuit],
        shots: Sequence[int],
        seed: SeedLike = None,
    ) -> list[Counts]:
        _check_batch(circuits, shots)
        children = spawn_seed_sequences(seed, len(circuits))
        chunks = self._chunks(len(circuits))
        if len(chunks) <= 1:
            # Run the single chunk in-process, with the streams already
            # spawned above — the generator passed as `seed` has been
            # consumed, so re-deriving children from it would break the
            # cross-backend determinism contract.
            return _sample_batch(
                VectorizedBackend(cache=self.cache, kernel=self.kernel),
                list(circuits),
                [int(s) for s in shots],
                children,
            )
        payloads = [
            (
                [circuits[i] for i in chunk],
                [int(shots[i]) for i in chunk],
                [children[i] for i in chunk],
                self.kernel,
            )
            for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            chunk_results = list(pool.map(_pool_worker_run, payloads))
        results: list[Counts] = []
        for chunk_result in chunk_results:
            results.extend(chunk_result)
        return results

    def exact_distributions(
        self, circuits: Sequence[QuantumCircuit]
    ) -> list[dict[str, float]]:
        chunks = self._chunks(len(circuits))
        if len(chunks) <= 1:
            return VectorizedBackend(cache=self.cache, kernel=self.kernel).exact_distributions(
                circuits
            )
        payloads = [([circuits[i] for i in chunk], self.kernel) for chunk in chunks]
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            chunk_results = list(pool.map(_pool_worker_distributions, payloads))
        results: list[dict[str, float]] = []
        for chunk_result in chunk_results:
            results.extend(chunk_result)
        return results


def resolve_backend(
    backend: SimulatorBackend | str | None,
    method: str = "exact",
    kernel: str | None = None,
) -> SimulatorBackend:
    """Return a backend instance for a name, an instance, or ``None`` (default).

    ``None`` resolves to :class:`SerialBackend` with the requested shot-simulator
    ``method``, preserving the pre-backend behaviour of the executor.  A
    non-``exact`` method is only available serially, so asking any other
    backend for it is an error.  Instances (including
    :class:`~repro.devices.NoisyDeviceBackend` and
    :class:`~repro.devices.DeviceFleet`) pass through unchanged; asking an
    instance for a different simulation ``kernel`` than it was built with is
    an error (construct the backend with ``kernel=`` instead).
    """
    if backend is None:
        return SerialBackend(method=method, kernel=kernel)
    if not isinstance(backend, str):
        if method != "exact":
            if not isinstance(backend, SerialBackend):
                raise SimulationError(
                    f"method {method!r} requires the serial backend, got {type(backend).__name__}"
                )
            if backend.method != method:
                raise SimulationError(
                    f"method {method!r} was requested but the supplied SerialBackend "
                    f"uses method {backend.method!r}"
                )
        if kernel is not None:
            requested = resolve_kernel(kernel)
            configured = getattr(backend, "kernel", None)
            if configured is not None and configured != requested:
                raise SimulationError(
                    f"kernel {requested!r} was requested but the supplied "
                    f"{type(backend).__name__} uses kernel {configured!r}"
                )
        return backend
    name = backend.lower().replace("_", "-")
    if name != "serial" and method != "exact":
        raise SimulationError(f"method {method!r} requires the serial backend, got {name!r}")
    if name == "serial":
        return SerialBackend(method=method, kernel=kernel)
    if name == "vectorized":
        return VectorizedBackend(kernel=kernel)
    if name == "process-pool":
        return ProcessPoolBackend(kernel=kernel)
    raise SimulationError(
        f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
    )
