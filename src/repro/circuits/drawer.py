"""Plain-text circuit drawing.

A lightweight ASCII renderer for :class:`~repro.circuits.circuit.QuantumCircuit`
used by the examples and by error messages.  One column per instruction (no
packing), one row per qubit plus one row per classical bit:

>>> from repro.circuits import QuantumCircuit
>>> from repro.circuits.drawer import draw
>>> qc = QuantumCircuit(2, 1)
>>> _ = qc.h(0).cx(0, 1).measure(1, 0)
>>> print(draw(qc))  # doctest: +SKIP
q0: ─[h]──●───────
q1: ──────⊕──[M0]─
c0: ═══════════╩══
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.instruction import BARRIER, GATE, INITIALIZE, MEASURE, RESET

__all__ = ["draw"]

_MIN_CELL_WIDTH = 7


def _pad(symbol: str, fill: str, width: int) -> str:
    total = max(width - len(symbol), 0)
    left = total // 2
    right = total - left
    return fill * left + symbol + fill * right


def _gate_symbol(instruction) -> str:
    name = instruction.name
    if instruction.params:
        name += "(" + ",".join(f"{p:.2g}" for p in instruction.params) + ")"
    return f"[{name}]"


def draw(circuit: QuantumCircuit) -> str:
    """Render ``circuit`` as a multi-line ASCII string."""
    # First pass: collect the bare symbol per wire per column.
    columns: list[tuple[dict[int, str], dict[int, str]]] = []
    for instruction in circuit.instructions:
        qubit_cells: dict[int, str] = {}
        clbit_cells: dict[int, str] = {}

        if instruction.kind == GATE:
            if len(instruction.qubits) == 1:
                qubit_cells[instruction.qubits[0]] = _gate_symbol(instruction)
            else:
                control, *targets = instruction.qubits
                qubit_cells[control] = "●"
                for target in targets[:-1]:
                    qubit_cells[target] = "●"
                label = {"cx": "⊕", "cz": "■", "swap": "x"}.get(instruction.name)
                qubit_cells[targets[-1]] = label or _gate_symbol(instruction)
            if instruction.condition is not None:
                clbit, value = instruction.condition
                clbit_cells[clbit] = f"?={value}"
        elif instruction.kind == MEASURE:
            qubit_cells[instruction.qubits[0]] = f"[M{instruction.clbits[0]}]"
            clbit_cells[instruction.clbits[0]] = "╩"
        elif instruction.kind == RESET:
            qubit_cells[instruction.qubits[0]] = "[|0>]"
        elif instruction.kind == INITIALIZE:
            for qubit in instruction.qubits:
                qubit_cells[qubit] = "[init]"
        elif instruction.kind == BARRIER:
            for qubit in instruction.qubits:
                qubit_cells[qubit] = "░"
        columns.append((qubit_cells, clbit_cells))

    # Second pass: pad every column to the width of its longest symbol.
    qubit_rows = [[] for _ in range(circuit.num_qubits)]
    clbit_rows = [[] for _ in range(circuit.num_clbits)]
    for qubit_cells, clbit_cells in columns:
        width = max(
            [_MIN_CELL_WIDTH]
            + [len(s) for s in qubit_cells.values()]
            + [len(s) for s in clbit_cells.values()]
        )
        for qubit in range(circuit.num_qubits):
            qubit_rows[qubit].append(_pad(qubit_cells.get(qubit, ""), "─", width))
        for clbit in range(circuit.num_clbits):
            clbit_rows[clbit].append(_pad(clbit_cells.get(clbit, ""), "═", width))

    lines = []
    for qubit in range(circuit.num_qubits):
        lines.append(f"q{qubit}: " + "".join(qubit_rows[qubit]))
    for clbit in range(circuit.num_clbits):
        lines.append(f"c{clbit}: " + "".join(clbit_rows[clbit]))
    return "\n".join(lines)
